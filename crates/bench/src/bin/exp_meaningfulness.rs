//! **§4.1 / §4.2 narrative** — the steep drop in the sorted meaningfulness
//! probabilities on clustered data vs the flat curve on uniform data.
//!
//! §4.1: "a few of the data points had meaningfulness probability in the
//! range of 0.9 to 1, after which there was a steep drop … By using the
//! threshold which occurs just before this steep drop, it is possible to
//! isolate the natural set of points related to the query" (520 recovered
//! vs a cluster of cardinality 562, 508 of them correct).
//! §4.2: on uniform data "the meaningfulness values do not show the kind of
//! steep drop".
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_meaningfulness
//! ```

use hinn_bench::{artifact_dir, banner, sample_labeled_queries, write_series};
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig, SearchDiagnosis};
use hinn_data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn_data::uniform::uniform_hypercube;
use hinn_user::HeuristicUser;
use hinn_viz::SvgCanvas;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Meaningfulness curves: steep drop (clustered) vs flat (uniform)");
    let dir = artifact_dir("meaningfulness");

    // --- Clustered: Synthetic 1.
    let mut rng = StdRng::seed_from_u64(7);
    let (data, _truth) =
        generate_projected_clusters_detailed(&ProjectedClusterSpec::case1(), &mut rng);
    let q = sample_labeled_queries(&data, 1, 31)[0];
    let cluster_size = (0..data.len())
        .filter(|&i| data.labels[i] == data.labels[q])
        .count();
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel),
    )
    .run_with(
        &hinn_core::DatasetHandle::new(&data.points).expect("dataset"),
        &data.points[q],
        &mut user,
        hinn_core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();
    let clustered_curve = sorted_probs(&outcome.probabilities);
    report(
        "Synthetic 1 (clustered)",
        &outcome.diagnosis,
        cluster_size,
        &clustered_curve,
    );

    // --- Uniform.
    let uniform = uniform_hypercube(5000, 20, 100.0, &mut rng);
    let uq: Vec<f64> = (0..20).map(|_| rng.gen_range(20.0..80.0)).collect();
    let mut user2 = HeuristicUser::default();
    let outcome_u = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel),
    )
    .run_with(
        &hinn_core::DatasetHandle::new(&uniform.points).expect("dataset"),
        &uq,
        &mut user2,
        hinn_core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();
    let uniform_curve = sorted_probs(&outcome_u.probabilities);
    report("Uniform", &outcome_u.diagnosis, 0, &uniform_curve);

    // Artifacts: CSV series + one SVG with both curves.
    write_series(
        &dir.join("clustered_sorted_probabilities.csv"),
        ("rank", "probability"),
        &to_series(&clustered_curve, 1200),
    );
    write_series(
        &dir.join("uniform_sorted_probabilities.csv"),
        ("rank", "probability"),
        &to_series(&uniform_curve, 1200),
    );
    let mut svg = SvgCanvas::new(
        "Sorted meaningfulness probabilities: clustered vs uniform",
        640.0,
        420.0,
        (0.0, 1200.0),
        (0.0, 1.05),
    );
    svg.polyline(
        &to_series(&clustered_curve, 1200)
            .iter()
            .map(|&(x, y)| [x, y])
            .collect::<Vec<_>>(),
        "#1f4e8c",
        2.0,
    );
    svg.polyline(
        &to_series(&uniform_curve, 1200)
            .iter()
            .map(|&(x, y)| [x, y])
            .collect::<Vec<_>>(),
        "#c44e52",
        2.0,
    );
    svg.text([820.0 * 0.7, 0.9], "clustered", 13);
    svg.text([820.0 * 0.7, 0.2], "uniform", 13);
    if cluster_size > 0 && cluster_size < 1200 {
        svg.polyline(
            &[[cluster_size as f64, 0.0], [cluster_size as f64, 1.05]],
            "#888888",
            1.0,
        );
        svg.text([cluster_size as f64 + 10.0, 1.0], "true cluster size", 11);
    }
    let path = dir.join("meaningfulness_curves.svg");
    svg.save(&path).expect("write svg");
    println!("\n  → {}", path.display());

    println!(
        "\nshape to check: the clustered curve holds high probability out to the\n\
         cluster boundary then drops steeply (the paper's 520-of-562 example);\n\
         the uniform curve never rises and shows no cliff → NotMeaningful."
    );
}

fn sorted_probs(probs: &[f64]) -> Vec<f64> {
    let mut s = probs.to_vec();
    s.sort_by(|a, b| b.partial_cmp(a).expect("NaN probability"));
    s
}

fn to_series(sorted: &[f64], max_rank: usize) -> Vec<(f64, f64)> {
    sorted
        .iter()
        .take(max_rank)
        .enumerate()
        .map(|(i, &p)| (i as f64, p))
        .collect()
}

fn report(label: &str, diagnosis: &SearchDiagnosis, cluster_size: usize, curve: &[f64]) {
    println!("\n{label}:");
    for rank in [0usize, 50, 200, 400, 600, 900, 1200] {
        if rank < curve.len() {
            println!("  P[rank {rank:>5}] = {:.3}", curve[rank]);
        }
    }
    match diagnosis {
        SearchDiagnosis::Meaningful {
            natural_k,
            gap,
            top_mean,
        } => println!(
            "  verdict: MEANINGFUL — natural k = {natural_k} (true cluster {cluster_size}), cliff {gap:.2}, top mean {top_mean:.2}"
        ),
        SearchDiagnosis::NotMeaningful { reason, .. } => {
            println!("  verdict: NOT MEANINGFUL — {reason}");
        }
    }
}
