//! **Table 2** — nearest-neighbor classification accuracy of full-
//! dimensional L2 vs the interactive method on (simulated) UCI data (§4.3).
//!
//! Protocol: for each query point, classify by the majority label of the
//! neighbors the method returns; for the interactive method the neighbor
//! set is the natural query cluster, for L2 it is the k nearest under the
//! full-dimensional Euclidean metric. Paper reference: ionosphere
//! 71% → 86%, segmentation 61% → 83%.
//!
//! The UCI datasets are statistically-matched simulations (no network in
//! this environment); see DESIGN.md's substitution table. If you have the
//! real files, point `HINN_UCI_DIR` at a directory containing
//! `ionosphere.data` and `segmentation.data` and the experiment runs on
//! the genuine datasets instead:
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_table2
//! HINN_UCI_DIR=~/uci cargo run --release -p hinn-bench --bin exp_table2
//! ```

use hinn_baselines::{knn_classify, Metric};
use hinn_bench::{banner, parallel_map, pct, sample_labeled_queries};
use hinn_core::{InteractiveSearch, SearchConfig};
use hinn_data::{simulated_ionosphere, simulated_segmentation};
use hinn_metrics::{classification_accuracy, majority_label};
use hinn_user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// More queries than the paper's 10 to tame sampling noise; the paper
/// protocol (10) is a subset of the reported runs.
const N_QUERIES: usize = 20;
const L2_K: usize = 10;

fn main() {
    banner("Table 2: classification accuracy, full-dim L2 vs interactive");
    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "Data Set (dim)", "Accuracy (L2)", "Interactive", "queries"
    );

    let mut seed_rng = StdRng::seed_from_u64(5);
    let datasets = match std::env::var_os("HINN_UCI_DIR") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            println!("(using real UCI files from {})", dir.display());
            vec![
                (
                    "Ionosphere (34, real)",
                    hinn_data::load_ionosphere(&dir.join("ionosphere.data"))
                        .expect("read ionosphere.data"),
                ),
                (
                    "Segmentation (19, real)",
                    hinn_data::load_segmentation(&dir.join("segmentation.data"))
                        .expect("read segmentation.data"),
                ),
            ]
        }
        None => vec![
            ("Ionosphere (34)", simulated_ionosphere(&mut seed_rng)),
            ("Segmentation (19)", simulated_segmentation(&mut seed_rng)),
        ],
    };
    for (label, data) in datasets {
        let queries = sample_labeled_queries(&data, N_QUERIES, 99);
        let handle = hinn_core::DatasetHandle::new(&data.points).expect("dataset");

        let l2: Vec<(usize, Option<usize>)> = parallel_map(&queries, |&q| {
            (
                data.labels[q].expect("labeled query"),
                knn_classify(
                    &data.points,
                    &data.labels,
                    &data.points[q],
                    L2_K,
                    Metric::L2,
                    Some(q),
                ),
            )
        });

        let interactive: Vec<(usize, Option<usize>)> = parallel_map(&queries, |&q| {
            let mut user = HeuristicUser::default();
            let outcome = InteractiveSearch::new(SearchConfig::default().with_support(20))
                .run_with(
                    &handle,
                    &data.points[q],
                    &mut user,
                    hinn_core::RunOptions::default(),
                )
                .expect("interactive session")
                .into_outcome();
            let set = outcome
                .natural_neighbors()
                .unwrap_or_else(|| outcome.neighbors.clone());
            let labels: Vec<Option<usize>> = set
                .iter()
                .filter(|&&i| i != q)
                .map(|&i| data.labels[i])
                .collect();
            (
                data.labels[q].expect("labeled query"),
                majority_label(&labels),
            )
        });

        println!(
            "{:<26} {:>14} {:>14} {:>12}",
            label,
            pct(classification_accuracy(&l2)),
            pct(classification_accuracy(&interactive)),
            N_QUERIES
        );
    }

    println!(
        "\npaper reference:  Ionosphere 71% → 86%;  Segmentation 61% → 83%\n\
         shape to check:   interactive ≥ L2, with the larger margin on the\n\
         many-class segmentation-style data (§4.3)."
    );
}
