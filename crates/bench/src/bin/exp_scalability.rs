//! **System cost** — wall-clock of the computer's side of the loop as data
//! size and dimensionality grow.
//!
//! The paper reports no performance numbers (its claims are about
//! meaningfulness), but an adopter needs to know the interaction stays
//! interactive: every view the user waits for costs one projection search
//! plus one KDE grid. This binary measures those, end to end, across `N`
//! and `d`, plus the VA-file speedup for the plain k-NN baseline.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_scalability
//! ```

use hinn_baselines::{knn_indices, Metric, VaFile};
use hinn_bench::banner;
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_data::projected::{generate_projected_clusters, ProjectedClusterSpec};
use hinn_user::HeuristicUser;
use std::time::Instant;

fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

fn main() {
    banner("System cost: per-session and per-view wall clock (computer side)");
    println!(
        "{:>7} {:>5} {:>16} {:>14} {:>14}",
        "N", "d", "session (ms)", "per view (ms)", "views"
    );
    for (n, d) in [
        (1000usize, 10usize),
        (1000, 20),
        (5000, 20),
        (5000, 40),
        (20000, 20),
    ] {
        let spec = ProjectedClusterSpec {
            n_points: n,
            dim: d,
            cluster_dim: (d / 3).max(2),
            ..ProjectedClusterSpec::case1()
        };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data = generate_projected_clusters(&spec, &mut rng);
        let query = data.points[data.cluster_members(0)[0]].clone();
        let handle = hinn_core::DatasetHandle::new(&data.points).expect("dataset");
        let config = SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            ..SearchConfig::default()
                .with_support(25)
                .with_mode(ProjectionMode::AxisParallel)
        };
        let mut views = 0;
        let ms = time(
            || {
                let mut user = HeuristicUser::default();
                let outcome = InteractiveSearch::new(config.clone())
                    .run_with(&handle, &query, &mut user, hinn_core::RunOptions::default())
                    .expect("interactive session")
                    .into_outcome();
                views = outcome.transcript.total_views();
            },
            3,
        );
        println!(
            "{n:>7} {d:>5} {ms:>16.1} {:>14.1} {views:>14}",
            ms / views.max(1) as f64
        );
    }
    println!(
        "\nshape to check: per-view latency stays well under a second — the\n\
         computer is never the bottleneck of the human-computer loop."
    );

    banner("Baseline index: linear scan vs VA-file (clustered 20-d data)");
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for n in [5000usize, 20000, 50000] {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        let clusters = 20;
        for _ in 0..clusters {
            let center: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..100.0)).collect();
            for _ in 0..n / clusters {
                pts.push(
                    center
                        .iter()
                        .map(|c| c + rng.gen_range(-2.0..2.0))
                        .collect(),
                );
            }
        }
        let q = pts[42].clone();
        let scan_ms = time(|| drop(knn_indices(&pts, &q, 25, Metric::L2)), 10);
        let va = VaFile::build(pts.clone(), 6);
        let (_, stats) = va.knn(&q, 25);
        let va_ms = time(|| drop(va.knn(&q, 25)), 10);
        println!(
            "N = {n:>6}: scan {scan_ms:>7.2} ms   va-file {va_ms:>7.2} ms   (refined {}/{} points)",
            stats.refined, stats.total
        );
    }
    println!(
        "\nshape to check: the filter lets the VA-file compute exact distances\n\
         for only ~1-2% of the points. In RAM the filter pass itself costs as\n\
         much as the scan (both are O(N·d)); the index's win materializes when\n\
         the exact vectors live on disk, as in [27]. Either way it returns the\n\
         *same* answer as the scan — a faster index does not make the answer\n\
         more meaningful (§1), which is the paper's opening argument."
    );
}
