//! **Wire serving throughput** — concurrent sessions over the TCP
//! front-end, measuring per-submit latency, session throughput, and the
//! overload-shedding ladder under real contention.
//!
//! A fleet of client threads drives discard-scripted sessions through
//! `hinn-net` against a deliberately tight session bound, so the run
//! crosses the shedding rungs (L1/L2/L3) and — at the margin — the typed
//! `overloaded` refusal, exactly the regime the ladder exists for. Every
//! submit round trip is timed client-side; shed/refused counts come from
//! the server's `net.*` telemetry counters.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin net_bench            # full
//! cargo run --release -p hinn-bench --bin net_bench -- --smoke # CI
//! ```
//!
//! Output: `BENCH_net.json` (override with `--out <path>`): p50/p99/max
//! submit latency, sessions/sec, per-rung shed counts, per-kind refusal
//! counts. `--telemetry <path>` additionally writes the full recorder
//! report (the input format of `obs_diff`).

use hinn_bench::banner;
use hinn_core::SearchConfig;
use hinn_net::{ClientError, NetClient, NetServer, NetServerConfig, Reply, Request, RetryPolicy};
use hinn_obs::SessionRecorder;
use hinn_serve::ServeConfig;
use hinn_user::UserResponse;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    smoke: bool,
    out: String,
    telemetry: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_net.json".to_string(),
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--telemetry" => args.telemetry = Some(it.next().expect("--telemetry needs a path")),
            other => panic!("unknown flag {other:?} (known: --smoke, --out, --telemetry)"),
        }
    }
    args
}

/// Deterministic xorshift for the planted fixture.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Planted cluster plus background noise (the serving-soak fixture).
fn planted(n_cluster: usize, n_noise: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = XorShift(0xDA3E39CB94B95BDB);
    let unif = |rng: &mut XorShift| (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..n_cluster {
        pts.push(
            (0..d)
                .map(|_| 50.0 + (unif(&mut rng) - 0.5) * 2.0)
                .collect(),
        );
    }
    for _ in 0..n_noise {
        pts.push((0..d).map(|_| unif(&mut rng) * 100.0).collect());
    }
    pts
}

/// Drive one session over the wire with plain discards, timing every
/// submit round trip. Returns the submit latencies, or the typed refusal
/// that ended the attempt.
fn drive_session(
    client: &mut NetClient,
    tenant: &str,
    query: &[f64],
) -> Result<Vec<f64>, ClientError> {
    let mut latencies = Vec::new();
    let mut reply = client.call_with_retry(&Request::Open {
        tenant: tenant.to_string(),
        query: query.to_vec(),
    })?;
    for _ in 0..200 {
        match reply {
            Reply::Done(_) => return Ok(latencies),
            Reply::View(view) => {
                let start = Instant::now();
                reply = client.call_with_retry(&Request::Submit {
                    session: view.session,
                    major: view.major,
                    minor: view.minor,
                    response: UserResponse::Discard,
                })?;
                latencies.push(start.elapsed().as_secs_f64() * 1000.0);
            }
            Reply::Error(e) => return Err(ClientError::Server(e)),
            other => return Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }
    Err(ClientError::UnexpectedReply(
        "session did not terminate within 200 views".to_string(),
    ))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    banner("Wire serving: concurrent sessions through the TCP front-end");

    // Sized so the fleet outnumbers the session bound: the shed ladder
    // must climb, and at the margin refuse (the retry policy absorbs the
    // refusals, so every session still completes).
    let (clients, sessions_per_client, max_sessions) =
        if args.smoke { (6, 2, 4) } else { (32, 4, 24) };
    let points = Arc::new(planted(30, 170, 8));
    let queries: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let mut q = points[i].clone();
            for x in &mut q {
                *x += i as f64 * 0.125;
            }
            q
        })
        .collect();

    let search = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(20)
    };
    let serve = ServeConfig::new(search)
        .with_max_resident(max_sessions)
        .with_warm_capacity(4 * max_sessions)
        .with_max_sessions(max_sessions);
    let config = NetServerConfig::new(serve)
        .with_max_connections(clients + 8)
        .with_tenant_quota(max_sessions)
        .with_deadlines(Duration::from_secs(60), Duration::from_secs(60));

    let recorder = Arc::new(SessionRecorder::new());
    let _guard = hinn_obs::install(recorder.clone());
    let server = NetServer::bind(
        config,
        hinn_core::DatasetHandle::new(&points).expect("dataset"),
    )
    .expect("bind");
    let addr = server.addr();

    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::new(addr)
                    .with_deadlines(Duration::from_secs(60), Duration::from_secs(60))
                    .with_retry(RetryPolicy {
                        max_attempts: 64,
                        base_backoff_ms: 2,
                    });
                let tenant = format!("bench{}", c % 4);
                let mut latencies = Vec::new();
                let mut completed = 0usize;
                let mut failed = 0usize;
                for s in 0..sessions_per_client {
                    let query = &queries[(c + s) % queries.len()];
                    match drive_session(&mut client, &tenant, query) {
                        Ok(mut ms) => {
                            latencies.append(&mut ms);
                            completed += 1;
                        }
                        Err(_) => failed += 1,
                    }
                }
                (latencies, completed, failed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    for h in handles {
        let (ms, ok, bad) = h.join().expect("client thread");
        latencies.extend(ms);
        completed += ok;
        failed += bad;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let report = recorder.report();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p99, max) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(f64::NAN),
    );
    let sessions_per_sec = completed as f64 / wall_s;
    let shed = [
        report.counter("net.shed.l1"),
        report.counter("net.shed.l2"),
        report.counter("net.shed.l3"),
    ];
    let refused = [
        report.counter("net.refused.overload"),
        report.counter("net.refused.quota"),
        report.counter("net.refused.fairness"),
    ];

    println!(
        "{completed} sessions ({failed} failed) in {wall_s:.2} s → {sessions_per_sec:.1}/s; \
         submit p50 {p50:.1} ms, p99 {p99:.1} ms, max {max:.1} ms"
    );
    println!(
        "shed l1/l2/l3: {}/{}/{}; refused overload/quota/fairness: {}/{}/{}",
        shed[0], shed[1], shed[2], refused[0], refused[1], refused[2]
    );
    assert_eq!(
        failed, 0,
        "with bounded retries every session must complete"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"sessions\": {completed},\n  \"failed\": {failed},\n"
    ));
    json.push_str(&format!("  \"submits\": {},\n", latencies.len()));
    json.push_str(&format!("  \"wall_s\": {},\n", json_f64(wall_s)));
    json.push_str(&format!(
        "  \"sessions_per_sec\": {},\n",
        json_f64(sessions_per_sec)
    ));
    json.push_str(&format!(
        "  \"submit_ms\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        json_f64(p50),
        json_f64(p99),
        json_f64(max)
    ));
    json.push_str(&format!(
        "  \"shed\": {{\"l1\": {}, \"l2\": {}, \"l3\": {}}},\n",
        shed[0], shed[1], shed[2]
    ));
    json.push_str(&format!(
        "  \"refused\": {{\"overload\": {}, \"quota\": {}, \"fairness\": {}}}\n",
        refused[0], refused[1], refused[2]
    ));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("wrote {}", args.out);

    if let Some(path) = &args.telemetry {
        std::fs::write(path, report.to_json()).expect("write telemetry JSON");
        println!("wrote {path}");
    }
}
