//! **Amortized batch serving** — repeated query batches against one
//! dataset through the shared session cache.
//!
//! The serving scenario: a long-lived [`hinn_core::BatchRunner`] answers
//! query batches against a dataset that does not change between batches.
//! Its [`hinn_core::SessionCache`] persists across `run` calls, so the
//! first round pays the full projection/KDE cost and every later round is
//! served from memoized artifacts. This binary measures exactly that:
//! one cold round, then `rounds - 1` identical warm rounds, and reports
//! the per-round wall clock plus the cache counters.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin serving_bench            # full
//! cargo run --release -p hinn-bench --bin serving_bench -- --smoke # CI
//! ```
//!
//! Output: `BENCH_serving.json` (override with `--out <path>`). In full
//! mode the binary exits nonzero unless warm rounds are at least 2× as
//! fast as the cold round — the PR's acceptance bar.

use hinn_bench::banner;
use hinn_core::{BatchRunner, CachePolicy, ProjectionMode, SearchConfig};
use hinn_data::projected::{generate_projected_clusters, ProjectedClusterSpec};
use hinn_obs::SessionRecorder;
use hinn_user::{HeuristicUser, UserModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    smoke: bool,
    out: String,
    rounds: usize,
    /// Write the full telemetry report (counters, histograms with
    /// percentiles) as JSON — the input format of `obs_diff`.
    telemetry: Option<String>,
    /// Record timed span trees and write a Chrome/Perfetto trace.
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_serving.json".to_string(),
        rounds: 5,
        telemetry: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--rounds" => {
                args.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds needs a positive integer");
            }
            "--telemetry" => args.telemetry = Some(it.next().expect("--telemetry needs a path")),
            "--trace" => args.trace = Some(it.next().expect("--trace needs a path")),
            other => panic!(
                "unknown flag {other:?} (known: --smoke, --out, --rounds, --telemetry, --trace)"
            ),
        }
    }
    assert!(
        args.rounds >= 2,
        "need at least one cold and one warm round"
    );
    args
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    banner("Batch serving: repeated query rounds on a shared session cache");

    // Clustered dataset sized for the mode; the queries are cluster
    // members, re-submitted identically every round (the repeated-query
    // serving pattern the cache is built for).
    let (n, d, n_queries) = if args.smoke {
        (600, 6, 3)
    } else {
        (4000, 12, 8)
    };
    let spec = ProjectedClusterSpec {
        n_points: n,
        dim: d,
        n_clusters: 4,
        cluster_dim: (d / 3).max(2),
        ..ProjectedClusterSpec::case1()
    };
    let mut rng = StdRng::seed_from_u64(17);
    let data = generate_projected_clusters(&spec, &mut rng);
    let queries: Vec<Vec<f64>> = (0..n_queries)
        .map(|q| data.points[data.cluster_members(q % 4)[q]].clone())
        .collect();

    // The default capacities are sized for one interactive session (~a
    // dozen views); a serving deployment sizes the shared cache to its
    // batch. 4096 entries hold every artifact of this workload, so warm
    // rounds measure pure cache service with zero evictions.
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(20)
            .with_mode(ProjectionMode::AxisParallel)
            .with_cache_policy(CachePolicy::with_uniform_capacity(4096))
    };

    // One recorder around the whole run so the cache counters cover every
    // round; one runner so its session cache persists across rounds. The
    // span-tree clock only runs when a trace was asked for.
    let recorder = Arc::new(if args.trace.is_some() {
        SessionRecorder::with_trace()
    } else {
        SessionRecorder::new()
    });
    let _guard = hinn_obs::install(recorder.clone());
    let runner = BatchRunner::new(
        &hinn_core::DatasetHandle::new(&data.points).expect("dataset"),
        config,
    );
    let make_user = || Box::new(HeuristicUser::default()) as Box<dyn UserModel>;

    let mut round_ms = Vec::with_capacity(args.rounds);
    for round in 0..args.rounds {
        let start = Instant::now();
        let reports = runner.run(&queries, make_user);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert!(
            reports.iter().all(|r| !r.is_failed()),
            "round {round}: a query failed"
        );
        round_ms.push(ms);
        println!(
            "round {round:>2} ({}): {ms:>9.1} ms for {} queries",
            if round == 0 { "cold" } else { "warm" },
            queries.len()
        );
    }

    let cold_ms = round_ms[0];
    let warm: &[f64] = &round_ms[1..];
    let warm_mean_ms = warm.iter().sum::<f64>() / warm.len() as f64;
    let speedup = cold_ms / warm_mean_ms;
    let report = recorder.report();
    let cache = report.cache_stats();
    println!(
        "\ncold {cold_ms:.1} ms, warm mean {warm_mean_ms:.1} ms → {speedup:.2}× speedup; \
         cache: {} hits / {} lookups, {} evictions",
        cache.hits,
        cache.lookups(),
        cache.evictions
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"n_points\": {n},\n  \"dim\": {d},\n"));
    json.push_str(&format!(
        "  \"rounds\": {},\n  \"queries_per_round\": {},\n",
        args.rounds,
        queries.len()
    ));
    json.push_str(&format!("  \"cold_ms\": {},\n", json_f64(cold_ms)));
    json.push_str("  \"warm_ms\": [");
    for (i, ms) in warm.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&json_f64(*ms));
    }
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"warm_mean_ms\": {},\n",
        json_f64(warm_mean_ms)
    ));
    json.push_str(&format!("  \"speedup\": {},\n", json_f64(speedup)));
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}\n",
        cache.hits, cache.misses, cache.evictions
    ));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("wrote {}", args.out);

    if let Some(hist) = report.histograms.get("batch.query_ms") {
        println!(
            "batch.query_ms: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms over {} queries",
            hist.quantile(0.50),
            hist.quantile(0.90),
            hist.quantile(0.99),
            hist.count
        );
    }
    if let Some(path) = &args.telemetry {
        if hinn_obs::export::write_export(path, &report.to_json(), "telemetry JSON") {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.trace {
        if hinn_obs::export::write_export(path, &report.to_chrome_trace(), "Perfetto trace") {
            println!("wrote {path}");
        }
        eprint!("{}", report.flame_text());
    }

    // Smoke mode (CI) only proves the path runs end to end; the timing
    // bar is enforced in full mode on a real workload.
    if !args.smoke {
        assert!(
            speedup >= 2.0,
            "acceptance bar: warm rounds must be ≥2× faster than the cold \
             round (got {speedup:.2}×)"
        );
        println!("acceptance bar met: {speedup:.2}× ≥ 2×");
    }
}
