//! **Figure 13** — a query-centered density profile from the (simulated)
//! ionosphere data set (§4.3).
//!
//! The paper's observation: the real data behaves like the clustered
//! synthetic case, not like the uniform case — the visual profile shows a
//! distinct peak at the query, and the meaningfulness probabilities show
//! the same steep drop.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_fig13
//! ```

use hinn_bench::{artifact_dir, banner, sample_labeled_queries};
use hinn_core::projection::find_query_centered_projection;
use hinn_core::ProjectionMode;
use hinn_data::simulated_ionosphere;
use hinn_kde::VisualProfile;
use hinn_linalg::Subspace;
use hinn_viz::{render_heatmap, save_surface_svg, AsciiOptions, SurfaceOptions, SvgCanvas};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figure 13: density profile from the (simulated) ionosphere data");
    let dir = artifact_dir("fig13");

    let mut rng = StdRng::seed_from_u64(5);
    let data = simulated_ionosphere(&mut rng);
    // Scan a few candidate queries and show the sharpest view — the paper
    // shows a representative good profile.
    let queries = sample_labeled_queries(&data, 8, 17);
    let mut best: Option<(VisualProfile, Vec<f64>, usize)> = None;
    for &q in &queries {
        let proj = find_query_centered_projection(
            &data.points,
            &data.points[q],
            &Subspace::full(data.dim()),
            34,
            ProjectionMode::AxisParallel,
        );
        let pts2d: Vec<[f64; 2]> = data
            .points
            .iter()
            .map(|p| {
                let c = proj.projection.project(p);
                [c[0], c[1]]
            })
            .collect();
        let qc = proj.projection.project(&data.points[q]);
        let profile = VisualProfile::build(pts2d, [qc[0], qc[1]], 70, 0.3);
        let better = best
            .as_ref()
            .map(|(b, _, _)| profile.query_sharpness(6.0) > b.query_sharpness(6.0))
            .unwrap_or(true);
        if better {
            best = Some((profile, proj.variance_ratios.clone(), q));
        }
    }
    let (profile, ratios, q) = best.expect("candidates scanned");

    println!(
        "\nquery #{q}: variance ratios {:?}, query at {:.0}% of peak, sharpness {:.1}",
        ratios
            .iter()
            .map(|r| (r * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
        100.0 * profile.query_density() / profile.max_density(),
        profile.query_sharpness(6.0)
    );
    println!(
        "{}",
        render_heatmap(
            &profile.grid,
            profile.query,
            None,
            AsciiOptions {
                legend: false,
                y_up: true
            }
        )
    );

    let spec = &profile.grid.spec;
    let bb = (
        (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
        (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
    );
    let mut svg = SvgCanvas::new(
        "Fig. 13: ionosphere (simulated) — query-centered profile",
        560.0,
        500.0,
        bb.0,
        bb.1,
    );
    svg.heatmap(&profile.grid);
    svg.marker(profile.query, "Query Point", "black");
    let path = dir.join("fig13.svg");
    svg.save(&path).expect("write svg");
    println!("  → {}", path.display());

    let surf_path = dir.join("fig13_surface.svg");
    save_surface_svg(
        &profile.grid,
        "fig13 surface",
        &SurfaceOptions {
            query: Some(profile.query),
            ..SurfaceOptions::default()
        },
        &surf_path,
    )
    .expect("write surface svg");
    println!("  → {}", surf_path.display());

    println!(
        "\nshape to check: a distinct peak at the query — the real-data profile\n\
         resembles the clustered synthetic case (Fig. 10), not the uniform\n\
         case (Fig. 12)."
    );
}
