//! **Figure 9** — density profiles of (a) a good and (b) a poor
//! query-centered projection, with the density-separator plane (§2.2).
//!
//! Fig. 9(a) of the paper shows a sharp, well-separated peak containing the
//! query point with a separator plane at τ = 20 slicing out a distinct
//! cluster; Fig. 9(b) shows the query in a sparse region of an otherwise
//! structured profile. This experiment regenerates both situations, writes
//! SVG heatmaps with the `(τ, Q)`-selection overlaid, and prints how the
//! selection grows as the separator plane descends — the paper's "by
//! reducing τ further, more and more points from the fringes are included".
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_fig9
//! ```

use hinn_bench::{artifact_dir, banner, write_series};
use hinn_kde::{extract_contours, query_contour, CornerRule, VisualProfile};
use hinn_viz::{render_heatmap, save_surface_svg, AsciiOptions, SurfaceOptions, SvgCanvas};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Figure 9: good vs poor density profile with a density separator");
    let dir = artifact_dir("fig9");
    let mut rng = StdRng::seed_from_u64(4);

    // Three-cluster data as in the paper's profile (Fig. 9 shows multiple
    // peaks; the query sits on one of them in (a)).
    let mut points = Vec::new();
    for (cx, cy, n, s) in [
        (0.25, 0.30, 150, 0.05),
        (0.75, 0.65, 120, 0.06),
        (0.30, 0.85, 90, 0.05),
    ] {
        for _ in 0..n {
            points.push([
                cx + s * hinn_data::projected::randn(&mut rng),
                cy + s * hinn_data::projected::randn(&mut rng),
            ]);
        }
    }
    for _ in 0..140 {
        points.push([rng.gen::<f64>() * 1.1, rng.gen::<f64>() * 1.1]);
    }

    let cases = [
        ("a", [0.25, 0.30], "good: query on a well-separated peak"),
        ("b", [0.55, 0.12], "poor: query in a sparse region"),
    ];
    for (panel, query, caption) in cases {
        let profile = VisualProfile::build(points.clone(), query, 70, 0.5);
        let tau = profile.max_density() * 0.25; // the paper's plane at a mid height
        let mask = profile.connected_mask(tau, CornerRule::AtLeastThree);
        let picked = profile.select(tau, CornerRule::AtLeastThree);

        println!(
            "\nFig. 9({panel}) — {caption}\n  peak {:.3}, query density {:.3} ({:.0}% of peak); separator τ = {:.3} selects {} points",
            profile.max_density(),
            profile.query_density(),
            100.0 * profile.query_density() / profile.max_density(),
            tau,
            picked.len()
        );
        println!(
            "{}",
            render_heatmap(
                &profile.grid,
                query,
                Some(&mask),
                AsciiOptions {
                    legend: false,
                    y_up: true
                }
            )
        );

        // SVG: heatmap + query + selected points highlighted.
        let spec = &profile.grid.spec;
        let bb = (
            (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
            (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
        );
        let mut svg = SvgCanvas::new(
            &format!("Fig. 9({panel}): {caption} (τ = {tau:.3})"),
            560.0,
            500.0,
            bb.0,
            bb.1,
        );
        svg.heatmap(&profile.grid);
        let selected: Vec<[f64; 2]> = picked.iter().map(|&i| profile.points[i]).collect();
        svg.scatter(&selected, 2.5, "#d62728");
        // The paper's (τ, Q)-contour: every closed region of the separator
        // plane in grey, the query's own region highlighted.
        for contour in extract_contours(&profile.grid, tau) {
            svg.polyline(&contour, "#777777", 1.2);
        }
        if let Some(qc) = query_contour(&profile.grid, tau, query) {
            svg.polyline(&qc, "#000000", 2.2);
        }
        svg.marker(query, "Query Point", "black");
        let path = dir.join(format!("fig9{panel}.svg"));
        svg.save(&path).expect("write svg");
        println!("  → {}", path.display());

        // The paper's own presentation: an isometric density surface with
        // the separator plane slicing it.
        let surf_path = dir.join(format!("fig9{panel}_surface.svg"));
        save_surface_svg(
            &profile.grid,
            &format!("Fig. 9({panel}) surface: {caption}"),
            &SurfaceOptions {
                separator: Some(tau),
                query: Some(query),
                ..SurfaceOptions::default()
            },
            &surf_path,
        )
        .expect("write surface svg");
        println!("  → {}", surf_path.display());

        // The separator sweep (the interaction of Fig. 6): τ vs |selection|.
        let curve = profile.selection_curve(40, CornerRule::AtLeastThree);
        let series: Vec<(f64, f64)> = curve.iter().map(|&(t, n)| (t, n as f64)).collect();
        write_series(
            &dir.join(format!("fig9{panel}_separator_sweep.csv")),
            ("tau", "selected"),
            &series,
        );
    }
    println!(
        "\nshape to check: (a) sharp separated peak at Q, a mid-τ plane cuts a\n\
         distinct cluster; (b) Q in a low-density region — the same plane\n\
         selects nothing."
    );
}
