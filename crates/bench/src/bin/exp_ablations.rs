//! **Ablations** — the design choices DESIGN.md calls out, each swept on a
//! fixed Synthetic-1-style workload (N = 2000 for speed) with 4 queries:
//!
//! 1. KDE bandwidth scale (the over-smoothing correction to Silverman's
//!    rule — the paper quotes the rule verbatim; DESIGN.md documents why a
//!    scale < 1 is needed on multimodal projections),
//! 2. density-connectivity corner rule (Def. 2.2's ≥3-of-4 vs variants),
//! 3. projection mode (axis-parallel vs arbitrary, §1.1),
//! 4. projection weights `w_i` (uniform — the paper's setting — vs graded),
//! 5. user noise (how much imprecision the meaningfulness statistics
//!    absorb, via `NoisyUser`).
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_ablations
//! ```

use hinn_bench::{banner, pct, sample_labeled_queries};
use hinn_core::{BandwidthMode, InteractiveSearch, ProjectionMode, SearchConfig, SearchDiagnosis};
use hinn_data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn_data::Dataset;
use hinn_kde::CornerRule;
use hinn_metrics::PrecisionRecall;
use hinn_user::{HeuristicUser, NoisyUser, PolygonUser, UserModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUERIES: usize = 4;

fn workload() -> Dataset {
    let spec = ProjectedClusterSpec {
        n_points: 2000,
        ..ProjectedClusterSpec::case1()
    };
    let mut rng = StdRng::seed_from_u64(7);
    generate_projected_clusters_detailed(&spec, &mut rng).0
}

/// Run the search for every query and report mean precision/recall of the
/// returned set (natural when found, top-s otherwise) plus the detection
/// rate.
fn evaluate(
    data: &Dataset,
    config: &SearchConfig,
    make_user: &mut dyn FnMut() -> Box<dyn UserModel>,
) -> (PrecisionRecall, usize) {
    let queries = sample_labeled_queries(data, N_QUERIES, 31);
    let handle = hinn_core::DatasetHandle::new(&data.points).expect("dataset");
    let mut prs = Vec::new();
    let mut found = 0;
    for &q in &queries {
        let relevant: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels[i] == data.labels[q])
            .collect();
        let mut user = make_user();
        let outcome = InteractiveSearch::new(config.clone())
            .run_with(
                &handle,
                &data.points[q],
                user.as_mut(),
                hinn_core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome();
        let set = match outcome.diagnosis {
            SearchDiagnosis::Meaningful { .. } => {
                found += 1;
                outcome.natural_neighbors().expect("meaningful")
            }
            SearchDiagnosis::NotMeaningful { .. } => outcome.neighbors.clone(),
        };
        prs.push(PrecisionRecall::compute(&set, &relevant));
    }
    (PrecisionRecall::mean(&prs), found)
}

fn row(label: &str, pr: PrecisionRecall, found: usize) {
    println!(
        "  {:<34} prec {:>7}  rec {:>7}  meaningful {}/{}",
        label,
        pct(pr.precision),
        pct(pr.recall),
        found,
        N_QUERIES
    );
}

fn base_config() -> SearchConfig {
    SearchConfig::default()
        .with_support(25)
        .with_mode(ProjectionMode::AxisParallel)
}

fn main() {
    let data = workload();
    let mut heuristic = || -> Box<dyn UserModel> { Box::new(HeuristicUser::default()) };

    banner("Ablation 1: KDE bandwidth scale (Silverman multiplier)");
    for scale in [1.0, 0.6, 0.3, 0.15] {
        let config = SearchConfig {
            bandwidth_scale: scale,
            ..base_config()
        };
        let (pr, found) = evaluate(&data, &config, &mut heuristic);
        row(&format!("bandwidth_scale = {scale}"), pr, found);
    }
    println!("  (the literal rule, 1.0, over-smooths multimodal projections)");

    banner("Ablation 1b: fixed vs adaptive kernel estimator (Silverman §5.3)");
    for (mode, scale, label) in [
        (BandwidthMode::Fixed, 0.3, "fixed, scale 0.3 (default)"),
        (
            BandwidthMode::Adaptive { alpha: 0.5 },
            0.5,
            "adaptive α=0.5, scale 0.5",
        ),
        (
            BandwidthMode::Adaptive { alpha: 0.5 },
            1.0,
            "adaptive α=0.5, literal Silverman",
        ),
    ] {
        let config = SearchConfig {
            bandwidth_mode: mode,
            bandwidth_scale: scale,
            ..base_config()
        };
        let (pr, found) = evaluate(&data, &config, &mut heuristic);
        row(label, pr, found);
    }
    println!("  (adaptive bandwidths recover sharp peaks without the global rescale)");

    banner("Ablation 2: density-connectivity corner rule (Def. 2.2)");
    for (rule, label) in [
        (CornerRule::AtLeastThree, "≥3 of 4 corners (paper)"),
        (CornerRule::AllFour, "all 4 corners"),
        (CornerRule::AtLeastTwo, "≥2 of 4 corners"),
        (CornerRule::AnyOne, "any corner"),
    ] {
        let config = SearchConfig {
            corner_rule: rule,
            ..base_config()
        };
        let (pr, found) = evaluate(&data, &config, &mut heuristic);
        row(label, pr, found);
    }

    banner("Ablation 3: projection mode (§1.1)");
    for (mode, label) in [
        (
            ProjectionMode::AxisParallel,
            "axis-parallel (interpretable)",
        ),
        (ProjectionMode::Arbitrary, "arbitrary (PCA-based)"),
    ] {
        let config = SearchConfig {
            projection_mode: mode,
            ..base_config()
        };
        let (pr, found) = evaluate(&data, &config, &mut heuristic);
        row(label, pr, found);
    }
    println!("  (the planted clusters are axis-parallel; arbitrary mode must not lose much)");

    banner("Ablation 4: projection weights w_i (Fig. 7)");
    for (weights, label) in [
        (Vec::new(), "uniform (paper's w_i = 1)"),
        (
            vec![3.0, 2.5, 2.0, 1.5, 1.0, 0.75, 0.5, 0.5, 0.25, 0.25],
            "graded (early views weighted up)",
        ),
    ] {
        let config = SearchConfig {
            projection_weights: weights,
            ..base_config()
        };
        let (pr, found) = evaluate(&data, &config, &mut heuristic);
        row(label, pr, found);
    }

    banner("Ablation 4b: density separator vs polygonal separation (§2.2)");
    for (make, label) in [
        (
            (|| -> Box<dyn UserModel> { Box::new(HeuristicUser::default()) })
                as fn() -> Box<dyn UserModel>,
            "density separator (paper's preferred)",
        ),
        (
            (|| -> Box<dyn UserModel> { Box::new(PolygonUser::default()) })
                as fn() -> Box<dyn UserModel>,
            "polygonal (bounding-box) separation",
        ),
    ] {
        let mut boxed = move || make();
        let (pr, found) = evaluate(&data, &base_config(), &mut boxed);
        row(label, pr, found);
    }
    println!(
        "  (the paper: the separator \"tends to be a more attractive option,\n\
          since it can separate out clusters of arbitrary shapes\")"
    );

    banner("Ablation 5: user imprecision (NoisyUser wrapper)");
    for (jitter, p_err, label) in [
        (0.0, 0.0, "perfect separator placement"),
        (0.15, 0.05, "mild noise (15% jitter, 5% flips)"),
        (0.35, 0.15, "heavy noise (35% jitter, 15% flips)"),
    ] {
        let mut make = || -> Box<dyn UserModel> {
            Box::new(NoisyUser::new(HeuristicUser::default(), 99).with_rates(jitter, p_err, p_err))
        };
        let (pr, found) = evaluate(&data, &base_config(), &mut make);
        row(label, pr, found);
    }
    println!(
        "  (the meaningfulness statistics aggregate over many views precisely to\n\
          absorb per-view user error — §3)"
    );
}
