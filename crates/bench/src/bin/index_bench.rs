//! **Candidate generation: HNSW vs exhaustive linear scan.**
//!
//! Builds the deterministic [`hinn_index::Hnsw`] graph over a seeded
//! Gaussian-mixture dataset, then answers the same queries twice — once
//! with a serial exhaustive scan (the exact baseline) and once through
//! the graph — and reports per-query latency, the speedup, and recall@10
//! of the approximate lists against the exact ones.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin index_bench            # full, N=1M
//! cargo run --release -p hinn-bench --bin index_bench -- --smoke # CI, N=20k
//! ```
//!
//! Output: `BENCH_index.json` (override with `--out <path>`). In full
//! mode the binary exits nonzero unless HNSW search is at least 5× as
//! fast as the linear scan *and* mean recall@10 is at least 0.9 — the
//! PR's acceptance bar.

use hinn_bench::banner;
use hinn_index::{recall::recall_at_k, Hnsw, HnswParams};
use hinn_obs::QuantileSketch;
use std::time::Instant;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_index.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => panic!("unknown flag {other:?} (known: --smoke, --out)"),
        }
    }
    args
}

/// xorshift64* — the same tiny generator the integration-test fixtures
/// use, so bench datasets are reproducible without any RNG dependency.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Seeded Gaussian mixture: `n_clusters` centers in `[0, 100)^d`, points
/// scattered around them with per-axis deviation `sigma` (Box–Muller).
fn gaussian_mixture(n: usize, d: usize, n_clusters: usize, sigma: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut next = xorshift(seed);
    let mut unif = move || (next() >> 11) as f64 / (1u64 << 53) as f64;
    let centers: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| (0..d).map(|_| unif() * 100.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            (0..d)
                .map(|j| {
                    let u1 = 1.0 - unif();
                    let u2 = unif();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    c[j] + sigma * z
                })
                .collect()
        })
        .collect()
}

use hinn_linalg::vector::dist_sq;

/// Exact serial kNN over the whole dataset — the baseline both sides of
/// the comparison are judged against.
fn linear_top_k(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        dist_sq(&points[a], query)
            .total_cmp(&dist_sq(&points[b], query))
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    banner("Candidate generation: deterministic HNSW vs exhaustive linear scan");

    const K: usize = 10;
    let (n, d, n_queries) = if args.smoke {
        (20_000, 16, 20)
    } else {
        (1_000_000, 16, 50)
    };
    println!("dataset: gaussian mixture, n={n} d={d}, {n_queries} queries, k={K}");
    let t0 = Instant::now();
    let points = gaussian_mixture(n, d, 16, 6.0, 0xBE2C_0001);
    println!("generated in {:.1} s", t0.elapsed().as_secs_f64());

    // Query points spread across the dataset (and therefore the clusters).
    let stride = (n / n_queries).max(1);
    let queries: Vec<&Vec<f64>> = (0..n_queries).map(|q| &points[q * stride]).collect();

    let params = HnswParams::default().with_ef_search(120);
    let t0 = Instant::now();
    let graph = Hnsw::build(points.clone(), params);
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "hnsw build: {:.1} s (m={}, ef_construction={})",
        build_ms / 1000.0,
        params.m,
        params.ef_construction
    );

    // Exact pass: serial exhaustive scan, timed per query and fed through
    // the quantile sketch so tail latency is reported, not just the mean.
    let mut linear_sketch = QuantileSketch::default();
    let mut linear_total = 0.0;
    let exact: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let ids = linear_top_k(&points, q, K);
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            linear_sketch.record(ms);
            linear_total += ms;
            ids
        })
        .collect();
    let linear_ms = linear_total / n_queries as f64;

    // Approximate pass: same queries through the graph.
    let mut hnsw_sketch = QuantileSketch::default();
    let mut hnsw_total = 0.0;
    let approx: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let ids = graph.knn(q, K);
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            hnsw_sketch.record(ms);
            hnsw_total += ms;
            ids
        })
        .collect();
    let hnsw_ms = hnsw_total / n_queries as f64;

    let speedup = linear_ms / hnsw_ms;
    let recall = exact
        .iter()
        .zip(&approx)
        .map(|(e, a)| recall_at_k(e, a, K))
        .sum::<f64>()
        / n_queries as f64;
    println!(
        "linear {linear_ms:.3} ms/query, hnsw {hnsw_ms:.3} ms/query → {speedup:.1}× speedup; \
         recall@{K} {recall:.3}"
    );
    let pct = |s: &QuantileSketch| {
        (
            s.p50().unwrap_or(f64::NAN),
            s.p90().unwrap_or(f64::NAN),
            s.p99().unwrap_or(f64::NAN),
        )
    };
    let (lp50, lp90, lp99) = pct(&linear_sketch);
    let (hp50, hp90, hp99) = pct(&hnsw_sketch);
    println!("linear per-query: p50 {lp50:.3} p90 {lp90:.3} p99 {lp99:.3} ms");
    println!("hnsw   per-query: p50 {hp50:.3} p90 {hp90:.3} p99 {hp99:.3} ms");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"n_points\": {n},\n  \"dim\": {d},\n"));
    json.push_str(&format!("  \"n_queries\": {n_queries},\n  \"k\": {K},\n"));
    json.push_str(&format!(
        "  \"params\": {{\"m\": {}, \"max_m0\": {}, \"ef_construction\": {}, \"ef_search\": {}, \"seed\": {}}},\n",
        params.m, params.max_m0, params.ef_construction, params.ef_search, params.seed
    ));
    json.push_str(&format!("  \"build_ms\": {},\n", json_f64(build_ms)));
    json.push_str(&format!(
        "  \"linear_ms_per_query\": {},\n",
        json_f64(linear_ms)
    ));
    json.push_str(&format!(
        "  \"linear_ms_quantiles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
        json_f64(lp50),
        json_f64(lp90),
        json_f64(lp99)
    ));
    json.push_str(&format!(
        "  \"hnsw_ms_per_query\": {},\n",
        json_f64(hnsw_ms)
    ));
    json.push_str(&format!(
        "  \"hnsw_ms_quantiles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
        json_f64(hp50),
        json_f64(hp90),
        json_f64(hp99)
    ));
    json.push_str(&format!("  \"speedup\": {},\n", json_f64(speedup)));
    json.push_str(&format!("  \"recall_at_k\": {}\n", json_f64(recall)));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("wrote {}", args.out);

    // Smoke mode (CI) only proves the path runs end to end; the bars are
    // enforced in full mode on the 1M-point workload.
    if !args.smoke {
        assert!(
            speedup >= 5.0,
            "acceptance bar: hnsw search must be ≥5× faster than the linear \
             scan (got {speedup:.1}×)"
        );
        assert!(
            recall >= 0.9,
            "acceptance bar: recall@{K} must be ≥0.9 (got {recall:.3})"
        );
        println!("acceptance bars met: {speedup:.1}× ≥ 5×, recall {recall:.3} ≥ 0.9");
    }
}
