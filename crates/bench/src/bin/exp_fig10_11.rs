//! **Figures 10–11** — density profiles of an *early* vs a *late* minor
//! iteration on Synthetic 1 (§4.1).
//!
//! The paper's point: the graded subspace determination pushes most of the
//! data's discrimination into the first few minor iterations. Fig. 10 (an
//! early minor iteration) shows a crisp well-separated peak at the query;
//! Fig. 11 (the last minor iteration, forced into the orthogonal leftovers)
//! shows a much less discriminating profile. This experiment runs one real
//! session on Synthetic-1 data with profile recording on, pulls the first
//! and last views of the first major iteration, and reports the grading
//! diagnostics (variance ratios, query sharpness) alongside the rendered
//! profiles.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_fig10_11
//! ```

use hinn_bench::{artifact_dir, banner, sample_labeled_queries, write_series};
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn_user::HeuristicUser;
use hinn_viz::{render_heatmap, save_surface_svg, AsciiOptions, SurfaceOptions, SvgCanvas};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figures 10-11: early vs late minor-iteration profiles (Synthetic 1)");
    let dir = artifact_dir("fig10_11");

    let mut rng = StdRng::seed_from_u64(7);
    let (data, _truth) =
        generate_projected_clusters_detailed(&ProjectedClusterSpec::case1(), &mut rng);
    let q = sample_labeled_queries(&data, 1, 31)[0];

    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        record_profiles: true,
        ..SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel)
    };
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_core::DatasetHandle::new(&data.points).expect("dataset"),
            &data.points[q],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    let minors = &outcome.transcript.majors[0].minors;
    assert!(minors.len() >= 2, "need at least two minor iterations");

    // Grading curve: query sharpness per minor iteration.
    let grading: Vec<(f64, f64)> = minors
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let p = m.profile.as_ref().expect("profiles recorded");
            (i as f64, p.query_sharpness(6.0))
        })
        .collect();
    write_series(
        &dir.join("grading_sharpness.csv"),
        ("minor", "sharpness"),
        &grading,
    );

    for (fig, idx) in [("fig10_early", 0usize), ("fig11_late", minors.len() - 1)] {
        let rec = &minors[idx];
        let profile = rec.profile.as_ref().expect("profiles recorded");
        println!(
            "\n{fig}: minor iteration {} — variance ratios {:?}, query at {:.0}% of peak, sharpness {:.1}",
            rec.minor,
            rec.variance_ratios
                .iter()
                .map(|r| (r * 1e4).round() / 1e4)
                .collect::<Vec<_>>(),
            100.0 * rec.query_peak_ratio,
            profile.query_sharpness(6.0),
        );
        println!(
            "{}",
            render_heatmap(
                &profile.grid,
                profile.query,
                None,
                AsciiOptions {
                    legend: false,
                    y_up: true
                }
            )
        );

        let spec = &profile.grid.spec;
        let bb = (
            (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
            (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
        );
        let mut svg = SvgCanvas::new(
            &format!("{fig}: minor iteration {}", rec.minor + 1),
            560.0,
            500.0,
            bb.0,
            bb.1,
        );
        svg.heatmap(&profile.grid);
        svg.marker(profile.query, "Query Point", "black");
        let path = dir.join(format!("{fig}.svg"));
        svg.save(&path).expect("write svg");
        println!("  → {}", path.display());

        let surf_path = dir.join(format!("{fig}_surface.svg"));
        save_surface_svg(
            &profile.grid,
            &format!("{fig} surface (minor iteration {})", rec.minor + 1),
            &SurfaceOptions {
                query: Some(profile.query),
                ..SurfaceOptions::default()
            },
            &surf_path,
        )
        .expect("write surface svg");
        println!("  → {}", surf_path.display());
    }

    let early = grading.first().map(|g| g.1).unwrap_or(0.0);
    let late = grading.last().map(|g| g.1).unwrap_or(0.0);
    println!(
        "\ngrading summary: sharpness per minor iteration = {:?}",
        grading
            .iter()
            .map(|g| (g.1 * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "shape to check: the early view is far more discriminative than the late\n\
         one (here {early:.1} vs {late:.1}); most of the noise is pushed into the\n\
         last projections (§4.1's \"graded quality\")."
    );
}
