//! **SIMD kernels vs the frozen scalar reference.**
//!
//! Two hot loops got the columnar/SIMD treatment in this change, and this
//! binary measures both against byte-frozen copies of the code they
//! replaced — not against a re-run of the new code with SIMD disabled,
//! so the baseline cannot silently inherit future optimizations:
//!
//! 1. **KDE grid accumulation** (`hinn_kde::estimate_grid`): the old
//!    per-point scalar loop (chunked exactly like the library, so the
//!    float schedule matches) vs the new blocked `gaussian_prep`/`axpy8`
//!    path. The outputs are asserted **bit-identical** first — the
//!    speedup must come for free, not from a numerics change.
//! 2. **Exact kNN scan** (`hinn_baselines`): the row-major
//!    `knn_indices` scan vs the columnar scans over a
//!    [`hinn_data::ColumnStore`] — per-query `knn_indices_cols`, and the
//!    batched `knn_indices_cols_batch` (the headline: one pass over the
//!    cached columns serves every query, amortizing the memory traffic
//!    that bounds the single-query scan). Identical neighbor lists
//!    asserted for both. The opt-in f32 mirror scan is reported as an
//!    informational extra row (it is *approximate* — candidate
//!    generation only).
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin simd_bench            # full
//! cargo run --release -p hinn-bench --bin simd_bench -- --smoke # CI
//! ```
//!
//! Output: `BENCH_simd.json` (override with `--out <path>`). In full
//! mode the binary exits nonzero unless both measured speedups are ≥ 2×
//! — the PR's acceptance bar.

use hinn_bench::banner;
use hinn_data::ColumnStore;
use hinn_kde::{gaussian_kernel, Bandwidth2D, GridSpec};
use std::time::Instant;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_simd.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => panic!("unknown flag {other:?} (known: --smoke, --out)"),
        }
    }
    args
}

/// xorshift64* — the harness-wide seeded generator.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Seeded Gaussian mixture (Box–Muller), identical to `index_bench`'s.
fn gaussian_mixture(n: usize, d: usize, n_clusters: usize, sigma: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut next = xorshift(seed);
    let mut unif = move || (next() >> 11) as f64 / (1u64 << 53) as f64;
    let centers: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| (0..d).map(|_| unif() * 100.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            (0..d)
                .map(|j| {
                    let u1 = 1.0 - unif();
                    let u2 = unif();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    c[j] + sigma * z
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Frozen pre-SIMD reference: the KDE grid accumulation exactly as it
// stood before this change (per-point scalar kernel columns, scalar row
// accumulation, the library's fixed-chunk merge order). Kept verbatim so
// the bit-identity assertion pins the refactor against real history.
// ---------------------------------------------------------------------

const TRUNC_SIGMAS: f64 = 6.0;

fn frozen_support_range(center: f64, h: f64, origin: f64, step: f64, n: usize) -> (usize, usize) {
    let lo_f = ((center - TRUNC_SIGMAS * h - origin) / step).ceil();
    let hi_f = ((center + TRUNC_SIGMAS * h - origin) / step).floor();
    if hi_f < 0.0 || lo_f > (n - 1) as f64 {
        return (1, 0);
    }
    let lo = lo_f.max(0.0) as usize;
    let hi = (hi_f as usize).min(n - 1);
    (lo, hi)
}

#[allow(clippy::needless_range_loop)] // frozen pre-SIMD code, kept verbatim
fn frozen_accumulate_chunk(points: &[[f64; 2]], bw: Bandwidth2D, spec: GridSpec) -> Vec<f64> {
    let n = spec.n;
    let mut values = vec![0.0; n * n];
    let mut kx = vec![0.0; n];
    let mut ky = vec![0.0; n];
    for p in points {
        let (x_lo, x_hi) = frozen_support_range(p[0], bw.hx, spec.x0, spec.dx, n);
        let (y_lo, y_hi) = frozen_support_range(p[1], bw.hy, spec.y0, spec.dy, n);
        if x_lo > x_hi || y_lo > y_hi {
            continue;
        }
        for ix in x_lo..=x_hi {
            let gx = spec.x0 + ix as f64 * spec.dx;
            kx[ix] = gaussian_kernel(gx - p[0], bw.hx);
        }
        for iy in y_lo..=y_hi {
            let gy = spec.y0 + iy as f64 * spec.dy;
            ky[iy] = gaussian_kernel(gy - p[1], bw.hy);
        }
        for iy in y_lo..=y_hi {
            let row = &mut values[iy * n..(iy + 1) * n];
            let kyv = ky[iy];
            for ix in x_lo..=x_hi {
                row[ix] += kx[ix] * kyv;
            }
        }
    }
    values
}

fn frozen_estimate_grid(points: &[[f64; 2]], bw: Bandwidth2D, spec: GridSpec) -> Vec<f64> {
    let n = spec.n;
    let mut acc = vec![0.0; n * n];
    for chunk in points.chunks(hinn_par::CHUNK) {
        let part = frozen_accumulate_chunk(chunk, bw, spec);
        for (a, b) in acc.iter_mut().zip(&part) {
            *a += b;
        }
    }
    let inv_n = 1.0 / points.len() as f64;
    for v in &mut acc {
        *v *= inv_n;
    }
    acc
}

/// Best-of-`reps` wall time of `f`, in milliseconds, returning the last
/// result for verification.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    banner("SIMD kernels vs frozen scalar reference");
    println!("active backend: {}", hinn_linalg::active_backend().name());

    let (kde_n, grid_n, knn_n, knn_d, n_queries, reps) = if args.smoke {
        (2_000, 64, 5_000, 16, 10, 2)
    } else {
        (20_000, 256, 100_000, 16, 50, 5)
    };

    // ------------------------------------------------------------------
    // 1. KDE grid accumulation.
    // ------------------------------------------------------------------
    let pts2: Vec<[f64; 2]> = gaussian_mixture(kde_n, 2, 8, 4.0, 0x51D_0001)
        .into_iter()
        .map(|p| [p[0], p[1]])
        .collect();
    let bw = Bandwidth2D::silverman(&pts2);
    let spec = GridSpec::covering(&pts2, &[], 0.3, grid_n);
    println!(
        "kde: n={kde_n} points, {grid_n}x{grid_n} grid, hx={:.3} hy={:.3}",
        bw.hx, bw.hy
    );

    let (scalar_kde_ms, want) = time_best(reps, || frozen_estimate_grid(&pts2, bw, spec));
    let (simd_kde_ms, got) = time_best(reps, || hinn_kde::estimate_grid(&pts2, bw, spec));
    for (i, (a, b)) in got.values().iter().zip(&want).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "cell {i}: SIMD estimate_grid must be bit-identical to the frozen scalar \
             reference ({a} vs {b})"
        );
    }
    let kde_speedup = scalar_kde_ms / simd_kde_ms;
    println!(
        "estimate_grid: scalar {scalar_kde_ms:.2} ms, simd {simd_kde_ms:.2} ms → \
         {kde_speedup:.2}× (bit-identical)"
    );

    // ------------------------------------------------------------------
    // 2. Exact kNN scan, rows vs columns.
    // ------------------------------------------------------------------
    const K: usize = 10;
    let points = gaussian_mixture(knn_n, knn_d, 16, 6.0, 0x51D_0002);
    let stride = (knn_n / n_queries).max(1);
    let queries: Vec<&Vec<f64>> = (0..n_queries).map(|q| &points[q * stride]).collect();

    let t0 = Instant::now();
    let store = ColumnStore::from_rows(&points);
    let transpose_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!("knn: n={knn_n} d={knn_d}, {n_queries} queries, k={K} (transpose {transpose_ms:.1} ms, once per dataset)");

    let (row_total_ms, exact) = time_best(reps, || {
        queries
            .iter()
            .map(|q| hinn_baselines::knn_indices(&points, q, K, hinn_baselines::Metric::L2))
            .collect::<Vec<_>>()
    });
    let (col_total_ms, cols) = time_best(reps, || {
        queries
            .iter()
            .map(|q| hinn_baselines::knn_indices_cols(&store, q, K, hinn_baselines::Metric::L2))
            .collect::<Vec<_>>()
    });
    let q_refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
    let (batch_total_ms, batch) = time_best(reps, || {
        hinn_baselines::knn_indices_cols_batch(&store, &q_refs, K, hinn_baselines::Metric::L2)
    });
    assert_eq!(
        exact, cols,
        "columnar kNN scan must return exactly the row scan's neighbor lists"
    );
    assert_eq!(
        exact, batch,
        "batched columnar kNN scan must return exactly the row scan's neighbor lists"
    );
    let row_knn_ms = row_total_ms / n_queries as f64;
    let col_knn_ms = col_total_ms / n_queries as f64;
    let batch_knn_ms = batch_total_ms / n_queries as f64;
    let knn_speedup = row_knn_ms / batch_knn_ms;
    println!(
        "knn scan: rows {row_knn_ms:.3} ms/query, cols {col_knn_ms:.3} ms/query \
         ({:.2}×), cols batched {batch_knn_ms:.3} ms/query → {knn_speedup:.2}× \
         (identical results)",
        row_knn_ms / col_knn_ms
    );

    // Informational: the approximate f32 mirror tier.
    let _ = store.f32_cols(); // materialize outside the timed region
    let (f32_total_ms, approx) = time_best(reps, || {
        queries
            .iter()
            .map(|q| hinn_baselines::knn_candidates_f32(&store, q, K))
            .collect::<Vec<_>>()
    });
    let f32_knn_ms = f32_total_ms / n_queries as f64;
    let f32_recall = exact
        .iter()
        .zip(&approx)
        .map(|(e, a)| {
            let hits = a.iter().filter(|i| e.contains(i)).count();
            hits as f64 / K as f64
        })
        .sum::<f64>()
        / n_queries as f64;
    println!(
        "knn f32 mirror (approximate): {f32_knn_ms:.3} ms/query \
         ({:.2}× vs rows), recall@{K} {f32_recall:.3}",
        row_knn_ms / f32_knn_ms
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"backend\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" },
        hinn_linalg::active_backend().name()
    ));
    json.push_str(&format!(
        "  \"kde\": {{\"n_points\": {kde_n}, \"grid\": {grid_n}, \"scalar_ms\": {}, \"simd_ms\": {}, \"speedup\": {}, \"bit_identical\": true}},\n",
        json_f64(scalar_kde_ms),
        json_f64(simd_kde_ms),
        json_f64(kde_speedup)
    ));
    json.push_str(&format!(
        "  \"knn\": {{\"n_points\": {knn_n}, \"dim\": {knn_d}, \"n_queries\": {n_queries}, \"k\": {K}, \"rows_ms_per_query\": {}, \"cols_ms_per_query\": {}, \"cols_batch_ms_per_query\": {}, \"speedup\": {}, \"identical_results\": true, \"transpose_ms\": {}}},\n",
        json_f64(row_knn_ms),
        json_f64(col_knn_ms),
        json_f64(batch_knn_ms),
        json_f64(knn_speedup),
        json_f64(transpose_ms)
    ));
    json.push_str(&format!(
        "  \"knn_f32_approximate\": {{\"ms_per_query\": {}, \"speedup_vs_rows\": {}, \"recall_at_k\": {}}}\n",
        json_f64(f32_knn_ms),
        json_f64(row_knn_ms / f32_knn_ms),
        json_f64(f32_recall)
    ));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("wrote {}", args.out);

    // Smoke mode (CI) only proves the paths run and stay bit-identical;
    // the speedup bars are enforced in full mode.
    if !args.smoke {
        assert!(
            kde_speedup >= 2.0,
            "acceptance bar: estimate_grid SIMD speedup must be ≥2× (got {kde_speedup:.2}×)"
        );
        assert!(
            knn_speedup >= 2.0,
            "acceptance bar: columnar kNN speedup must be ≥2× (got {knn_speedup:.2}×)"
        );
        println!("acceptance bars met: kde {kde_speedup:.2}× ≥ 2×, knn {knn_speedup:.2}× ≥ 2×");
    }
}
