//! Criterion benchmark for the query-centered projection search (Fig. 3) —
//! the computer's main per-view cost in the interactive loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinn_core::projection::find_query_centered_projection;
use hinn_core::ProjectionMode;
use hinn_data::projected::{generate_projected_clusters, ProjectedClusterSpec};
use hinn_linalg::Subspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_projection_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection_search/N");
    group.sample_size(10);
    for n in [1000usize, 5000] {
        let spec = ProjectedClusterSpec {
            n_points: n,
            ..ProjectedClusterSpec::case1()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let data = generate_projected_clusters(&spec, &mut rng);
        let q = data.cluster_members(0)[0];
        let query = data.points[q].clone();
        let full = Subspace::full(data.dim());
        for (mode, label) in [
            (ProjectionMode::AxisParallel, "axis"),
            (ProjectionMode::Arbitrary, "arbitrary"),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    find_query_centered_projection(
                        black_box(&data.points),
                        black_box(&query),
                        &full,
                        25,
                        mode,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_projection_search);
criterion_main!(benches);
