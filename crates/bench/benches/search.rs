//! Criterion benchmark for the end-to-end interactive session (Fig. 2) with
//! the simulated user — the wall-clock cost of one human-free "session"
//! (per-view costs × `d/2` views × major iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_data::projected::{generate_projected_clusters, ProjectedClusterSpec};
use hinn_user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_full_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactive_session/N");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let spec = ProjectedClusterSpec {
            n_points: n,
            ..ProjectedClusterSpec::case1()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let data = generate_projected_clusters(&spec, &mut rng);
        let q = data.cluster_members(0)[0];
        let query = data.points[q].clone();
        let handle = hinn_core::DatasetHandle::new(&data.points).expect("dataset");
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 2,
            ..SearchConfig::default()
                .with_support(25)
                .with_mode(ProjectionMode::AxisParallel)
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut user = HeuristicUser::default();
                InteractiveSearch::new(config.clone())
                    .run_with(
                        black_box(&handle),
                        black_box(&query),
                        &mut user,
                        hinn_core::RunOptions::default(),
                    )
                    .expect("interactive session")
                    .into_outcome()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_session);
criterion_main!(benches);
