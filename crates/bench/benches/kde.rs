//! Criterion benchmarks for the KDE substrate: grid estimation cost as a
//! function of data size `N` and grid resolution `p`, density-connectivity
//! flood fill, and the separator-sweep selection curve — the per-view costs
//! of the interactive loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinn_kde::{
    adaptive_bandwidths, connected_cells, estimate_grid, estimate_grid_adaptive,
    estimate_grid_with, extract_contours, Bandwidth2D, CornerRule, GridSpec, Parallelism,
    VisualProfile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn points(n: usize) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut pts = Vec::with_capacity(n);
    // A cluster plus background — representative of a real view.
    for _ in 0..n / 5 {
        pts.push([
            5.0 + 0.3 * hinn_data::projected::randn(&mut rng),
            5.0 + 0.3 * hinn_data::projected::randn(&mut rng),
        ]);
    }
    while pts.len() < n {
        pts.push([rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
    }
    pts
}

fn bench_grid_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde_grid/N");
    for n in [1000usize, 5000, 20000] {
        let pts = points(n);
        let bw = Bandwidth2D::silverman(&pts).scaled(0.3);
        let spec = GridSpec::covering(&pts, &[], 0.15, 80);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| estimate_grid(black_box(&pts), bw, spec))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kde_grid/p");
    let pts = points(5000);
    let bw = Bandwidth2D::silverman(&pts).scaled(0.3);
    for p in [40usize, 80, 160] {
        let spec = GridSpec::covering(&pts, &[], 0.15, p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| estimate_grid(black_box(&pts), bw, spec))
        });
    }
    group.finish();
}

/// Serial vs parallel grid estimation at a size where threads pay off
/// (N = 50k clears `hinn_par::SERIAL_CUTOFF` by a wide margin). Both sides
/// produce bit-identical grids; the comparison is pure wall-clock.
fn bench_grid_parallel(c: &mut Criterion) {
    let pts = points(50_000);
    let bw = Bandwidth2D::silverman(&pts).scaled(0.3);
    let spec = GridSpec::covering(&pts, &[], 0.15, 80);
    let mut group = c.benchmark_group("kde_grid/serial_vs_parallel_50k");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| estimate_grid_with(Parallelism::serial(), black_box(&pts), bw, spec))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| estimate_grid_with(Parallelism::available(), black_box(&pts), bw, spec))
    });
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let pts = points(5000);
    let profile = VisualProfile::build(pts, [5.0, 5.0], 80, 0.3);
    let tau = profile.max_density() * 0.2;

    c.bench_function("kde_connectivity/flood_fill", |b| {
        b.iter(|| {
            connected_cells(
                black_box(&profile.grid),
                tau,
                profile.query_cell,
                CornerRule::AtLeastThree,
            )
        })
    });

    c.bench_function("kde_connectivity/select", |b| {
        b.iter(|| profile.select(black_box(tau), CornerRule::AtLeastThree))
    });

    // The simulated user's full separator sweep (48 thresholds).
    c.bench_function("kde_connectivity/selection_curve_48", |b| {
        b.iter(|| profile.selection_curve(black_box(48), CornerRule::AtLeastThree))
    });
}

fn bench_adaptive_and_contours(c: &mut Criterion) {
    let pts = points(5000);
    let bw = Bandwidth2D::silverman(&pts).scaled(0.5);
    let spec = GridSpec::covering(&pts, &[], 0.15, 80);

    c.bench_function("kde_adaptive/bandwidth_factors_5000", |b| {
        b.iter(|| adaptive_bandwidths(black_box(&pts), bw, 0.5))
    });
    let abw = adaptive_bandwidths(&pts, bw, 0.5);
    c.bench_function("kde_adaptive/grid_5000_p80", |b| {
        b.iter(|| estimate_grid_adaptive(black_box(&pts), &abw, spec))
    });

    let grid = estimate_grid(&pts, bw, spec);
    let tau = grid.max() * 0.2;
    c.bench_function("kde_contour/marching_squares_p80", |b| {
        b.iter(|| extract_contours(black_box(&grid), tau))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_grid_estimation, bench_grid_parallel, bench_connectivity,
        bench_adaptive_and_contours
);
criterion_main!(benches);
