//! Criterion benchmarks for the automated baselines: exact k-NN scans under
//! the different Minkowski metrics and the projected-NN method of [15].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinn_baselines::{
    distinctiveness_knn, knn_indices, knn_indices_with, projected_knn, Metric, Parallelism,
    ProjectedNnConfig, VaFile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(11);
    let pts = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let q = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
    (pts, q)
}

fn bench_knn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_scan/N");
    for n in [1000usize, 5000, 20000] {
        let (pts, q) = data(n, 20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| knn_indices(black_box(&pts), black_box(&q), 25, Metric::L2))
        });
    }
    group.finish();
}

/// Serial vs parallel distance scan at N = 100k (well past
/// `hinn_par::SERIAL_CUTOFF`): identical answers, wall-clock only.
fn bench_knn_parallel(c: &mut Criterion) {
    let (pts, q) = data(100_000, 20);
    let mut group = c.benchmark_group("knn_scan/serial_vs_parallel_100k");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            knn_indices_with(
                Parallelism::serial(),
                black_box(&pts),
                black_box(&q),
                25,
                Metric::L2,
            )
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            knn_indices_with(
                Parallelism::available(),
                black_box(&pts),
                black_box(&q),
                25,
                Metric::L2,
            )
        })
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let (pts, q) = data(5000, 20);
    let mut group = c.benchmark_group("knn_scan/metric");
    for (metric, label) in [
        (Metric::L1, "L1"),
        (Metric::L2, "L2"),
        (Metric::LInf, "Linf"),
        (Metric::Lp(0.5), "L0.5_fractional"),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| knn_indices(black_box(&pts), black_box(&q), 25, metric))
        });
    }
    group.finish();
}

fn bench_automated_baselines(c: &mut Criterion) {
    let (pts, q) = data(5000, 20);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("projected_nn_15", |b| {
        b.iter(|| {
            projected_knn(
                black_box(&pts),
                black_box(&q),
                25,
                &ProjectedNnConfig::default(),
            )
        })
    });
    group.bench_function("distinctiveness_nn_19", |b| {
        b.iter(|| distinctiveness_knn(black_box(&pts), black_box(&q), 25, 50, 16, Metric::L2))
    });
    group.finish();
}

fn bench_vafile(c: &mut Criterion) {
    // Clustered data (the regime where the filter prunes): scan vs VA-file.
    let mut rng = StdRng::seed_from_u64(3);
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..20 {
        let center: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..100.0)).collect();
        for _ in 0..1000 {
            pts.push(
                center
                    .iter()
                    .map(|c| c + rng.gen_range(-2.0..2.0))
                    .collect(),
            );
        }
    }
    let q: Vec<f64> = pts[500].clone();
    let mut group = c.benchmark_group("vafile_vs_scan_20k_clustered");
    group.sample_size(20);
    group.bench_function("linear_scan", |b| {
        b.iter(|| knn_indices(black_box(&pts), black_box(&q), 25, Metric::L2))
    });
    let va = VaFile::build(pts.clone(), 6);
    group.bench_function("vafile_b6", |b| b.iter(|| va.knn(black_box(&q), 25)));
    group.finish();
}

/// Serial vs parallel VA-file phase-1 filter at N = 60k clustered points.
fn bench_vafile_parallel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..60 {
        let center: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..100.0)).collect();
        for _ in 0..1000 {
            pts.push(
                center
                    .iter()
                    .map(|c| c + rng.gen_range(-2.0..2.0))
                    .collect(),
            );
        }
    }
    let q: Vec<f64> = pts[500].clone();
    let va = VaFile::build(pts, 6);
    let mut group = c.benchmark_group("vafile_knn/serial_vs_parallel_60k");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| va.knn_with(Parallelism::serial(), black_box(&q), 25))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| va.knn_with(Parallelism::available(), black_box(&q), 25))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_knn_scaling, bench_knn_parallel, bench_metrics, bench_automated_baselines,
        bench_vafile, bench_vafile_parallel
);
criterion_main!(benches);
