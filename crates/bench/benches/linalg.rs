//! Criterion benchmarks for the linear-algebra substrate: the Jacobi
//! eigensolver and covariance computation as dimensionality grows (these
//! dominate the query-cluster subspace determination of Fig. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinn_linalg::{
    covariance_matrix, covariance_matrix_with, jacobi_eigen, Matrix, Parallelism, Subspace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sym_matrix(d: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let v = rng.gen_range(-1.0..1.0);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

fn bench_eigen(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("linalg_eigen/d");
    for d in [8usize, 16, 32, 64] {
        let m = sym_matrix(d, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| jacobi_eigen(black_box(&m)))
        });
    }
    group.finish();
}

fn bench_covariance(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("linalg_covariance/n_points");
    for n in [100usize, 1000, 5000] {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..20).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| covariance_matrix(black_box(&pts)))
        });
    }
    group.finish();
}

/// Serial vs parallel covariance at N = 50k × d = 20 (the PCA input size
/// where threads pay off). Both sides return bit-identical matrices.
fn bench_covariance_parallel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let pts: Vec<Vec<f64>> = (0..50_000)
        .map(|_| (0..20).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let mut group = c.benchmark_group("linalg_covariance/serial_vs_parallel_50k");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| covariance_matrix_with(Parallelism::serial(), black_box(&pts)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| covariance_matrix_with(Parallelism::available(), black_box(&pts)))
    });
    group.finish();
}

fn bench_subspace_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 20;
    let pts: Vec<Vec<f64>> = (0..5000)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let sub = hinn_data::projected::random_subspace(d, 2, &mut rng);

    c.bench_function("linalg_subspace/project_all_5000x20_to_2", |b| {
        b.iter(|| sub.project_all(black_box(&pts)))
    });

    let full = Subspace::full(d);
    c.bench_function("linalg_subspace/complement_within_20", |b| {
        b.iter(|| full.complement_within(black_box(&sub)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_eigen, bench_covariance, bench_covariance_parallel, bench_subspace_ops
);
criterion_main!(benches);
