//! Rendering of visual profiles for `hinn`.
//!
//! The paper's system is built around a human *looking at* density profiles
//! (Figs. 1, 9–13) and dragging a density-separator plane. The Rust GUI /
//! interactive-plotting ecosystem is not a stable substrate for this
//! reproduction (see DESIGN.md), so this crate renders the same artifacts
//! into media that work everywhere:
//!
//! * [`ascii`] — plain-text heatmaps of a [`hinn_kde::DensityGrid`], with
//!   the query point and the `τ`-contour marked; readable in any terminal
//!   or log file, and what the interactive `TerminalUser` shows a real
//!   human.
//! * [`ansi`] — 256-color ANSI heatmaps for richer terminals.
//! * [`svg`] — dependency-free SVG scatter plots, heatmaps, and line
//!   charts; the figure-reproduction experiments write these next to their
//!   numeric output.

pub mod ansi;
pub mod ascii;
pub mod sparkline;
pub mod surface;
pub mod svg;

pub use ascii::{render_heatmap, AsciiOptions};
pub use sparkline::render_sparkline;
pub use surface::{render_surface_svg, save_surface_svg, SurfaceOptions};
pub use svg::SvgCanvas;
