//! Unicode sparklines for 1-D density marginals.
//!
//! One line per axis under a heatmap: the marginal density curve as block
//! characters, with the query's position marked — the per-attribute
//! interpretability aid for axis-parallel projections (§1.1 of the paper).

use hinn_kde::MarginalProfile;

/// Density-to-block ramp (eighth blocks).
const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `marginal` as a sparkline of `width` characters; `query` (in data
/// coordinates) renders as `Q` on top of its block.
pub fn render_sparkline(marginal: &MarginalProfile, query: f64, width: usize) -> String {
    assert!(width >= 2, "render_sparkline: width must be at least 2");
    let max = marginal.max().max(1e-300);
    let span = marginal.dx * (marginal.values.len() - 1) as f64;
    let mut out = String::with_capacity(width * 3);
    let q_col =
        (((query - marginal.x0) / span).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize;
    for col in 0..width {
        if col == q_col {
            out.push('Q');
            continue;
        }
        let x = marginal.x0 + span * col as f64 / (width - 1) as f64;
        let level = ((marginal.at(x) / max) * (BLOCKS.len() - 1) as f64).round() as usize;
        out.push(BLOCKS[level.min(BLOCKS.len() - 1)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal() -> MarginalProfile {
        let mut sample = vec![0.0; 60];
        sample.extend(vec![10.0; 30]);
        MarginalProfile::estimate(&sample, 120, 0.1, 0.5)
    }

    #[test]
    fn width_and_query_marker() {
        let m = bimodal();
        let s = render_sparkline(&m, 0.0, 40);
        assert_eq!(s.chars().count(), 40);
        assert_eq!(s.matches('Q').count(), 1);
    }

    #[test]
    fn modes_render_taller_than_the_gap() {
        let m = bimodal();
        let s: Vec<char> = render_sparkline(&m, -100.0, 41).chars().collect();
        // Query clamps to column 0; inspect the two mode regions vs middle.
        let level = |c: char| BLOCKS.iter().position(|&b| b == c).unwrap_or(0);
        let left_max = s[1..10].iter().map(|&c| level(c)).max().unwrap();
        let mid_min = s[18..23].iter().map(|&c| level(c)).min().unwrap();
        let right_max = s[32..40].iter().map(|&c| level(c)).max().unwrap();
        assert!(left_max > mid_min, "left mode must rise above the gap");
        assert!(right_max > mid_min, "right mode must rise above the gap");
        assert!(left_max >= right_max, "bigger mode at least as tall");
    }

    #[test]
    fn query_lands_on_correct_side() {
        let m = bimodal();
        let s: Vec<char> = render_sparkline(&m, 10.0, 40).chars().collect();
        let q_pos = s.iter().position(|&c| c == 'Q').unwrap();
        assert!(
            q_pos > 30,
            "query at x=10 belongs near the right edge: {q_pos}"
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn tiny_width_panics() {
        render_sparkline(&bimodal(), 0.0, 1);
    }
}
