//! 256-color ANSI heatmap rendering for interactive terminal sessions.
//!
//! Used by the `TerminalUser` (the real human in the loop): each cell is a
//! two-space block whose background walks a dark-blue → yellow → white ramp
//! with density. Terminals without color support can fall back to
//! [`crate::ascii`].

use hinn_kde::DensityGrid;

/// xterm-256 color codes forming a perceptually-reasonable density ramp.
const COLOR_RAMP: [u8; 10] = [16, 17, 18, 19, 61, 103, 179, 220, 226, 231];

/// Render `grid` as an ANSI-colored heatmap with the query marked `Q`.
pub fn render_ansi_heatmap(grid: &DensityGrid, query: [f64; 2]) -> String {
    let m = grid.spec.cells_per_axis();
    let cell_mean = |cx: usize, cy: usize| {
        let c = grid.cell_corners(cx, cy);
        (c[0] + c[1] + c[2] + c[3]) / 4.0
    };
    // Normalize by the brightest *cell* so the top ramp color is always used.
    let mut max = 1e-300f64;
    for cy in 0..m {
        for cx in 0..m {
            max = max.max(cell_mean(cx, cy));
        }
    }
    let qcell = grid.spec.cell_of(query[0], query[1]);
    let mut out = String::new();
    for cy in (0..m).rev() {
        for cx in 0..m {
            let mean = cell_mean(cx, cy);
            let level = ((mean / max) * (COLOR_RAMP.len() - 1) as f64).round() as usize;
            let color = COLOR_RAMP[level.min(COLOR_RAMP.len() - 1)];
            if qcell == Some((cx, cy)) {
                // Red background, white Q.
                out.push_str("\x1b[48;5;196m\x1b[97mQ \x1b[0m");
            } else {
                out.push_str(&format!("\x1b[48;5;{color}m  \x1b[0m"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_kde::grid::GridSpec;

    fn small_grid() -> DensityGrid {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 3,
        };
        DensityGrid::new(spec, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
    }

    #[test]
    fn contains_reset_sequences_and_rows() {
        let s = render_ansi_heatmap(&small_grid(), [-10.0, -10.0]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\x1b[0m"));
        assert!(s.contains("\x1b[48;5;"));
    }

    #[test]
    fn query_rendered_in_red() {
        let s = render_ansi_heatmap(&small_grid(), [0.5, 0.5]);
        assert!(s.contains("\x1b[48;5;196m"), "query cell must be red");
        assert!(s.contains('Q'));
    }

    #[test]
    fn brightest_cell_uses_top_ramp_color() {
        let s = render_ansi_heatmap(&small_grid(), [-10.0, -10.0]);
        assert!(s.contains(&format!("\x1b[48;5;{}m", COLOR_RAMP[9])));
    }
}
