//! Dependency-free SVG rendering.
//!
//! A tiny retained canvas with data-space coordinates: callers add scatter
//! points, heatmap cells, polylines, and text; `finish()` produces a
//! self-contained SVG document with axes. Used by the figure-reproduction
//! experiments to emit the analogues of the paper's Figs. 1 and 9–13.

use hinn_kde::DensityGrid;
use std::fmt::Write as _;

/// Margin around the plot area, in output pixels.
const MARGIN: f64 = 45.0;

/// A simple SVG plot canvas with a data-space → pixel-space transform.
#[derive(Clone, Debug)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    xlim: (f64, f64),
    ylim: (f64, f64),
    body: String,
    title: String,
}

impl SvgCanvas {
    /// Create a canvas mapping the data rectangle `xlim × ylim` onto a
    /// `width × height` pixel image.
    ///
    /// # Panics
    /// Panics on empty data ranges or non-positive pixel sizes.
    pub fn new(title: &str, width: f64, height: f64, xlim: (f64, f64), ylim: (f64, f64)) -> Self {
        assert!(
            width > 2.0 * MARGIN && height > 2.0 * MARGIN,
            "SvgCanvas: image too small"
        );
        assert!(
            xlim.1 > xlim.0 && ylim.1 > ylim.0,
            "SvgCanvas: empty data range"
        );
        Self {
            width,
            height,
            xlim,
            ylim,
            body: String::new(),
            title: title.to_string(),
        }
    }

    fn tx(&self, x: f64) -> f64 {
        MARGIN + (x - self.xlim.0) / (self.xlim.1 - self.xlim.0) * (self.width - 2.0 * MARGIN)
    }

    fn ty(&self, y: f64) -> f64 {
        // SVG y grows downward; data y grows upward.
        self.height
            - MARGIN
            - (y - self.ylim.0) / (self.ylim.1 - self.ylim.0) * (self.height - 2.0 * MARGIN)
    }

    /// Scatter `points` as circles of radius `r` and CSS `color`.
    pub fn scatter(&mut self, points: &[[f64; 2]], r: f64, color: &str) -> &mut Self {
        for p in points {
            let _ = write!(
                self.body,
                r#"<circle cx="{:.2}" cy="{:.2}" r="{r}" fill="{color}" fill-opacity="0.75"/>"#,
                self.tx(p[0]),
                self.ty(p[1]),
            );
            self.body.push('\n');
        }
        self
    }

    /// Mark a point with a star-like cross (the paper's `* Query Point`).
    pub fn marker(&mut self, p: [f64; 2], label: &str, color: &str) -> &mut Self {
        let (x, y) = (self.tx(p[0]), self.ty(p[1]));
        let _ = write!(
            self.body,
            r#"<path d="M {x0} {y} L {x1} {y} M {x} {y0} L {x} {y1} M {xa} {ya} L {xb} {yb} M {xa} {yb} L {xb} {ya}" stroke="{color}" stroke-width="2" fill="none"/>"#,
            x0 = x - 7.0,
            x1 = x + 7.0,
            y0 = y - 7.0,
            y1 = y + 7.0,
            xa = x - 5.0,
            xb = x + 5.0,
            ya = y - 5.0,
            yb = y + 5.0,
        );
        let _ = write!(
            self.body,
            r#"<text x="{:.2}" y="{:.2}" font-size="12" fill="{color}">{label}</text>"#,
            x + 9.0,
            y - 9.0
        );
        self.body.push('\n');
        self
    }

    /// Draw a density grid as colored cells (white → steel blue ramp).
    pub fn heatmap(&mut self, grid: &DensityGrid) -> &mut Self {
        let m = grid.spec.cells_per_axis();
        let max = grid.max().max(1e-300);
        for cy in 0..m {
            for cx in 0..m {
                let corners = grid.cell_corners(cx, cy);
                let mean = (corners[0] + corners[1] + corners[2] + corners[3]) / 4.0;
                let t = (mean / max).clamp(0.0, 1.0);
                // White (low) to dark blue (high).
                let rch = (255.0 * (1.0 - 0.85 * t)) as u8;
                let g = (255.0 * (1.0 - 0.70 * t)) as u8;
                let b = (255.0 * (1.0 - 0.30 * t)) as u8;
                let x = self.tx(grid.spec.x0 + cx as f64 * grid.spec.dx);
                let y = self.ty(grid.spec.y0 + (cy + 1) as f64 * grid.spec.dy);
                let w = self.tx(grid.spec.x0 + (cx + 1) as f64 * grid.spec.dx) - x;
                let h = self.ty(grid.spec.y0 + cy as f64 * grid.spec.dy) - y;
                let _ = write!(
                    self.body,
                    r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="rgb({rch},{g},{b})"/>"#
                );
            }
        }
        self.body.push('\n');
        self
    }

    /// Polyline through `points` (e.g. a sorted-probability curve).
    pub fn polyline(&mut self, points: &[[f64; 2]], color: &str, width: f64) -> &mut Self {
        if points.is_empty() {
            return self;
        }
        let mut d = String::new();
        for (i, p) in points.iter().enumerate() {
            let _ = write!(
                d,
                "{}{:.2} {:.2}",
                if i == 0 { "M " } else { " L " },
                self.tx(p[0]),
                self.ty(p[1])
            );
        }
        let _ = write!(
            self.body,
            r#"<path d="{d}" stroke="{color}" stroke-width="{width}" fill="none"/>"#
        );
        self.body.push('\n');
        self
    }

    /// Horizontal reference line at data-`y` (the density separator plane
    /// seen edge-on).
    pub fn hline(&mut self, y: f64, color: &str) -> &mut Self {
        let py = self.ty(y);
        let _ = write!(
            self.body,
            r#"<line x1="{:.2}" y1="{py:.2}" x2="{:.2}" y2="{py:.2}" stroke="{color}" stroke-width="1.5" stroke-dasharray="6 3"/>"#,
            MARGIN,
            self.width - MARGIN
        );
        self.body.push('\n');
        self
    }

    /// Free text annotation at a data-space position.
    pub fn text(&mut self, p: [f64; 2], s: &str, size: u32) -> &mut Self {
        let _ = write!(
            self.body,
            r##"<text x="{:.2}" y="{:.2}" font-size="{size}" fill="#333">{}</text>"##,
            self.tx(p[0]),
            self.ty(p[1]),
            escape(s)
        );
        self.body.push('\n');
        self
    }

    /// Produce the final SVG document (axes, frame, title, body).
    pub fn finish(&self) -> String {
        let mut svg = String::with_capacity(self.body.len() + 1024);
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{tx}" y="24" font-size="15" font-family="sans-serif" fill="#111">{title}</text>
"##,
            w = self.width,
            h = self.height,
            tx = MARGIN,
            title = escape(&self.title),
        );
        svg.push_str(&self.body);
        // Frame and axis labels.
        let _ = write!(
            svg,
            r##"<rect x="{m}" y="{m}" width="{pw}" height="{ph}" fill="none" stroke="#555"/>
<text x="{m}" y="{yb}" font-size="11" fill="#555">{x0:.3}</text>
<text x="{xe}" y="{yb}" font-size="11" fill="#555" text-anchor="end">{x1:.3}</text>
<text x="4" y="{yb0}" font-size="11" fill="#555">{y0:.3}</text>
<text x="4" y="{yt}" font-size="11" fill="#555">{y1:.3}</text>
</svg>
"##,
            m = MARGIN,
            pw = self.width - 2.0 * MARGIN,
            ph = self.height - 2.0 * MARGIN,
            yb = self.height - MARGIN + 16.0,
            xe = self.width - MARGIN,
            x0 = self.xlim.0,
            x1 = self.xlim.1,
            y0 = self.ylim.0,
            y1 = self.ylim.1,
            yb0 = self.height - MARGIN,
            yt = MARGIN + 4.0,
        );
        svg
    }

    /// Write the document to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_kde::grid::GridSpec;

    #[test]
    fn document_structure() {
        let mut c = SvgCanvas::new("test <plot>", 400.0, 300.0, (0.0, 1.0), (0.0, 1.0));
        c.scatter(&[[0.5, 0.5]], 3.0, "black");
        let svg = c.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("test &lt;plot&gt;"), "title must be escaped");
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn transform_maps_corners() {
        let c = SvgCanvas::new("t", 400.0, 300.0, (0.0, 10.0), (0.0, 10.0));
        assert!((c.tx(0.0) - MARGIN).abs() < 1e-9);
        assert!((c.tx(10.0) - (400.0 - MARGIN)).abs() < 1e-9);
        // Data y=0 maps to the bottom of the plot area.
        assert!((c.ty(0.0) - (300.0 - MARGIN)).abs() < 1e-9);
        assert!((c.ty(10.0) - MARGIN).abs() < 1e-9);
    }

    #[test]
    fn heatmap_emits_cells() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 4,
        };
        let g = DensityGrid::new(spec, (0..16).map(|i| i as f64).collect());
        let mut c = SvgCanvas::new("h", 300.0, 300.0, (0.0, 3.0), (0.0, 3.0));
        c.heatmap(&g);
        let svg = c.finish();
        // 3×3 cells + the frame rect + background.
        assert_eq!(svg.matches("<rect").count(), 9 + 2);
    }

    #[test]
    fn polyline_and_marker_and_hline() {
        let mut c = SvgCanvas::new("p", 300.0, 300.0, (0.0, 1.0), (0.0, 1.0));
        c.polyline(&[[0.0, 0.0], [0.5, 1.0], [1.0, 0.0]], "red", 2.0);
        c.marker([0.5, 0.5], "Query Point", "crimson");
        c.hline(0.3, "gray");
        c.text([0.1, 0.9], "a<b", 10);
        let svg = c.finish();
        assert!(svg.contains("<path d=\"M "));
        assert!(svg.contains("Query Point"));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("a&lt;b"));
    }

    #[test]
    fn empty_polyline_is_noop() {
        let mut c = SvgCanvas::new("p", 300.0, 300.0, (0.0, 1.0), (0.0, 1.0));
        let before = c.finish();
        c.polyline(&[], "red", 1.0);
        assert_eq!(c.finish(), before);
    }

    #[test]
    fn save_writes_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("hinn_svg_test_{}.svg", std::process::id()));
        let c = SvgCanvas::new("s", 200.0, 200.0, (0.0, 1.0), (0.0, 1.0));
        c.save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(content.contains("<svg"));
    }

    #[test]
    #[should_panic(expected = "empty data range")]
    fn empty_range_panics() {
        SvgCanvas::new("bad", 300.0, 300.0, (1.0, 1.0), (0.0, 1.0));
    }
}
