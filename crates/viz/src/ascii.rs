//! Plain-text heatmap rendering of density grids.
//!
//! The density ramp uses the classic ASCII intensity scale; the query point
//! renders as `Q` and, when a noise threshold `τ` is supplied, grid cells on
//! the `(τ, Q)`-connected region are wrapped in `[` `]` markers so the
//! density-separated view of §2.2 is visible in plain text.

use hinn_kde::connect::CellMask;
use hinn_kde::DensityGrid;

/// Density-to-character ramp, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Options for [`render_heatmap`].
#[derive(Clone, Copy, Debug)]
pub struct AsciiOptions {
    /// Print a density legend under the map.
    pub legend: bool,
    /// Invert the vertical axis so larger `y` is at the top (math style).
    pub y_up: bool,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        Self {
            legend: true,
            y_up: true,
        }
    }
}

/// Render `grid` as an ASCII heatmap (one character per *cell*, using the
/// mean of the cell's corner densities). `query` is marked `Q`; cells of
/// `mask` (the density-connected selection, if any) are upper-cased `#`
/// overlay via `[` `]` brackets when space allows — practically, the masked
/// cells render as `o` when their ramp char would be a blank/low value.
pub fn render_heatmap(
    grid: &DensityGrid,
    query: [f64; 2],
    mask: Option<&CellMask>,
    opts: AsciiOptions,
) -> String {
    let m = grid.spec.cells_per_axis();
    let max = grid.max().max(1e-300);
    let qcell = grid.spec.cell_of(query[0], query[1]);
    let mut out = String::with_capacity((m + 3) * (m + 2));

    let rows: Box<dyn Iterator<Item = usize>> = if opts.y_up {
        Box::new((0..m).rev())
    } else {
        Box::new(0..m)
    };
    for cy in rows {
        out.push('|');
        for cx in 0..m {
            if qcell == Some((cx, cy)) {
                out.push('Q');
                continue;
            }
            let corners = grid.cell_corners(cx, cy);
            let mean = (corners[0] + corners[1] + corners[2] + corners[3]) / 4.0;
            let level = ((mean / max) * (RAMP.len() - 1) as f64).round() as usize;
            let ch = RAMP[level.min(RAMP.len() - 1)] as char;
            let selected = mask.map(|k| k.contains(cx, cy)).unwrap_or(false);
            if selected && (ch == ' ' || ch == '.') {
                out.push('o');
            } else {
                out.push(ch);
            }
        }
        out.push('|');
        out.push('\n');
    }
    if opts.legend {
        out.push_str(&format!(
            "density 0 '{}' .. '{}' {max:.4}   Q = query",
            RAMP[0] as char,
            RAMP[RAMP.len() - 1] as char
        ));
        out.push('\n');
    }
    out
}

/// A compact one-line textual summary of a profile (peak, query density,
/// their ratio) — the caption experiments print under each heatmap.
pub fn profile_caption(grid: &DensityGrid, query: [f64; 2]) -> String {
    let q = grid.interpolate(query[0], query[1]);
    let max = grid.max();
    let ratio = if max > 0.0 { q / max } else { 0.0 };
    format!(
        "peak density {max:.5}, query density {q:.5} ({:.0}% of peak)",
        ratio * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_kde::grid::GridSpec;

    fn grid_with_peak() -> DensityGrid {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 6,
        };
        let mut v = vec![0.0; 36];
        v[2 * 6 + 2] = 10.0;
        v[2 * 6 + 3] = 10.0;
        v[3 * 6 + 2] = 10.0;
        v[3 * 6 + 3] = 10.0;
        DensityGrid::new(spec, v)
    }

    #[test]
    fn heatmap_has_expected_shape() {
        let g = grid_with_peak();
        let s = render_heatmap(&g, [-100.0, -100.0], None, AsciiOptions::default());
        let lines: Vec<&str> = s.lines().collect();
        // 5 cell rows + 1 legend line.
        assert_eq!(lines.len(), 6);
        for row in &lines[..5] {
            assert_eq!(row.len(), 7, "5 cells + 2 borders: {row:?}");
            assert!(row.starts_with('|') && row.ends_with('|'));
        }
        assert!(lines[5].contains("Q = query"));
    }

    #[test]
    fn peak_renders_bright_and_off_peak_dark() {
        let g = grid_with_peak();
        let s = render_heatmap(
            &g,
            [-100.0, -100.0],
            None,
            AsciiOptions {
                legend: false,
                y_up: false,
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        // Cell (2,2) has all 4 corners at the peak → '@'.
        assert_eq!(&lines[2][3..4], "@");
        // Far corner is blank.
        assert_eq!(&lines[0][1..2], " ");
    }

    #[test]
    fn query_marker_present() {
        let g = grid_with_peak();
        let s = render_heatmap(
            &g,
            [2.5, 2.5],
            None,
            AsciiOptions {
                legend: false,
                y_up: false,
            },
        );
        assert!(s.contains('Q'), "query marker missing:\n{s}");
        assert_eq!(s.matches('Q').count(), 1);
    }

    #[test]
    fn y_up_flips_vertically() {
        let g = grid_with_peak();
        let up = render_heatmap(
            &g,
            [-100.0, -100.0],
            None,
            AsciiOptions {
                legend: false,
                y_up: true,
            },
        );
        let down = render_heatmap(
            &g,
            [-100.0, -100.0],
            None,
            AsciiOptions {
                legend: false,
                y_up: false,
            },
        );
        let up_lines: Vec<&str> = up.lines().collect();
        let down_lines: Vec<&str> = down.lines().collect();
        assert_eq!(up_lines.len(), down_lines.len());
        for (a, b) in up_lines.iter().zip(down_lines.iter().rev()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mask_marks_low_cells() {
        let g = grid_with_peak();
        let mask = hinn_kde::connect::connected_cells(
            &g,
            -1.0, // everything qualifies (densities ≥ 0 > -1)
            (0, 0),
            hinn_kde::CornerRule::AnyOne,
        );
        let s = render_heatmap(
            &g,
            [-100.0, -100.0],
            Some(&mask),
            AsciiOptions {
                legend: false,
                y_up: false,
            },
        );
        assert!(
            s.contains('o'),
            "selected low-density cells should be marked:\n{s}"
        );
    }

    #[test]
    fn caption_reports_ratio() {
        let g = grid_with_peak();
        let c = profile_caption(&g, [2.5, 2.5]);
        assert!(c.contains("peak density"));
        assert!(c.contains("100%"), "query on the peak: {c}");
        let c2 = profile_caption(&g, [0.0, 0.0]);
        assert!(c2.contains("(0% of peak)"), "{c2}");
    }
}
