//! Isometric 3-D surface plots of density grids — the look of the paper's
//! Figures 9–13 (MATLAB `surf` plots of the kernel density with the query
//! point starred and, optionally, the density-separator plane).
//!
//! The renderer projects each grid point `(x, y, density)` isometrically
//! into the image plane and draws the surface as painter-ordered quads with
//! height-mapped fill, wireframe edges, an optional horizontal separator
//! plane at `τ`, and the query marker riding on the surface.

use crate::svg::SvgCanvas;
use hinn_kde::DensityGrid;
use std::fmt::Write as _;

/// Options for [`render_surface_svg`].
#[derive(Clone, Copy, Debug)]
pub struct SurfaceOptions {
    /// Output image width in pixels.
    pub width: f64,
    /// Output image height in pixels.
    pub height: f64,
    /// Vertical exaggeration: the density axis spans this fraction of the
    /// image height.
    pub z_scale: f64,
    /// Optional separator plane height (density units).
    pub separator: Option<f64>,
    /// Optional query location (data coordinates); drawn as a star riding
    /// the surface.
    pub query: Option<[f64; 2]>,
    /// Title text.
    pub title_height: f64,
}

impl Default for SurfaceOptions {
    fn default() -> Self {
        Self {
            width: 640.0,
            height: 480.0,
            z_scale: 0.45,
            separator: None,
            query: None,
            title_height: 28.0,
        }
    }
}

/// Isometric projection of normalized grid coordinates `(u, v) ∈ [0,1]²`
/// and normalized height `w ∈ [0,1]` into image space.
fn iso(u: f64, v: f64, w: f64, opts: &SurfaceOptions) -> (f64, f64) {
    // Classic 2:1 isometric: x' = (u − v), y' = (u + v)/2 − w.
    let margin = 40.0;
    let usable_w = opts.width - 2.0 * margin;
    let usable_h = opts.height - 2.0 * margin - opts.title_height;
    let zspan = opts.z_scale * usable_h;
    let base_h = usable_h - zspan;
    let px = margin + usable_w * (0.5 + (u - v) * 0.5);
    let py = opts.title_height + margin + zspan + base_h * ((u + v) / 2.0) - zspan * w;
    (px, py)
}

/// Render `grid` as an isometric surface SVG (see module docs).
pub fn render_surface_svg(grid: &DensityGrid, title: &str, opts: &SurfaceOptions) -> String {
    let n = grid.spec.n;
    let max = grid.max().max(1e-300);
    let norm_u = |ix: usize| ix as f64 / (n - 1) as f64;

    let mut body = String::new();

    // Painter's order: draw quads from the back (large u+v drawn last →
    // iterate so nearer rows overwrite farther ones). With this projection
    // the viewer looks from (u,v) = (0.5, −∞), so back = large v first.
    for cy in (0..n - 1).rev() {
        for cx in 0..n - 1 {
            let corners = [(cx, cy + 1), (cx + 1, cy + 1), (cx + 1, cy), (cx, cy)];
            let mut d = String::new();
            let mut mean_w = 0.0;
            for (k, &(ix, iy)) in corners.iter().enumerate() {
                let w = grid.at(ix, iy) / max;
                mean_w += w / 4.0;
                let (px, py) = iso(norm_u(ix), norm_u(iy), w, opts);
                let _ = write!(d, "{}{px:.1} {py:.1}", if k == 0 { "M " } else { " L " });
            }
            d.push_str(" Z");
            // Height-mapped fill: deep blue valleys to warm peaks.
            let t = mean_w.clamp(0.0, 1.0);
            let r = (40.0 + 215.0 * t) as u8;
            let g = (70.0 + 120.0 * t) as u8;
            let b = (160.0 - 80.0 * t) as u8;
            let _ = write!(
                body,
                r#"<path d="{d}" fill="rgb({r},{g},{b})" stroke="rgba(20,30,60,0.35)" stroke-width="0.4"/>"#
            );
        }
        body.push('\n');
    }

    // Separator plane: a translucent quad at w = τ/max.
    if let Some(tau) = opts.separator {
        let w = (tau / max).clamp(0.0, 1.0);
        let mut d = String::new();
        for (k, (u, v)) in [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
            .into_iter()
            .enumerate()
        {
            let (px, py) = iso(u, v, w, opts);
            let _ = write!(d, "{}{px:.1} {py:.1}", if k == 0 { "M " } else { " L " });
        }
        d.push_str(" Z");
        let _ = write!(
            body,
            r#"<path d="{d}" fill="rgba(200,60,60,0.25)" stroke="rgba(160,30,30,0.8)" stroke-width="1"/>"#
        );
    }

    // Query marker riding the surface.
    if let Some(q) = opts.query {
        let spec = &grid.spec;
        let u = ((q[0] - spec.x0) / (spec.dx * (n - 1) as f64)).clamp(0.0, 1.0);
        let v = ((q[1] - spec.y0) / (spec.dy * (n - 1) as f64)).clamp(0.0, 1.0);
        let w = (grid.interpolate(q[0], q[1]) / max).clamp(0.0, 1.0);
        let (px, py) = iso(u, v, w, opts);
        let _ = write!(
            body,
            r#"<path d="M {x0} {py} L {x1} {py} M {px} {y0} L {px} {y1}" stroke="black" stroke-width="2"/>
<text x="{tx}" y="{ty}" font-size="12" fill="black">* Query Point</text>"#,
            x0 = px - 7.0,
            x1 = px + 7.0,
            y0 = py - 7.0,
            y1 = py + 7.0,
            tx = px + 9.0,
            ty = py - 9.0,
        );
    }

    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">
<rect width="{w}" height="{h}" fill="white"/>
<text x="16" y="20" font-size="15" font-family="sans-serif" fill="#111">{title}</text>
{body}</svg>
"##,
        w = opts.width,
        h = opts.height,
        title = title
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;"),
    )
}

/// Convenience: render and save.
pub fn save_surface_svg(
    grid: &DensityGrid,
    title: &str,
    opts: &SurfaceOptions,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, render_surface_svg(grid, title, opts))
}

/// Kept for API symmetry with [`SvgCanvas`]: a surface plus a flat heatmap
/// side panel is a common combination; this helper builds the heatmap half.
pub fn heatmap_canvas(grid: &DensityGrid, title: &str) -> SvgCanvas {
    let spec = &grid.spec;
    let bb = (
        (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
        (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
    );
    let mut c = SvgCanvas::new(title, 560.0, 500.0, bb.0, bb.1);
    c.heatmap(grid);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_kde::GridSpec;

    fn peaked_grid() -> DensityGrid {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 8,
        };
        let mut v = vec![0.1; 64];
        v[3 * 8 + 3] = 5.0;
        v[3 * 8 + 4] = 4.0;
        DensityGrid::new(spec, v)
    }

    #[test]
    fn surface_svg_structure() {
        let g = peaked_grid();
        let svg = render_surface_svg(&g, "test <surface>", &SurfaceOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("test &lt;surface&gt;"));
        // (n-1)² quads.
        assert_eq!(svg.matches("fill=\"rgb(").count(), 49);
    }

    #[test]
    fn separator_and_query_render() {
        let g = peaked_grid();
        let opts = SurfaceOptions {
            separator: Some(1.0),
            query: Some([3.0, 3.0]),
            ..SurfaceOptions::default()
        };
        let svg = render_surface_svg(&g, "with extras", &opts);
        assert!(
            svg.contains("rgba(200,60,60,0.25)"),
            "separator plane missing"
        );
        assert!(svg.contains("* Query Point"), "query marker missing");
    }

    #[test]
    fn projection_keeps_points_in_bounds() {
        let opts = SurfaceOptions::default();
        for &(u, v, w) in &[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
            (0.5, 0.5, 0.5),
            (1.0, 0.0, 1.0),
        ] {
            let (px, py) = iso(u, v, w, &opts);
            assert!(px >= 0.0 && px <= opts.width, "x out of bounds: {px}");
            assert!(py >= 0.0 && py <= opts.height, "y out of bounds: {py}");
        }
    }

    #[test]
    fn higher_density_projects_higher_on_screen() {
        let opts = SurfaceOptions::default();
        let (_, y_low) = iso(0.5, 0.5, 0.0, &opts);
        let (_, y_high) = iso(0.5, 0.5, 1.0, &opts);
        assert!(y_high < y_low, "peaks must rise (smaller SVG y)");
    }

    #[test]
    fn save_writes_file() {
        let g = peaked_grid();
        let mut path = std::env::temp_dir();
        path.push(format!("hinn_surface_{}.svg", std::process::id()));
        save_surface_svg(&g, "saved", &SurfaceOptions::default(), &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heatmap_canvas_builds() {
        let g = peaked_grid();
        let svg = heatmap_canvas(&g, "hm").finish();
        assert!(svg.contains("<rect"));
    }
}
