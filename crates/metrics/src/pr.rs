//! Precision / recall / F1 over index sets (Table 1 of the paper).

use std::collections::HashSet;

/// Precision and recall of a retrieved set against a relevant set.
///
/// ```
/// use hinn_metrics::PrecisionRecall;
///
/// let pr = PrecisionRecall::compute(&[1, 2, 3, 4], &[3, 4, 5, 6]);
/// assert_eq!(pr.hits, 2);
/// assert!((pr.precision - 0.5).abs() < 1e-12);
/// assert!((pr.f1() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionRecall {
    /// `|retrieved ∩ relevant| / |retrieved|` (1.0 for empty retrieved).
    pub precision: f64,
    /// `|retrieved ∩ relevant| / |relevant|` (1.0 for empty relevant).
    pub recall: f64,
    /// Number of true positives.
    pub hits: usize,
}

impl PrecisionRecall {
    /// Compute from slices of indices (duplicates are ignored).
    pub fn compute(retrieved: &[usize], relevant: &[usize]) -> Self {
        let retrieved: HashSet<usize> = retrieved.iter().copied().collect();
        let relevant: HashSet<usize> = relevant.iter().copied().collect();
        let hits = retrieved.intersection(&relevant).count();
        let precision = if retrieved.is_empty() {
            1.0
        } else {
            hits as f64 / retrieved.len() as f64
        };
        let recall = if relevant.is_empty() {
            1.0
        } else {
            hits as f64 / relevant.len() as f64
        };
        Self {
            precision,
            recall,
            hits,
        }
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let s = self.precision + self.recall;
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / s
        }
    }

    /// Mean precision/recall over several query results.
    pub fn mean(results: &[PrecisionRecall]) -> PrecisionRecall {
        assert!(!results.is_empty(), "mean: no results");
        let n = results.len() as f64;
        PrecisionRecall {
            precision: results.iter().map(|r| r.precision).sum::<f64>() / n,
            recall: results.iter().map(|r| r.recall).sum::<f64>() / n,
            hits: results.iter().map(|r| r.hits).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_retrieval() {
        let pr = PrecisionRecall::compute(&[1, 2, 3], &[3, 2, 1]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.hits, 3);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn partial_retrieval() {
        // retrieved {1,2,3,4}, relevant {3,4,5,6,7,8}: hits 2.
        let pr = PrecisionRecall::compute(&[1, 2, 3, 4], &[3, 4, 5, 6, 7, 8]);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 6.0).abs() < 1e-12);
        assert!((pr.f1() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets() {
        let pr = PrecisionRecall::compute(&[1, 2], &[3, 4]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        let pr = PrecisionRecall::compute(&[], &[1]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        let pr = PrecisionRecall::compute(&[1], &[]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn duplicates_ignored() {
        let pr = PrecisionRecall::compute(&[1, 1, 1, 2], &[1, 2]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn mean_aggregates() {
        let a = PrecisionRecall {
            precision: 1.0,
            recall: 0.5,
            hits: 2,
        };
        let b = PrecisionRecall {
            precision: 0.5,
            recall: 1.0,
            hits: 3,
        };
        let m = PrecisionRecall::mean(&[a, b]);
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.75).abs() < 1e-12);
        assert_eq!(m.hits, 5);
    }
}
