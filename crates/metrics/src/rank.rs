//! Rank-agreement statistics.
//!
//! §1 of the paper: "the use of different distance metrics can result in
//! widely varying ordering of distances of points from the target for a
//! given query. This leads to questions on whether a user should consider
//! such results meaningful." Quantifying that instability needs a rank
//! correlation; Kendall's τ (pairwise concordance) and Spearman's ρ
//! (rank-value correlation) are implemented here, plus top-k overlap —
//! the measure most relevant to nearest-neighbor answers.

/// Kendall's τ-a between two equal-length score vectors: the fraction of
/// concordant minus discordant pairs over all pairs. Ties count as neither.
/// Returns 0 for inputs shorter than 2.
///
/// `O(n²)` — fine for the result-list sizes this crate compares.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall_tau: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Spearman's ρ: Pearson correlation of the rank vectors (average ranks
/// for ties). Returns 0 for inputs shorter than 2 or constant inputs.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman_rho: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Average ranks (1-based, ties share the mean rank).
fn ranks(x: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..x.len()).collect();
    // `total_cmp` so poisoned (NaN) scores rank deterministically as the
    // largest values instead of panicking; the ranks themselves stay
    // finite either way, so ρ remains well-defined.
    order.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
    let mut r = vec![0.0; x.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// `|top-k(a) ∩ top-k(b)| / k` where top-k means the k *smallest* scores
/// (distances). The head-stability measure for NN answers.
///
/// # Panics
/// Panics if `k == 0` or `k > len`.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "top_k_overlap: length mismatch");
    assert!(k >= 1 && k <= a.len(), "top_k_overlap: k out of range");
    let top = |x: &[f64]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..x.len()).collect();
        // NaN scores order as the largest distances, so a poisoned entry
        // is never counted among the k nearest (unless k spans everything).
        idx.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
        idx.into_iter().take(k).collect()
    };
    let ta = top(a);
    let tb = top(b);
    ta.intersection(&tb).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_identical_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_known_value() {
        // a = [1,2,3], b = [1,3,2]: pairs (1,2)C,(1,3)C,(2,3)D → (2-1)/3.
        let tau = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tau_handles_ties_and_tiny_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
        // All ties in a → every pair neither concordant nor discordant.
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_identical_reversed_constant() {
        let a = [3.0, 1.0, 4.0, 1.5, 5.0];
        assert!((spearman_rho(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((spearman_rho(&a, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(spearman_rho(&a, &[2.0; 5]), 0.0);
    }

    #[test]
    fn spearman_ties_share_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn top_k_overlap_basics() {
        let a = [0.1, 0.2, 0.3, 0.9, 0.8];
        let b = [0.9, 0.8, 0.3, 0.2, 0.1];
        // top-2 of a = {0,1}; of b = {4,3} → 0 overlap.
        assert_eq!(top_k_overlap(&a, &b, 2), 0.0);
        assert_eq!(top_k_overlap(&a, &a, 3), 1.0);
        // top-3 of a = {0,1,2}; of b = {4,3,2} → 1/3.
        assert!((top_k_overlap(&a, &b, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_scores_rank_deterministically() {
        // NaN policy: a NaN score orders as the largest value. Spearman
        // stays finite (ranks are positions, not values) and agrees with
        // substituting +∞ for the NaN.
        let a = [1.0, f64::NAN, 3.0, 2.0];
        let a_inf = [1.0, f64::INFINITY, 3.0, 2.0];
        let b = [1.0, 4.0, 3.0, 2.0];
        let rho = spearman_rho(&a, &b);
        assert!(rho.is_finite());
        assert_eq!(rho, spearman_rho(&a_inf, &b));
        // Kendall's τ: any pair involving the NaN is neither concordant
        // nor discordant (an effective tie), never a panic.
        assert!(kendall_tau(&a, &b).is_finite());
        // top-k treats scores as distances, so a NaN entry is never among
        // the k nearest.
        let overlap = top_k_overlap(&[f64::NAN, 0.2, 0.3, 0.1], &[0.4, 0.2, 0.3, 0.1], 3);
        assert_eq!(overlap, 1.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn zero_k_panics() {
        top_k_overlap(&[1.0], &[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
