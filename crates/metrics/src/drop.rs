//! Steep-drop analysis of meaningfulness probabilities (§4.1–§4.2).
//!
//! §4.1: "We sorted the data in order of meaningfulness probability and
//! found that a few of the data points had meaningfulness probability in the
//! range of 0.9 to 1, after which there was a steep drop. … By using the
//! threshold which occurs just before this steep drop, it is possible to
//! isolate the natural set of points related to the query."
//!
//! §4.2: on uniform data "the meaningfulness values do not show the kind of
//! steep drop … it is difficult to isolate a well defined query cluster" —
//! the verdict the detector must also be able to return.

/// Tuning knobs for the drop detector.
#[derive(Clone, Copy, Debug)]
pub struct DropConfig {
    /// Minimum probability the points *above* the cliff must average for
    /// the result to count as meaningful (the paper's 0.9–1.0 band).
    pub min_top_probability: f64,
    /// Minimum size of the probability drop across the window to qualify
    /// as a "steep drop".
    pub min_gap: f64,
    /// The cliff is searched within the first `max_fraction` of the sorted
    /// points (a natural query cluster is a small part of the data).
    pub max_fraction: f64,
    /// Width of the sliding window the drop is measured across
    /// (`sorted[i] − sorted[i + window]`). `None` = auto: 1% of the
    /// points, clamped to `[1, 50]`. A window wider than one rank is what
    /// makes the detector robust on large clusters, where the boundary is a
    /// steep *slope* over a handful of points rather than a single gap.
    pub window: Option<usize>,
}

impl Default for DropConfig {
    fn default() -> Self {
        Self {
            min_top_probability: 0.5,
            min_gap: 0.2,
            max_fraction: 0.5,
            window: None,
        }
    }
}

/// Outcome of the steep-drop analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum DropVerdict {
    /// A steep drop exists: the `natural_k` highest-probability points form
    /// the natural query cluster.
    Meaningful {
        /// Number of points above the cliff.
        natural_k: usize,
        /// Probability gap at the cliff.
        gap: f64,
        /// Mean probability of the points above the cliff.
        top_mean: f64,
    },
    /// No steep drop / no sufficiently confident points: nearest neighbor
    /// search on this data is not meaningful (§4.2's diagnosis).
    NotMeaningful {
        /// Largest gap that was observed (for reporting).
        best_gap: f64,
    },
}

impl DropVerdict {
    /// `true` for the [`DropVerdict::Meaningful`] variant.
    pub fn is_meaningful(&self) -> bool {
        matches!(self, DropVerdict::Meaningful { .. })
    }
}

/// Detect the steep drop in a set of meaningfulness probabilities
/// (unsorted; the function sorts internally, descending).
///
/// Returns [`DropVerdict::NotMeaningful`] when no qualifying cliff exists —
/// either the probabilities decay gradually (uniform-like data) or the top
/// points are not confident enough.
pub fn detect_steep_drop(probabilities: &[f64], config: &DropConfig) -> DropVerdict {
    if probabilities.len() < 2 {
        return DropVerdict::NotMeaningful { best_gap: 0.0 };
    }
    let mut sorted: Vec<f64> = probabilities.to_vec();
    // Descending. Probabilities are non-negative, so `total_cmp` matches
    // the old partial order; a poisoned (NaN) probability sorts to the
    // top, where its NaN gaps and top-mean fail every threshold below —
    // the verdict degrades to NotMeaningful instead of panicking.
    sorted.sort_by(|a, b| b.total_cmp(a));

    let horizon =
        ((sorted.len() as f64 * config.max_fraction).ceil() as usize).clamp(1, sorted.len() - 1);
    let window = config
        .window
        .unwrap_or_else(|| (sorted.len() / 100).clamp(1, 50))
        .max(1);

    let mut best_idx = 0usize;
    let mut best_gap = f64::NEG_INFINITY;
    for i in 0..horizon {
        let j = (i + window).min(sorted.len() - 1);
        let gap = sorted[i] - sorted[j];
        if gap > best_gap {
            best_gap = gap;
            best_idx = i;
        }
    }

    let natural_k = best_idx + 1;
    let top_mean = sorted[..natural_k].iter().sum::<f64>() / natural_k as f64;
    if best_gap >= config.min_gap && top_mean >= config.min_top_probability {
        DropVerdict::Meaningful {
            natural_k,
            gap: best_gap,
            top_mean,
        }
    } else {
        DropVerdict::NotMeaningful {
            best_gap: best_gap.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_probabilities_degrade_to_not_meaningful() {
        // A NaN probability must not panic the diagnosis: it sorts to the
        // top, its gaps and the top-mean go NaN, and every threshold
        // comparison fails — the verdict is NotMeaningful with a finite
        // reported gap.
        let mut probs = vec![0.98, 0.95, f64::NAN, 0.93];
        probs.extend(std::iter::repeat_n(0.1, 40));
        match detect_steep_drop(&probs, &DropConfig::default()) {
            DropVerdict::NotMeaningful { best_gap } => assert!(best_gap.is_finite()),
            DropVerdict::Meaningful { .. } => panic!("NaN input cannot be meaningful"),
        }
        // Even an all-NaN input degrades instead of panicking.
        let all_nan = vec![f64::NAN; 8];
        assert!(!detect_steep_drop(&all_nan, &DropConfig::default()).is_meaningful());
    }

    #[test]
    fn clean_cliff_detected() {
        // 5 confident points, then a cliff to noise.
        let mut probs = vec![0.98, 0.95, 0.97, 0.93, 0.96];
        probs.extend(std::iter::repeat_n(0.1, 95));
        match detect_steep_drop(&probs, &DropConfig::default()) {
            DropVerdict::Meaningful {
                natural_k,
                gap,
                top_mean,
            } => {
                assert_eq!(natural_k, 5);
                assert!(gap > 0.8);
                assert!(top_mean > 0.9);
            }
            v => panic!("expected meaningful, got {v:?}"),
        }
    }

    #[test]
    fn gradual_decay_is_not_meaningful() {
        // Linearly decaying probabilities — no cliff anywhere.
        let probs: Vec<f64> = (0..100).map(|i| 1.0 - i as f64 / 100.0).collect();
        let v = detect_steep_drop(&probs, &DropConfig::default());
        assert!(
            !v.is_meaningful(),
            "gradual decay must not be meaningful: {v:?}"
        );
    }

    #[test]
    fn all_low_probabilities_not_meaningful() {
        // A relative cliff among uniformly low values must not qualify.
        let mut probs = vec![0.30, 0.28];
        probs.extend(std::iter::repeat_n(0.05, 50));
        let v = detect_steep_drop(&probs, &DropConfig::default());
        assert!(!v.is_meaningful(), "low-confidence cliff accepted: {v:?}");
    }

    #[test]
    fn flat_probabilities_not_meaningful() {
        let probs = vec![0.4; 60];
        let v = detect_steep_drop(&probs, &DropConfig::default());
        assert_eq!(v, DropVerdict::NotMeaningful { best_gap: 0.0 });
    }

    #[test]
    fn cliff_beyond_horizon_ignored() {
        // Cliff at 80% of the data — not a small natural cluster.
        let mut probs = vec![0.95; 80];
        probs.extend(std::iter::repeat_n(0.05, 20));
        let cfg = DropConfig {
            max_fraction: 0.5,
            ..DropConfig::default()
        };
        let v = detect_steep_drop(&probs, &cfg);
        assert!(!v.is_meaningful(), "cliff outside horizon accepted: {v:?}");
    }

    #[test]
    fn windowed_detection_catches_steep_slopes() {
        // A large "cluster" of 300 confident points whose boundary is a
        // steep slope spread over ~10 ranks — no single-rank gap exceeds
        // 0.03, but the windowed drop does.
        let mut probs = vec![0.9; 300];
        for k in 0..10 {
            probs.push(0.9 - 0.85 * (k as f64 + 1.0) / 10.0);
        }
        probs.extend(vec![0.05; 690]);
        let single = DropConfig {
            window: Some(1),
            ..DropConfig::default()
        };
        assert!(
            !detect_steep_drop(&probs, &single).is_meaningful(),
            "single-rank gap should miss the sloped cliff"
        );
        let windowed = DropConfig {
            window: Some(10),
            ..DropConfig::default()
        };
        match detect_steep_drop(&probs, &windowed) {
            DropVerdict::Meaningful { natural_k, .. } => {
                assert!(
                    (295..=315).contains(&natural_k),
                    "cliff should sit near the cluster boundary, got {natural_k}"
                );
            }
            v => panic!("windowed detector should fire: {v:?}"),
        }
        // Auto window (1% of 1000 = 10) behaves like the explicit one.
        assert!(detect_steep_drop(&probs, &DropConfig::default()).is_meaningful());
    }

    #[test]
    fn unsorted_input_handled() {
        let probs = vec![0.1, 0.95, 0.1, 0.97, 0.1, 0.96, 0.1, 0.1, 0.1, 0.1];
        match detect_steep_drop(&probs, &DropConfig::default()) {
            DropVerdict::Meaningful { natural_k, .. } => assert_eq!(natural_k, 3),
            v => panic!("expected meaningful, got {v:?}"),
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(!detect_steep_drop(&[], &DropConfig::default()).is_meaningful());
        assert!(!detect_steep_drop(&[0.9], &DropConfig::default()).is_meaningful());
        // Two points with a huge confident gap: meaningful with k = 1.
        match detect_steep_drop(&[0.95, 0.05], &DropConfig::default()) {
            DropVerdict::Meaningful { natural_k, .. } => assert_eq!(natural_k, 1),
            v => panic!("{v:?}"),
        }
    }
}
