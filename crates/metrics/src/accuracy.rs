//! Nearest-neighbor classification accuracy (Table 2 of the paper).
//!
//! §4.3: each query point is classified by the labels of the neighbors the
//! method returns ("as many nearest neighbors as determined by the natural
//! query cluster size"); accuracy is the fraction of queries whose majority
//! neighbor label matches the query's own label.

/// Majority label among `neighbor_labels` (ties broken toward the smaller
/// label, unlabeled neighbors ignored). `None` if no neighbor is labeled.
pub fn majority_label(neighbor_labels: &[Option<usize>]) -> Option<usize> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for l in neighbor_labels.iter().flatten() {
        *counts.entry(*l).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(l, _)| l)
}

/// Fraction of `(true_label, predicted)` pairs that agree; `None`
/// predictions always count as errors.
pub fn classification_accuracy(results: &[(usize, Option<usize>)]) -> f64 {
    assert!(!results.is_empty(), "classification_accuracy: no results");
    let correct = results.iter().filter(|(t, p)| *p == Some(*t)).count();
    correct as f64 / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basic() {
        assert_eq!(majority_label(&[Some(1), Some(1), Some(0)]), Some(1));
        assert_eq!(majority_label(&[Some(2)]), Some(2));
    }

    #[test]
    fn majority_ignores_unlabeled() {
        assert_eq!(majority_label(&[None, None, Some(3)]), Some(3));
        assert_eq!(majority_label(&[None, None]), None);
        assert_eq!(majority_label(&[]), None);
    }

    #[test]
    fn majority_tie_breaks_to_smaller_label() {
        assert_eq!(majority_label(&[Some(0), Some(1)]), Some(0));
        assert_eq!(
            majority_label(&[Some(5), Some(2), Some(5), Some(2)]),
            Some(2)
        );
    }

    #[test]
    fn accuracy_counts_correct_fraction() {
        let results = [(0, Some(0)), (1, Some(0)), (2, Some(2)), (3, None)];
        assert!((classification_accuracy(&results) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_perfect_and_zero() {
        assert_eq!(classification_accuracy(&[(1, Some(1))]), 1.0);
        assert_eq!(classification_accuracy(&[(1, Some(2))]), 0.0);
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn empty_accuracy_panics() {
        classification_accuracy(&[]);
    }
}
