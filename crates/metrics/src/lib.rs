//! Evaluation metrics and statistical helpers for `hinn`.
//!
//! * [`pr`] — precision / recall / F1 over retrieved-vs-relevant index sets
//!   (Table 1 of the paper).
//! * [`accuracy`] — majority-vote classification accuracy of a returned
//!   neighbor set (Table 2).
//! * [`contrast`] — the distance-distribution statistics behind the
//!   "meaningfulness" discussion (§1.1): relative contrast
//!   `(D_max − D_min)/D_min` of Beyer et al., and summary stats.
//! * [`normal`] — the standard normal CDF `Φ` used by the meaningfulness
//!   probability `P(j) = max(2Φ(M(j)) − 1, 0)` (Fig. 8).
//! * [`rank`] — rank-agreement statistics (Kendall's τ, Spearman's ρ,
//!   top-k overlap) quantifying §1's metric-instability observation.
//! * [`mod@drop`] — the steep-drop analysis of §4.1: sort the meaningfulness
//!   probabilities, find the cliff, and report the *natural* number of
//!   nearest neighbors — or diagnose that the data has no meaningful
//!   neighbors at all (§4.2).

pub mod accuracy;
pub mod contrast;
pub mod drop;
pub mod normal;
pub mod pr;
pub mod rank;

pub use accuracy::{classification_accuracy, majority_label};
pub use contrast::{epsilon_instability, relative_contrast, DistanceStats};
pub use drop::{detect_steep_drop, DropConfig, DropVerdict};
pub use normal::normal_cdf;
pub use pr::PrecisionRecall;
pub use rank::{kendall_tau, spearman_rho, top_k_overlap};
