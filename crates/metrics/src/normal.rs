//! Standard normal CDF.
//!
//! Fig. 8 of the paper converts the meaningfulness coefficient `M(j)` into a
//! probability `P(j) = max(2Φ(M(j)) − 1, 0)`. `Φ` is computed through the
//! complementary error function with the Abramowitz–Stegun 7.1.26 rational
//! approximation (max absolute error ≈ 1.5e−7 — far below anything the
//! preference-count statistics can resolve).

/// The error function `erf(x)`, Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The paper's meaningfulness probability transform:
/// `P = max(2Φ(m) − 1, 0)` (Fig. 8 / Eq. 7).
///
/// For `m ≤ 0` the exact value is 0 (the clamp); returning it directly also
/// avoids the ~1.5e−7 wobble of the erf approximation around zero.
pub fn meaningfulness_probability(m: f64) -> f64 {
    if m <= 0.0 {
        return 0.0;
    }
    (2.0 * normal_cdf(m) - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447461),
            (1.96, 0.9750021049),
            (-1.645, 0.0499849088),
            (3.0, 0.9986501020),
        ];
        for (z, want) in cases {
            assert!(
                (normal_cdf(z) - want).abs() < 2e-7,
                "Φ({z}) = {} want {want}",
                normal_cdf(z)
            );
        }
    }

    #[test]
    fn cdf_symmetry_and_monotonicity() {
        for i in 0..100 {
            let z = -5.0 + 0.1 * i as f64;
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 3e-7);
            assert!(normal_cdf(z + 0.1) >= normal_cdf(z));
        }
    }

    #[test]
    fn meaningfulness_probability_properties() {
        // Negative coefficient → clamped to zero (Eq. 7's max with 0).
        assert_eq!(meaningfulness_probability(-1.0), 0.0);
        assert_eq!(meaningfulness_probability(0.0), 0.0);
        // Large coefficient → probability approaches 1.
        assert!(meaningfulness_probability(4.0) > 0.9999);
        // 2Φ(1.96)−1 ≈ 0.95.
        assert!((meaningfulness_probability(1.96) - 0.95).abs() < 1e-3);
        // Monotone in m (up to the ~1.5e-7 error of the A&S approximation).
        let mut prev = 0.0;
        for i in 0..50 {
            let p = meaningfulness_probability(0.1 * i as f64);
            assert!(p >= prev - 1e-6);
            prev = p;
        }
    }
}
