//! Distance-distribution statistics behind the meaningfulness discussion.
//!
//! §1 / §1.1 of the paper build on Beyer et al. (ICDT 1999): in high
//! dimension, for broad classes of distributions, `D_max ≈ D_min` — the
//! *relative contrast* `(D_max − D_min) / D_min` vanishes and nearest
//! neighbor queries become unstable. These statistics let the experiments
//! demonstrate the instability on the uniform workload and the restored
//! contrast inside well-chosen projections.

/// Summary of the distances from one query to a data set.
#[derive(Clone, Copy, Debug)]
pub struct DistanceStats {
    /// Smallest distance.
    pub min: f64,
    /// Largest distance.
    pub max: f64,
    /// Mean distance.
    pub mean: f64,
    /// Population standard deviation of the distances.
    pub std: f64,
}

impl DistanceStats {
    /// Compute from a non-empty slice of distances.
    ///
    /// # Panics
    /// Panics if `distances` is empty.
    pub fn compute(distances: &[f64]) -> Self {
        assert!(!distances.is_empty(), "DistanceStats: no distances");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &d in distances {
            // NaN policy: `f64::min`/`f64::max` ignore a NaN operand, so a
            // poisoned distance can never capture min or max; it still
            // poisons mean and std, which is the honest summary of a
            // corrupted sample.
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
        let mean = sum / distances.len() as f64;
        let var = distances
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / distances.len() as f64;
        Self {
            min,
            max,
            mean,
            std: var.sqrt(),
        }
    }

    /// Beyer et al.'s relative contrast `(D_max − D_min) / D_min`
    /// (`∞` when `D_min = 0` and `D_max > 0`; `0` when all distances equal).
    pub fn relative_contrast(&self) -> f64 {
        if self.min == 0.0 {
            if self.max == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.max - self.min) / self.min
        }
    }

    /// Coefficient of variation `σ / μ` — the alternative "spread of the
    /// distance distribution" measure used in the meaningfulness literature.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// The ε-instability of a nearest-neighbor query (Beyer et al., the
/// paper's \[10\]): the fraction of data points lying within
/// `(1 + ε) · D_min` of the query. When this fraction is large, "a slight
/// relative perturbation of the query point away from the nearest neighbor
/// could change it into the farthest neighbor and vice versa" (§1) — the
/// query is *unstable*.
///
/// # Panics
/// Panics if `distances` is empty or `epsilon < 0`.
pub fn epsilon_instability(distances: &[f64], epsilon: f64) -> f64 {
    assert!(!distances.is_empty(), "epsilon_instability: no distances");
    assert!(epsilon >= 0.0, "epsilon_instability: negative epsilon");
    // NaN policy: the `f64::min` fold ignores NaN distances, and a NaN
    // never satisfies `d <= radius`, so poisoned entries are excluded
    // from both the minimum and the count rather than panicking.
    let dmin = distances.iter().copied().fold(f64::INFINITY, f64::min);
    let radius = dmin * (1.0 + epsilon);
    distances.iter().filter(|&&d| d <= radius).count() as f64 / distances.len() as f64
}

/// Convenience: relative contrast of the distances from `query` to every
/// point of `points` under the Euclidean metric.
pub fn relative_contrast(points: &[Vec<f64>], query: &[f64]) -> f64 {
    let d: Vec<f64> = points
        .iter()
        .map(|p| hinn_linalg::vector::dist(p, query))
        .collect();
    DistanceStats::compute(&d).relative_contrast()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = DistanceStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.relative_contrast() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_contrasts() {
        let zero = DistanceStats::compute(&[0.0, 0.0]);
        assert_eq!(zero.relative_contrast(), 0.0);
        let inf = DistanceStats::compute(&[0.0, 5.0]);
        assert!(inf.relative_contrast().is_infinite());
        let flat = DistanceStats::compute(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.relative_contrast(), 0.0);
        assert_eq!(flat.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn contrast_shrinks_with_dimension_for_uniform_data() {
        // The classic curse-of-dimensionality demonstration, with a
        // deterministic LCG so the test is stable.
        let mut state = 88172645463325252u64;
        let mut unif = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let contrast_at = |d: usize, unif: &mut dyn FnMut() -> f64| {
            let points: Vec<Vec<f64>> =
                (0..300).map(|_| (0..d).map(|_| unif()).collect()).collect();
            let query: Vec<f64> = (0..d).map(|_| unif()).collect();
            relative_contrast(&points, &query)
        };
        let c2 = contrast_at(2, &mut unif);
        let c100 = contrast_at(100, &mut unif);
        assert!(
            c100 < c2 / 3.0,
            "contrast should collapse with dimension: c2={c2}, c100={c100}"
        );
    }

    #[test]
    fn epsilon_instability_basics() {
        // dmin = 1; radius at ε=0.5 is 1.5 → 2 of 4 points inside.
        let d = [1.0, 1.4, 2.0, 3.0];
        assert!((epsilon_instability(&d, 0.5) - 0.5).abs() < 1e-12);
        // ε = 0: only (ties with) the nearest neighbor.
        assert!((epsilon_instability(&d, 0.0) - 0.25).abs() < 1e-12);
        // Everything equidistant → totally unstable at any ε.
        assert_eq!(epsilon_instability(&[2.0, 2.0, 2.0], 0.01), 1.0);
    }

    #[test]
    fn instability_grows_with_dimension_on_uniform_data() {
        let mut state = 0x1234ABCDu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let inst = |d: usize, unif: &mut dyn FnMut() -> f64| {
            let pts: Vec<Vec<f64>> = (0..400).map(|_| (0..d).map(|_| unif()).collect()).collect();
            let q: Vec<f64> = (0..d).map(|_| unif()).collect();
            let dist: Vec<f64> = pts
                .iter()
                .map(|p| hinn_linalg::vector::dist(p, &q))
                .collect();
            epsilon_instability(&dist, 0.1)
        };
        let low = inst(2, &mut unif);
        let high = inst(80, &mut unif);
        assert!(
            high > 5.0 * low.max(1.0 / 400.0),
            "instability must grow with d: {low} vs {high}"
        );
    }

    #[test]
    fn poisoned_distances_are_ignored_by_the_extremes() {
        // NaN policy: min/max folds skip NaN operands; mean/std honestly
        // report the corruption; the instability count excludes NaN.
        let s = DistanceStats::compute(&[1.0, f64::NAN, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.mean.is_nan());
        assert!(s.std.is_nan());
        assert!((s.relative_contrast() - 3.0).abs() < 1e-12);
        let inst = epsilon_instability(&[1.0, f64::NAN, 1.05], 0.1);
        assert!((inst - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no distances")]
    fn empty_panics() {
        DistanceStats::compute(&[]);
    }
}
