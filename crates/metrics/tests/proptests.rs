//! Property-based tests for the metrics crate.

use hinn_metrics::drop::{detect_steep_drop, DropConfig};
use hinn_metrics::normal::{erf, normal_cdf};
use hinn_metrics::{kendall_tau, spearman_rho, top_k_overlap, DistanceStats, PrecisionRecall};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn precision_recall_bounds(
        retrieved in proptest::collection::vec(0usize..50, 0..30),
        relevant in proptest::collection::vec(0usize..50, 0..30),
    ) {
        let pr = PrecisionRecall::compute(&retrieved, &relevant);
        prop_assert!((0.0..=1.0).contains(&pr.precision));
        prop_assert!((0.0..=1.0).contains(&pr.recall));
        prop_assert!((0.0..=1.0).contains(&pr.f1()));
        let r: std::collections::HashSet<_> = retrieved.iter().collect();
        let v: std::collections::HashSet<_> = relevant.iter().collect();
        prop_assert!(pr.hits <= r.len().min(v.len()));
    }

    #[test]
    fn distance_stats_invariants(d in proptest::collection::vec(0.0..100.0f64, 1..50)) {
        let s = DistanceStats::compute(&d);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.relative_contrast() >= 0.0);
    }

    #[test]
    fn contrast_scale_invariant(d in proptest::collection::vec(0.1..100.0f64, 2..40), c in 0.1..10.0f64) {
        let scaled: Vec<f64> = d.iter().map(|x| x * c).collect();
        let a = DistanceStats::compute(&d).relative_contrast();
        let b = DistanceStats::compute(&scaled).relative_contrast();
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 3e-7);
        prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn cdf_bounded_and_complementary(z in -8.0..8.0f64) {
        let p = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + normal_cdf(-z) - 1.0).abs() < 3e-7);
    }

    #[test]
    fn kendall_tau_bounds_and_symmetry(
        a in proptest::collection::vec(-10.0..10.0f64, 2..20),
        b in proptest::collection::vec(-10.0..10.0f64, 2..20),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let t = kendall_tau(a, b);
        prop_assert!((-1.0..=1.0).contains(&t));
        prop_assert!((t - kendall_tau(b, a)).abs() < 1e-12, "tau must be symmetric");
    }

    #[test]
    fn spearman_bounds_and_monotone_transform_invariance(
        a in proptest::collection::vec(-10.0..10.0f64, 3..20),
    ) {
        // A strictly increasing transform preserves ranks exactly.
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        let rho = spearman_rho(&a, &b);
        prop_assert!(rho > 1.0 - 1e-9, "monotone transform must give rho 1, got {rho}");
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        prop_assert!((-1.0..=1.0).contains(&spearman_rho(&a, &c)));
    }

    #[test]
    fn top_k_overlap_bounds_and_self(
        a in proptest::collection::vec(-10.0..10.0f64, 1..30),
        k in 1usize..30,
    ) {
        let k = k.min(a.len());
        prop_assert_eq!(top_k_overlap(&a, &a, k), 1.0);
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let o = top_k_overlap(&a, &b, k);
        prop_assert!((0.0..=1.0).contains(&o));
    }

    #[test]
    fn steep_drop_never_exceeds_horizon(
        probs in proptest::collection::vec(0.0..1.0f64, 4..100),
        frac in 0.1..0.9f64,
    ) {
        let cfg = DropConfig { max_fraction: frac, ..DropConfig::default() };
        if let hinn_metrics::DropVerdict::Meaningful { natural_k, .. } =
            detect_steep_drop(&probs, &cfg)
        {
            let horizon = (probs.len() as f64 * frac).ceil() as usize;
            prop_assert!(natural_k <= horizon + 1, "k {natural_k} beyond horizon {horizon}");
        }
    }

    #[test]
    fn steep_drop_invariant_to_input_order(
        mut probs in proptest::collection::vec(0.0..1.0f64, 4..60),
    ) {
        let v1 = detect_steep_drop(&probs, &DropConfig::default());
        probs.reverse();
        let v2 = detect_steep_drop(&probs, &DropConfig::default());
        prop_assert_eq!(v1, v2);
    }
}
