//! Configuration of the interactive search loop.

use crate::candidates::CandidateSource;
use crate::error::HinnError;
use hinn_cache::CachePolicy;
use hinn_kde::CornerRule;
use hinn_par::Parallelism;

/// Whether projections are built from arbitrary directions (principal
/// components of the query cluster) or restricted to the original
/// attributes (§1.1: axis-parallel projections trade some discrimination
/// for interpretability).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectionMode {
    /// Arbitrarily-oriented projections via PCA (the general case).
    Arbitrary,
    /// Axis-parallel projections over the original attributes.
    AxisParallel,
}

/// How the KDE bandwidth of each visual profile is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BandwidthMode {
    /// One global bandwidth: Silverman's rule times
    /// [`SearchConfig::bandwidth_scale`].
    Fixed,
    /// Silverman's adaptive kernel estimator (reference \[26\], §5.3):
    /// per-point bandwidths `h·λᵢ` with sensitivity `alpha` (0.5
    /// recommended). The global `bandwidth_scale` still multiplies the
    /// pilot bandwidth.
    Adaptive {
        /// Sensitivity exponent in `[0, 1]`.
        alpha: f64,
    },
}

/// Tuning knobs of [`crate::InteractiveSearch`].
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// The support `s`: how many neighbors the user wants, and the size of
    /// the candidate neighborhood used to derive projections (§2). The
    /// effective support is `max(support, d)` as the paper prescribes.
    pub support: usize,
    /// Grid points per axis of the visual profile (the paper's `p`).
    pub grid_n: usize,
    /// Multiplier on Silverman's bandwidth. The paper quotes Silverman's
    /// normal-reference rule, but that rule is derived for *unimodal*
    /// densities and badly over-smooths the multimodal projections this
    /// system lives on, blurring cluster boundaries into the background.
    /// The default of 0.3 keeps the profile's peaks sharp (the ablation
    /// experiment `exp_ablations` sweeps this knob; 1.0 reproduces the
    /// literal rule).
    pub bandwidth_scale: f64,
    /// Fixed vs adaptive per-point bandwidths.
    pub bandwidth_mode: BandwidthMode,
    /// Projection orientation mode.
    pub projection_mode: ProjectionMode,
    /// Corner rule for grid density connectivity (Def. 2.2's ≥3 by default).
    pub corner_rule: CornerRule,
    /// Termination: overlap fraction of consecutive top-`s` sets at which
    /// the ranking is considered stable (`t` in §3).
    pub overlap_threshold: f64,
    /// Lower bound on major iterations before termination is allowed.
    pub min_major_iterations: usize,
    /// Hard cap on major iterations.
    pub max_major_iterations: usize,
    /// Per-minor-iteration preference weights `w_i` (Fig. 7 / Eq. 3). Views
    /// beyond the vector's length weigh 1.0. Empty = all ones (the paper's
    /// setting).
    pub projection_weights: Vec<f64>,
    /// Record every visual profile into the transcript (needed by the
    /// figure experiments; costs memory).
    pub record_profiles: bool,
    /// Thread budget for the intra-query hot paths (KDE grids, covariance
    /// statistics, projection scans). Results are bit-identical for every
    /// budget (see `hinn-par`); this knob only trades wall-clock for
    /// cores. Defaults to [`Parallelism::from_env`] (`HINN_THREADS`, else
    /// all hardware threads).
    pub parallelism: Parallelism,
    /// Optional wall-clock budget per session. Checked cooperatively at
    /// minor-iteration boundaries: when exceeded,
    /// [`crate::InteractiveSearch::try_run`] returns
    /// [`crate::HinnError::Deadline`] instead of a partial answer. `None`
    /// (the default) keeps the engine clock-free outside instrumentation.
    pub deadline: Option<std::time::Duration>,
    /// Capacities of the session-level memoization caches (see
    /// [`crate::SessionCache`]). Caching is pure-function memoization over
    /// content fingerprints, so results are bit-identical whether caches
    /// are warm, cold, or disabled ([`CachePolicy::disabled`]) — the
    /// policy only trades memory for repeated-query wall-clock.
    pub cache: CachePolicy,
    /// How the session's initial candidate set is seeded (see
    /// [`CandidateSource`]). [`CandidateSource::Full`] — every point, the
    /// paper's literal protocol — is the default; the prefiltering sources
    /// bound the per-session working set for million-point datasets.
    pub candidates: CandidateSource,
    /// Optional cap on minor iterations (views) per major iteration. The
    /// paper runs `⌈d/2⌉` two-dimensional projections per major; capping
    /// below that trades discrimination for per-major latency — it is the
    /// "fewer minors" rung of the serving layer's overload-shedding
    /// ladder. `None` (the default) keeps the paper's count; `Some(0)` is
    /// refused by [`try_validate`](SearchConfig::try_validate). The cap
    /// participates in the snapshot configuration fingerprint: a session
    /// opened under a cap must be resumed under the same cap.
    pub max_minors: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            support: 20,
            grid_n: 80,
            bandwidth_scale: 0.3,
            bandwidth_mode: BandwidthMode::Fixed,
            projection_mode: ProjectionMode::Arbitrary,
            corner_rule: CornerRule::AtLeastThree,
            overlap_threshold: 0.8,
            min_major_iterations: 2,
            max_major_iterations: 6,
            projection_weights: Vec::new(),
            record_profiles: false,
            parallelism: Parallelism::default(),
            deadline: None,
            cache: CachePolicy::default(),
            candidates: CandidateSource::Full,
            max_minors: None,
        }
    }
}

impl SearchConfig {
    /// Set the requested support `s`.
    pub fn with_support(mut self, support: usize) -> Self {
        assert!(support > 0, "SearchConfig: support must be positive");
        self.support = support;
        self
    }

    /// Set the projection mode.
    pub fn with_mode(mut self, mode: ProjectionMode) -> Self {
        self.projection_mode = mode;
        self
    }

    /// Enable profile recording.
    pub fn recording_profiles(mut self) -> Self {
        self.record_profiles = true;
        self
    }

    /// Set the intra-query thread budget.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set a per-session wall-clock budget (see
    /// [`SearchConfig::deadline`]).
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the session-cache capacities (see [`SearchConfig::cache`]).
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Turn every session cache off (the compute-always reference path).
    pub fn without_cache(self) -> Self {
        self.with_cache_policy(CachePolicy::disabled())
    }

    /// Set the candidate source (see [`SearchConfig::candidates`]).
    pub fn with_candidate_source(mut self, candidates: CandidateSource) -> Self {
        self.candidates = candidates;
        self
    }

    /// Cap minor iterations per major (see [`SearchConfig::max_minors`]).
    pub fn with_max_minors(mut self, cap: usize) -> Self {
        self.max_minors = Some(cap);
        self
    }

    /// Minor iterations per major for data of dimensionality `d`: the
    /// paper's `max(d/2, 1)`, clamped by [`SearchConfig::max_minors`].
    pub fn effective_minors(&self, d: usize) -> usize {
        let base = (d / 2).max(1);
        match self.max_minors {
            Some(cap) => base.min(cap.max(1)),
            None => base,
        }
    }

    /// The effective support for data of dimensionality `d`
    /// (§2: at least `d`).
    pub fn effective_support(&self, d: usize) -> usize {
        self.support.max(d)
    }

    /// Weight `w_i` of minor iteration `i`.
    pub fn weight(&self, minor: usize) -> f64 {
        self.projection_weights.get(minor).copied().unwrap_or(1.0)
    }

    /// Validate invariants that cannot be enforced at construction.
    ///
    /// # Panics
    /// Panics with the offending invariant's message; [`try_validate`]
    /// (`SearchConfig::try_validate`) is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// [`validate`](SearchConfig::validate) returning a typed
    /// [`HinnError::InvalidInput`] instead of panicking.
    pub fn try_validate(&self) -> Result<(), HinnError> {
        let fail = |message: &str| {
            Err(HinnError::InvalidInput {
                phase: "config.validate",
                message: message.to_string(),
            })
        };
        if self.support == 0 {
            return fail("SearchConfig: support must be positive");
        }
        if self.grid_n < 4 {
            return fail("SearchConfig: grid_n must be at least 4");
        }
        if self.bandwidth_scale.is_nan() || self.bandwidth_scale <= 0.0 {
            return fail("SearchConfig: bandwidth_scale must be positive");
        }
        if let BandwidthMode::Adaptive { alpha } = self.bandwidth_mode {
            if !(0.0..=1.0).contains(&alpha) {
                return fail("SearchConfig: adaptive alpha must be in [0, 1]");
            }
        }
        if !(0.0..=1.0).contains(&self.overlap_threshold) {
            return fail("SearchConfig: overlap_threshold must be in [0,1]");
        }
        if self.min_major_iterations < 1 || self.min_major_iterations > self.max_major_iterations {
            return fail("SearchConfig: iteration bounds inconsistent");
        }
        if !self.projection_weights.iter().all(|w| *w >= 0.0) {
            return fail("SearchConfig: weights must be non-negative");
        }
        if let Some(d) = self.deadline {
            if d.is_zero() {
                return fail("SearchConfig: deadline must be non-zero");
            }
        }
        if self.max_minors == Some(0) {
            return fail("SearchConfig: max_minors must be at least 1 when set");
        }
        self.candidates.try_validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SearchConfig::default().validate();
    }

    #[test]
    fn max_minors_caps_the_paper_count() {
        let c = SearchConfig::default();
        assert_eq!(c.effective_minors(8), 4, "paper default: d/2 views");
        assert_eq!(c.effective_minors(1), 1, "at least one view per major");
        let capped = SearchConfig::default().with_max_minors(2);
        assert_eq!(capped.effective_minors(8), 2);
        assert_eq!(capped.effective_minors(2), 1, "cap never raises the count");
        let zero = SearchConfig {
            max_minors: Some(0),
            ..SearchConfig::default()
        };
        let err = zero.try_validate().expect_err("zero cap refused");
        assert!(err.to_string().contains("max_minors"));
    }

    #[test]
    fn effective_support_respects_dimensionality() {
        let c = SearchConfig::default().with_support(5);
        assert_eq!(c.effective_support(20), 20, "support clamped up to d");
        assert_eq!(c.effective_support(3), 5);
    }

    #[test]
    fn weights_default_to_one() {
        let mut c = SearchConfig::default();
        assert_eq!(c.weight(0), 1.0);
        assert_eq!(c.weight(7), 1.0);
        c.projection_weights = vec![2.0, 0.5];
        assert_eq!(c.weight(0), 2.0);
        assert_eq!(c.weight(1), 0.5);
        assert_eq!(c.weight(2), 1.0);
    }

    #[test]
    fn builder_methods_chain() {
        let c = SearchConfig::default()
            .with_support(7)
            .with_mode(ProjectionMode::AxisParallel)
            .recording_profiles()
            .with_parallelism(Parallelism::fixed(3));
        assert_eq!(c.support, 7);
        assert_eq!(c.projection_mode, ProjectionMode::AxisParallel);
        assert!(c.record_profiles);
        assert_eq!(c.parallelism.threads(), 3);
    }

    #[test]
    fn cache_policy_defaults_on_and_can_be_disabled() {
        let c = SearchConfig::default();
        assert!(!c.cache.is_disabled(), "caching is on by default");
        let off = SearchConfig::default().without_cache();
        assert!(off.cache.is_disabled());
        off.validate();
        let tiny = SearchConfig::default().with_cache_policy(CachePolicy::with_uniform_capacity(2));
        assert_eq!(tiny.cache.projection_capacity, 2);
        tiny.validate();
    }

    #[test]
    #[should_panic(expected = "iteration bounds")]
    fn inconsistent_bounds_panic() {
        let c = SearchConfig {
            min_major_iterations: 9,
            max_major_iterations: 2,
            ..SearchConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        SearchConfig::default().with_support(0);
    }

    #[test]
    fn try_validate_reports_typed_errors() {
        assert!(SearchConfig::default().try_validate().is_ok());
        let bad = SearchConfig {
            grid_n: 2,
            ..SearchConfig::default()
        };
        let err = bad.try_validate().expect_err("grid_n too small");
        assert!(err.is_invalid_input());
        assert!(err.to_string().contains("grid_n"));
        let zero_deadline = SearchConfig::default().with_deadline(std::time::Duration::ZERO);
        assert!(zero_deadline.try_validate().is_err());
        let fine = SearchConfig::default().with_deadline(std::time::Duration::from_secs(1));
        assert!(fine.try_validate().is_ok());
        assert!(fine.deadline.is_some());
    }
}
