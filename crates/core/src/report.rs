//! Session reporting: render a completed [`crate::SearchOutcome`] as a
//! human-readable summary or a machine-readable CSV — the audit trail of
//! "what did the user actually do, and what did the system conclude".
//!
//! The paper's core pitch is that the user *understands* the quality of
//! the result because they were in the loop; a persistent session report
//! is the artifact that carries that understanding forward.

use crate::diagnosis::SearchDiagnosis;
use crate::search::SearchOutcome;
use hinn_user::UserResponse;
use std::fmt::Write as _;

/// Render a multi-line human-readable session summary.
pub fn text_report(outcome: &SearchOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "interactive nearest-neighbor session report");
    let _ = writeln!(out, "--------------------------------------------");
    let _ = writeln!(
        out,
        "major iterations: {}   views shown: {}   dismissed: {}",
        outcome.majors_run,
        outcome.transcript.total_views(),
        outcome.transcript.total_dismissed()
    );
    let _ = writeln!(out, "effective support: {}", outcome.effective_support);

    for major in &outcome.transcript.majors {
        let _ = writeln!(
            out,
            "major {} — {} -> {} points after filtering{}",
            major.minors.first().map(|m| m.major + 1).unwrap_or(0),
            major.n_points_before,
            major.n_points_after,
            match major.overlap_with_previous {
                Some(o) => format!(", top-s overlap with previous {:.0}%", o * 100.0),
                None => String::new(),
            }
        );
        for minor in &major.minors {
            let action = match &minor.response {
                UserResponse::Threshold(tau) => {
                    format!("separator τ = {tau:.5} → {} points", minor.n_picked)
                }
                UserResponse::Polygon(lines) => {
                    format!(
                        "polygon ({} lines) → {} points",
                        lines.len(),
                        minor.n_picked
                    )
                }
                UserResponse::Discard => "dismissed".to_string(),
            };
            let _ = writeln!(
                out,
                "  view {:>2}: query at {:>3.0}% of peak; {}",
                minor.minor + 1,
                minor.query_peak_ratio * 100.0,
                action
            );
        }
    }

    match &outcome.diagnosis {
        SearchDiagnosis::Meaningful {
            natural_k,
            gap,
            top_mean,
        } => {
            let _ = writeln!(
                out,
                "verdict: MEANINGFUL — natural neighbor set of {natural_k} points \
                 (cliff {gap:.2}, top mean probability {top_mean:.2})"
            );
        }
        SearchDiagnosis::NotMeaningful { reason, .. } => {
            let _ = writeln!(out, "verdict: NOT MEANINGFUL — {reason}");
        }
    }
    out
}

/// Render the per-view log as CSV
/// (`major,minor,response,tau,n_picked,query_peak_ratio`).
pub fn views_csv(outcome: &SearchOutcome) -> String {
    let mut out = String::from("major,minor,response,tau,n_picked,query_peak_ratio\n");
    for minor in outcome.transcript.iter_minors() {
        let (kind, tau) = match &minor.response {
            UserResponse::Threshold(t) => ("threshold", format!("{t}")),
            UserResponse::Polygon(_) => ("polygon", String::new()),
            UserResponse::Discard => ("discard", String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            minor.major, minor.minor, kind, tau, minor.n_picked, minor.query_peak_ratio
        );
    }
    out
}

/// Render the final ranking as CSV (`rank,index,probability`), top `k`.
pub fn ranking_csv(outcome: &SearchOutcome, k: usize) -> String {
    let mut order: Vec<usize> = (0..outcome.probabilities.len()).collect();
    // Probabilities are non-negative, so `total_cmp` matches the old
    // partial order and stays total on poisoned (NaN) values.
    order.sort_by(|&a, &b| {
        outcome.probabilities[b]
            .total_cmp(&outcome.probabilities[a])
            .then(a.cmp(&b))
    });
    let mut out = String::from("rank,index,probability\n");
    for (rank, &idx) in order.iter().take(k).enumerate() {
        let _ = writeln!(out, "{},{},{}", rank + 1, idx, outcome.probabilities[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InteractiveSearch, SearchConfig};
    use hinn_user::ScriptedUser;

    fn outcome() -> SearchOutcome {
        // Tiny deterministic session: 30 points in 4-D, scripted user that
        // dismisses everything — structure is what we test here.
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                vec![
                    (i % 5) as f64,
                    (i / 5) as f64,
                    (i % 3) as f64,
                    (i % 7) as f64,
                ]
            })
            .collect();
        let mut user = ScriptedUser::new([]);
        let config = SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            ..SearchConfig::default().with_support(5)
        };
        InteractiveSearch::new(config)
            .run_with(
                &hinn_data::DatasetHandle::new(&points).expect("epoch handle"),
                &points[0].clone(),
                &mut user,
                crate::search::RunOptions::default(),
            )
            .expect("report fixture session")
            .into_outcome()
    }

    #[test]
    fn text_report_contains_all_sections() {
        let o = outcome();
        let report = text_report(&o);
        assert!(report.contains("session report"));
        assert!(report.contains("major 1"));
        assert!(report.contains("dismissed"));
        assert!(report.contains("verdict: NOT MEANINGFUL"));
        // 4-D → 2 minor iterations.
        assert!(report.contains("view  1:"));
        assert!(report.contains("view  2:"));
    }

    #[test]
    fn views_csv_has_one_row_per_view() {
        let o = outcome();
        let csv = views_csv(&o);
        let rows: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(
            rows[0],
            "major,minor,response,tau,n_picked,query_peak_ratio"
        );
        assert_eq!(rows.len() - 1, o.transcript.total_views());
        assert!(rows[1].starts_with("0,0,discard"));
    }

    #[test]
    fn ranking_csv_is_sorted_and_capped() {
        let o = outcome();
        let csv = ranking_csv(&o, 10);
        let rows: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(rows.len(), 11);
        let mut prev = f64::INFINITY;
        for row in &rows[1..] {
            let p: f64 = row.split(',').nth(2).unwrap().parse().unwrap();
            assert!(p <= prev);
            prev = p;
        }
    }
}
