//! The interactive search driver (Fig. 2 of the paper).

use crate::cache::{ProjectionCacheCtx, SessionCache};
use crate::config::{BandwidthMode, SearchConfig};
use crate::counts::PreferenceCounts;
use crate::degrade::{DegradationEvent, DegradationKind, DegradationLog};
use crate::diagnosis::SearchDiagnosis;
use crate::error::HinnError;
use crate::meaning::iteration_probabilities;
use crate::projection::{try_find_query_centered_projection_ctx, ProjectionResult};
use crate::transcript::{MajorRecord, MinorPhases, MinorRecord, Transcript};
use hinn_cache::Fingerprint;
use hinn_kde::{ProfileNotes, VisualProfile};
use hinn_linalg::Subspace;
use hinn_metrics::drop::DropConfig;
use hinn_user::{UserModel, UserResponse, ViewContext};
use std::sync::Arc;

/// The packaged interactive nearest-neighbor search system.
#[derive(Clone, Debug)]
pub struct InteractiveSearch {
    config: SearchConfig,
    drop_config: DropConfig,
    cache: Arc<SessionCache>,
}

/// Everything a completed session produced.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Top-`s` original indices ranked by meaningfulness probability
    /// (ties broken by full-space distance to the query).
    pub neighbors: Vec<usize>,
    /// Final meaningfulness probability per original point (the average of
    /// Eq. 8 over the major iterations run).
    pub probabilities: Vec<f64>,
    /// Full session transcript.
    pub transcript: Transcript,
    /// Meaningful-vs-not verdict (§4.1–4.2).
    pub diagnosis: SearchDiagnosis,
    /// How many major iterations ran.
    pub majors_run: usize,
    /// The effective support `max(s, d)` that was used.
    pub effective_support: usize,
}

impl SearchOutcome {
    /// The *natural* neighbor set: the `natural_k` points above the steep
    /// drop, when the session was diagnosed meaningful (§4.1's
    /// thresholding). `None` when the data was diagnosed not meaningful.
    pub fn natural_neighbors(&self) -> Option<Vec<usize>> {
        match self.diagnosis {
            SearchDiagnosis::Meaningful { natural_k, .. } => {
                let mut order: Vec<usize> = (0..self.probabilities.len()).collect();
                // Probabilities are non-negative, so `total_cmp` coincides
                // with the old partial order; unlike the old
                // `partial_cmp().expect()`, a NaN probability (poisoned
                // upstream data) sorts deterministically instead of
                // panicking mid-ranking.
                order.sort_by(|&a, &b| {
                    self.probabilities[b]
                        .total_cmp(&self.probabilities[a])
                        .then(a.cmp(&b))
                });
                order.truncate(natural_k);
                Some(order)
            }
            SearchDiagnosis::NotMeaningful { .. } => None,
        }
    }

    /// Every degradation-ladder rung the session took (empty on a fully
    /// healthy run). Shorthand for `transcript.degradations`.
    pub fn degradations(&self) -> &DegradationLog {
        &self.transcript.degradations
    }
}

impl InteractiveSearch {
    /// Create a search engine with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`SearchConfig::validate`]); [`InteractiveSearch::try_new`] is the
    /// non-panicking form.
    pub fn new(config: SearchConfig) -> Self {
        match Self::try_new(config) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::new`].
    pub fn try_new(config: SearchConfig) -> Result<Self, HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        Ok(Self {
            config,
            drop_config: DropConfig::default(),
            cache,
        })
    }

    /// Override the steep-drop detector configuration.
    pub fn with_drop_config(mut self, drop_config: DropConfig) -> Self {
        self.drop_config = drop_config;
        self
    }

    /// Replace the engine's session cache with a shared one (its policy
    /// supersedes [`SearchConfig::cache`]). [`crate::BatchRunner`] uses
    /// this to amortize artifacts across every session of a batch; tests
    /// use it to pre-warm an engine.
    pub fn with_session_cache(mut self, cache: Arc<SessionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The engine's session cache.
    pub fn session_cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// Run the full interactive session of Fig. 2 against `user`.
    ///
    /// # Panics
    /// Panics if `points` is empty, dimensionalities disagree, or `d < 2`;
    /// [`InteractiveSearch::try_run`] is the non-panicking form.
    pub fn run(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> SearchOutcome {
        match self.try_run(points, query, user) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::run`]: invalid input comes back as
    /// [`HinnError::InvalidInput`] and a configured
    /// [`SearchConfig::deadline`] as [`HinnError::Deadline`], instead of a
    /// panic. On healthy input the outcome is bit-identical to
    /// [`run`](InteractiveSearch::run) (which is a thin wrapper over this
    /// method). Numerical pathologies mid-session do not error: they walk
    /// the degradation ladder and are recorded in
    /// [`Transcript::degradations`].
    pub fn try_run(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> Result<SearchOutcome, HinnError> {
        let _session_span = hinn_obs::span!("search.session");
        let invalid = |message: String| {
            Err(HinnError::InvalidInput {
                phase: "search.validate",
                message,
            })
        };
        if points.is_empty() {
            return invalid("InteractiveSearch: empty data set".into());
        }
        let d = points[0].len();
        if d < 2 {
            return invalid("InteractiveSearch: need at least 2 dimensions".into());
        }
        if query.len() != d {
            return invalid(format!(
                "InteractiveSearch: query dimensionality {} does not match data dimensionality {d}",
                query.len()
            ));
        }
        if !query.iter().all(|v| v.is_finite()) {
            return invalid("InteractiveSearch: query contains non-finite coordinates".into());
        }
        for (i, p) in points.iter().enumerate() {
            if p.len() != d {
                return invalid(format!(
                    "InteractiveSearch: ragged point {i} (length {}, expected {d})",
                    p.len()
                ));
            }
            if !p.iter().all(|v| v.is_finite()) {
                return invalid(format!(
                    "InteractiveSearch: point {i} contains non-finite coordinates"
                ));
            }
        }

        let n = points.len();
        let s_eff = self.config.effective_support(d).min(n);
        let n_minors = (d / 2).max(1);
        let par = self.config.parallelism;
        if hinn_obs::enabled() {
            hinn_obs::gauge("search.points", n as f64);
            hinn_obs::gauge("search.dims", d as f64);
            hinn_obs::gauge("search.threads", par.threads() as f64);
        }
        // The session clock exists only when a deadline is configured: the
        // default path stays clock-free outside instrumentation, which the
        // obs-invariance suite relies on.
        let session_start = self.config.deadline.map(|_| std::time::Instant::now());
        // Content fingerprint for the session caches, skipped entirely
        // when every cache is off so that path stays hash-free.
        let dataset_fp = (!self.cache.is_disabled()).then(|| Fingerprint::of_points(points));

        let mut alive: Vec<usize> = (0..n).collect();
        let mut p_sum = vec![0.0f64; n];
        let mut transcript = Transcript::default();
        let mut majors_run = 0usize;
        let mut prev_top: Option<Vec<usize>> = None;

        for major in 0..self.config.max_major_iterations {
            if alive.len() < 2 {
                break;
            }
            let _major_span = hinn_obs::span!("search.major");
            // Candidate-set size entering this major iteration.
            hinn_obs::observe("search.candidates", alive.len() as f64);
            let alive_points: Vec<Vec<f64>> = alive.iter().map(|&i| points[i].clone()).collect();
            // Every cache key below derives from this fingerprint, so a
            // stale entry is unreachable by construction: shrinking the
            // alive set changes the key instead of invalidating anything.
            let alive_fp = dataset_fp.map(|fp| SessionCache::alive_key(fp, &alive));
            let mut counts = PreferenceCounts::new(n);
            let mut ec = Subspace::full(d);
            let mut major_rec = MajorRecord {
                n_points_before: alive.len(),
                ..MajorRecord::default()
            };

            for minor in 0..n_minors {
                if ec.dim() < 2 {
                    break;
                }
                // Deterministic fault point: a forced in-session panic,
                // for proving that the batch boundary contains it.
                if hinn_fault::point("search.panic") {
                    panic!("forced in-session panic (fault point search.panic)");
                }
                // Cooperative deadline check at the view boundary — the
                // overshoot is at most one view's work. The fault point is
                // consulted first so forced expiry fires deterministically
                // regardless of machine speed.
                if let Some(budget) = self.config.deadline {
                    let elapsed = session_start.map(|t| t.elapsed()).unwrap_or_default();
                    if hinn_fault::point("search.deadline") || elapsed > budget {
                        return Err(HinnError::Deadline {
                            phase: "search.minor",
                            elapsed,
                            budget,
                        });
                    }
                }
                let _minor_span = hinn_obs::span!("search.minor");
                // Phase wall-clocks for the transcript; only read while a
                // recorder is installed so the disabled path stays free of
                // clock calls (and the invariance tests compare fields that
                // exist on both paths).
                let timing = hinn_obs::enabled();
                let t_start = timing.then(std::time::Instant::now);
                // L1: the whole Fig. 3 projection search, memoized with
                // its degradation events (replayed on a hit so warm
                // transcripts match cold ones). Errors are never cached.
                let proj_pair: Arc<(ProjectionResult, Vec<DegradationEvent>)> = match alive_fp {
                    Some(afp) => {
                        let cache_ctx = ProjectionCacheCtx {
                            alive_fp: afp,
                            cache: &self.cache,
                        };
                        let key = SessionCache::projection_key(
                            afp,
                            query,
                            &ec,
                            s_eff,
                            self.config.projection_mode,
                        );
                        self.cache.projection.get_or_try_insert_with(key, || {
                            try_find_query_centered_projection_ctx(
                                par,
                                &alive_points,
                                query,
                                &ec,
                                s_eff,
                                self.config.projection_mode,
                                Some(&cache_ctx),
                            )
                        })?
                    }
                    None => Arc::new(try_find_query_centered_projection_ctx(
                        par,
                        &alive_points,
                        query,
                        &ec,
                        s_eff,
                        self.config.projection_mode,
                        None,
                    )?),
                };
                let proj = &proj_pair.0;
                transcript
                    .degradations
                    .absorb(proj_pair.1.clone(), major, minor);
                let t_proj = timing.then(std::time::Instant::now);
                // L2: projected 2-D coordinates plus the grid KDE. The
                // projection step above is part of the memoized value, so
                // a hit skips both the O(n·d) projection and the O(n·p²)
                // density estimation.
                let build_profile = || {
                    let mut pts2d: Vec<[f64; 2]> = vec![[0.0; 2]; alive_points.len()];
                    hinn_par::fill_chunks(par, &mut pts2d, |start, slice| {
                        for (off, slot) in slice.iter_mut().enumerate() {
                            let c = proj.projection.project(&alive_points[start + off]);
                            *slot = [c[0], c[1]];
                        }
                    });
                    let qc = proj.projection.project(query);
                    match self.config.bandwidth_mode {
                        BandwidthMode::Fixed => VisualProfile::try_build_with(
                            par,
                            pts2d,
                            [qc[0], qc[1]],
                            self.config.grid_n,
                            self.config.bandwidth_scale,
                        ),
                        BandwidthMode::Adaptive { alpha } => {
                            VisualProfile::try_build_adaptive_with(
                                par,
                                pts2d,
                                [qc[0], qc[1]],
                                self.config.grid_n,
                                self.config.bandwidth_scale,
                                alpha,
                            )
                        }
                    }
                };
                let built: Result<Arc<(VisualProfile, ProfileNotes)>, _> = match alive_fp {
                    Some(afp) => {
                        let key = SessionCache::profile_key(
                            afp,
                            query,
                            &proj.projection,
                            self.config.grid_n,
                            self.config.bandwidth_scale,
                            self.config.bandwidth_mode,
                        );
                        self.cache
                            .profile
                            .get_or_try_insert_with(key, build_profile)
                    }
                    None => build_profile().map(Arc::new),
                };
                let profile_pair = match built {
                    Ok(p) => p,
                    Err(e) => {
                        // An unusable view is skipped, not fatal: record
                        // the skip and continue the session in the
                        // remaining subspace (ladder rung:
                        // SkippedMinorView).
                        transcript.degradations.push(DegradationEvent {
                            major: Some(major),
                            minor: Some(minor),
                            kind: DegradationKind::SkippedMinorView,
                            detail: format!("visual profile unavailable ({e}); view skipped"),
                        });
                        ec = proj.remainder.clone();
                        continue;
                    }
                };
                let profile = &profile_pair.0;
                if profile_pair.1.bandwidth_floored {
                    transcript.degradations.push(DegradationEvent {
                        major: Some(major),
                        minor: Some(minor),
                        kind: DegradationKind::BandwidthFloored,
                        detail: "zero-spread projection; KDE bandwidth floored".into(),
                    });
                }
                let t_profile = timing.then(std::time::Instant::now);
                let ctx = ViewContext {
                    major,
                    minor,
                    original_ids: alive.clone(),
                    total_n: n,
                };
                let response = user.respond(profile, &ctx);
                let picked_rows: Vec<usize> = match &response {
                    UserResponse::Threshold(tau) => profile.select(*tau, self.config.corner_rule),
                    UserResponse::Polygon(lines) => profile.select_polygon(lines),
                    UserResponse::Discard => Vec::new(),
                };
                let w = self.config.weight(minor);
                if picked_rows.is_empty() {
                    counts.record_discard(w);
                } else {
                    let picked_ids: Vec<usize> = picked_rows.iter().map(|&r| alive[r]).collect();
                    counts.record_view(&picked_ids, w);
                }
                let query_peak_ratio = if profile.max_density() > 0.0 {
                    profile.query_density() / profile.max_density()
                } else {
                    0.0
                };
                let phases = match (t_start, t_proj, t_profile) {
                    (Some(a), Some(b), Some(c)) => Some(MinorPhases {
                        projection_ns: (b - a).as_nanos() as u64,
                        profile_ns: (c - b).as_nanos() as u64,
                        select_ns: c.elapsed().as_nanos() as u64,
                    }),
                    _ => None,
                };
                if let Some(p) = &phases {
                    hinn_obs::observe("search.picked", picked_rows.len() as f64);
                    hinn_obs::observe("search.minor_ms", p.total_ns() as f64 / 1e6);
                }
                major_rec.minors.push(MinorRecord {
                    major,
                    minor,
                    projection: proj.projection.clone(),
                    variance_ratios: proj.variance_ratios.clone(),
                    response,
                    n_picked: picked_rows.len(),
                    query_peak_ratio,
                    profile: if self.config.record_profiles {
                        Some(profile_pair.0.clone())
                    } else {
                        None
                    },
                    phases,
                });
                ec = proj.remainder.clone();
            }

            // Fig. 8: convert counts to per-iteration probabilities.
            let probs = iteration_probabilities(&counts, &alive);
            for (k, &id) in alive.iter().enumerate() {
                p_sum[id] += probs[k];
            }
            majors_run += 1;

            // Termination check on the stability of the top-s set.
            let current_probs: Vec<f64> = p_sum.iter().map(|p| p / majors_run as f64).collect();
            let top = rank_neighbors(&current_probs, points, query, s_eff);
            let overlap = prev_top.as_ref().map(|prev| {
                let prev_set: std::collections::HashSet<usize> = prev.iter().copied().collect();
                top.iter().filter(|i| prev_set.contains(i)).count() as f64 / s_eff.max(1) as f64
            });
            major_rec.overlap_with_previous = overlap;

            // Fig. 2: drop points never picked this iteration.
            let survivors = counts.survivors(&alive);
            if survivors.len() >= 2 {
                alive = survivors;
            }
            major_rec.n_points_after = alive.len();
            transcript.majors.push(major_rec);
            prev_top = Some(top);

            let stable = overlap
                .map(|o| o >= self.config.overlap_threshold)
                .unwrap_or(false);
            if majors_run >= self.config.min_major_iterations && stable {
                break;
            }
        }

        let probabilities: Vec<f64> = if majors_run > 0 {
            p_sum.iter().map(|p| p / majors_run as f64).collect()
        } else {
            p_sum
        };
        let neighbors = rank_neighbors(&probabilities, points, query, s_eff);
        let diagnosis = SearchDiagnosis::derive(&probabilities, &transcript, &self.drop_config);
        Ok(SearchOutcome {
            neighbors,
            probabilities,
            transcript,
            diagnosis,
            majors_run,
            effective_support: s_eff,
        })
    }

    /// [`InteractiveSearch::run`] with a scoped [`hinn_obs::SessionRecorder`]
    /// installed for the session's duration; returns the outcome together
    /// with the merged telemetry report. The outcome is bit-identical to a
    /// plain [`run`](InteractiveSearch::run) — instrumentation only reads
    /// clocks and bumps counters (`tests/obs_invariance.rs` proves it).
    pub fn run_traced(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> (SearchOutcome, hinn_obs::TelemetryReport) {
        match self.try_run_traced(points, query, user) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::run_traced`]. The telemetry report of
    /// a failed session is dropped with the session.
    pub fn try_run_traced(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> Result<(SearchOutcome, hinn_obs::TelemetryReport), HinnError> {
        let recorder = std::sync::Arc::new(hinn_obs::SessionRecorder::new());
        let outcome = {
            let _guard = hinn_obs::install(recorder.clone());
            self.try_run(points, query, user)?
        };
        Ok((outcome, recorder.report()))
    }
}

/// Rank original indices by probability (descending), breaking ties by
/// full-space Euclidean distance to the query (ascending), then index.
/// Probabilities and squared distances are non-negative, so `total_cmp`
/// coincides with the old partial order while staying total on poisoned
/// (NaN) values.
fn rank_neighbors(
    probabilities: &[f64],
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..probabilities.len()).collect();
    order.sort_by(|&a, &b| {
        probabilities[b]
            .total_cmp(&probabilities[a])
            .then_with(|| {
                let da = hinn_linalg::vector::dist_sq(&points[a], query);
                let db = hinn_linalg::vector::dist_sq(&points[b], query);
                da.total_cmp(&db)
            })
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProjectionMode;
    use hinn_user::{HeuristicUser, ScriptedUser};

    /// 8-D data: a 30-point cluster tight in dims (0,1,2) around 50, with
    /// the query at its center; 170 uniform background points.
    fn planted() -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>) {
        let mut state = 0xDA3E39CB94B95BDBu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for _ in 0..30 {
            let mut p: Vec<f64> = (0..8).map(|_| unif() * 100.0).collect();
            for coord in p.iter_mut().take(3) {
                *coord = 50.0 + (unif() - 0.5) * 3.0;
            }
            pts.push(p);
        }
        for _ in 0..170 {
            pts.push((0..8).map(|_| unif() * 100.0).collect());
        }
        (pts, vec![50.0; 8], (0..30).collect())
    }

    #[test]
    fn recovers_planted_cluster_with_heuristic_user() {
        let (pts, q, members) = planted();
        let config = SearchConfig::default()
            .with_support(30)
            .with_mode(ProjectionMode::AxisParallel);
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(config).run(&pts, &q, &mut user);
        assert!(outcome.majors_run >= 2);
        let hits = outcome
            .neighbors
            .iter()
            .filter(|i| members.contains(i))
            .count();
        assert!(
            hits as f64 >= 0.7 * outcome.neighbors.len() as f64,
            "interactive search should recover the cluster: {hits}/{}",
            outcome.neighbors.len()
        );
        // Cluster members should carry higher probability than background.
        let mean_member: f64 = members
            .iter()
            .map(|&i| outcome.probabilities[i])
            .sum::<f64>()
            / members.len() as f64;
        let mean_bg: f64 = (30..200).map(|i| outcome.probabilities[i]).sum::<f64>() / 170.0;
        assert!(
            mean_member > mean_bg + 0.3,
            "member prob {mean_member} vs background {mean_bg}"
        );
        // A healthy session takes no ladder rung.
        assert!(outcome.degradations().is_empty());
    }

    #[test]
    fn all_discard_user_yields_not_meaningful() {
        let (pts, q, _) = planted();
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            ..SearchConfig::default()
        };
        let mut user = ScriptedUser::new([]); // discards everything
        let outcome = InteractiveSearch::new(config).run(&pts, &q, &mut user);
        assert!(!outcome.diagnosis.is_meaningful());
        assert!(outcome.probabilities.iter().all(|&p| p == 0.0));
        assert!(outcome.natural_neighbors().is_none());
    }

    #[test]
    fn probabilities_are_valid_and_aligned() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(SearchConfig::default().with_support(20))
            .run(&pts, &q, &mut user);
        assert_eq!(outcome.probabilities.len(), pts.len());
        for p in &outcome.probabilities {
            assert!((0.0..=1.0).contains(p), "probability out of range: {p}");
        }
        assert_eq!(outcome.neighbors.len(), outcome.effective_support);
    }

    #[test]
    fn transcript_records_every_view() {
        let (pts, q, _) = planted();
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 2,
            record_profiles: true,
            ..SearchConfig::default()
        };
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(config).run(&pts, &q, &mut user);
        // 8 dims → 4 minors per major.
        assert_eq!(outcome.transcript.majors[0].minors.len(), 4);
        for rec in outcome.transcript.iter_minors() {
            assert!(rec.profile.is_some(), "profiles must be recorded");
            assert_eq!(rec.projection.dim(), 2);
        }
    }

    #[test]
    fn effective_support_clamps_to_dimensionality() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(SearchConfig::default().with_support(3))
            .run(&pts, &q, &mut user);
        assert_eq!(outcome.effective_support, 8, "support must be ≥ d");
    }

    #[test]
    fn natural_neighbors_sorted_by_probability() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(SearchConfig::default().with_support(30))
            .run(&pts, &q, &mut user);
        if let Some(natural) = outcome.natural_neighbors() {
            for w in natural.windows(2) {
                assert!(outcome.probabilities[w[0]] >= outcome.probabilities[w[1]]);
            }
        }
    }

    #[test]
    fn natural_neighbors_tolerates_poisoned_probabilities() {
        // Regression: a NaN probability used to panic the ranking via
        // `partial_cmp().expect()`. With `total_cmp` the poisoned entry
        // sorts deterministically (NaN first, as the largest value) and
        // the healthy ordering is otherwise preserved.
        let outcome = SearchOutcome {
            neighbors: vec![],
            probabilities: vec![0.2, f64::NAN, 0.9, 0.4],
            transcript: Transcript::default(),
            diagnosis: SearchDiagnosis::Meaningful {
                natural_k: 4,
                gap: 0.5,
                top_mean: 0.9,
            },
            majors_run: 1,
            effective_support: 4,
        };
        let order = outcome.natural_neighbors().expect("meaningful");
        assert_eq!(order, vec![1, 2, 3, 0], "NaN first, then descending");
    }

    #[test]
    fn try_run_reports_invalid_input_instead_of_panicking() {
        let mut user = ScriptedUser::new([]);
        let engine = InteractiveSearch::new(SearchConfig::default());
        let err = engine
            .try_run(&[], &[0.0, 0.0], &mut user)
            .expect_err("empty data");
        assert!(err.is_invalid_input());
        assert!(err.to_string().contains("empty data set"));

        let err = engine
            .try_run(
                &[vec![0.0, 0.0], vec![1.0, f64::NAN]],
                &[0.0, 0.0],
                &mut user,
            )
            .expect_err("non-finite point");
        assert!(err.to_string().contains("point 1"));

        let err = engine
            .try_run(
                &[vec![0.0, 0.0], vec![1.0, 1.0, 2.0]],
                &[0.0, 0.0],
                &mut user,
            )
            .expect_err("ragged point");
        assert!(err.to_string().contains("ragged point 1"));

        assert!(InteractiveSearch::try_new(SearchConfig {
            grid_n: 1,
            ..SearchConfig::default()
        })
        .is_err());
    }

    #[test]
    fn try_run_matches_run_bit_for_bit() {
        let (pts, q, _) = planted();
        let config = SearchConfig::default().with_support(20);
        let outcome =
            InteractiveSearch::new(config.clone()).run(&pts, &q, &mut HeuristicUser::default());
        let tried = InteractiveSearch::new(config)
            .try_run(&pts, &q, &mut HeuristicUser::default())
            .expect("healthy data");
        assert_eq!(outcome.neighbors, tried.neighbors);
        for (a, b) in outcome.probabilities.iter().zip(&tried.probabilities) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(tried.degradations().is_empty());
    }

    #[test]
    fn forced_deadline_surfaces_as_typed_error() {
        let (pts, q, _) = planted();
        // A generous budget that cannot expire on its own — only the
        // forced fault point trips the check, deterministically at the
        // first minor boundary.
        let config = SearchConfig::default()
            .with_support(20)
            .with_deadline(std::time::Duration::from_secs(3600));
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let err = {
            let _g = hinn_fault::install_local(plan.clone());
            InteractiveSearch::new(config)
                .try_run(&pts, &q, &mut HeuristicUser::default())
                .expect_err("forced deadline")
        };
        assert_eq!(plan.fired("search.deadline"), 1);
        assert!(matches!(err, HinnError::Deadline { .. }));
        assert!(err.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn without_deadline_the_fault_point_is_never_consulted() {
        let (pts, q, _) = planted();
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let outcome = {
            let _g = hinn_fault::install_local(plan.clone());
            InteractiveSearch::new(SearchConfig::default().with_support(20))
                .try_run(&pts, &q, &mut HeuristicUser::default())
                .expect("no deadline configured")
        };
        assert_eq!(plan.hits("search.deadline"), 0, "clock-free path");
        assert!(outcome.majors_run >= 1);
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn query_dim_mismatch_panics() {
        let mut user = ScriptedUser::new([]);
        InteractiveSearch::new(SearchConfig::default()).run(
            &[vec![0.0, 0.0]],
            &[0.0, 0.0, 0.0],
            &mut user,
        );
    }

    #[test]
    #[should_panic(expected = "empty data set")]
    fn empty_data_panics() {
        let mut user = ScriptedUser::new([]);
        InteractiveSearch::new(SearchConfig::default()).run(&[], &[0.0], &mut user);
    }
}
