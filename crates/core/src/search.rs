//! The interactive search driver (Fig. 2 of the paper).
//!
//! Since the sans-io refactor the iteration loop itself lives in
//! [`crate::engine::SessionEngine`]; this module keeps the packaged
//! run-to-completion API: [`InteractiveSearch::run_with`] drives the
//! engine against a [`UserModel`] callback, and the four legacy entry
//! points (`run`, `try_run`, `run_traced`, `try_run_traced`) are thin
//! deprecated wrappers over it.

use crate::cache::SessionCache;
use crate::config::SearchConfig;
use crate::degrade::DegradationLog;
use crate::diagnosis::SearchDiagnosis;
use crate::engine::{OwnedSessionEngine, PointStore, SessionEngine, Step};
use crate::error::HinnError;
use crate::transcript::Transcript;
use hinn_data::{DatasetHandle, EpochSnapshot};
use hinn_metrics::drop::DropConfig;
use hinn_user::{UserModel, UserResponse};
use std::sync::Arc;
use std::time::Duration;

/// The packaged interactive nearest-neighbor search system.
#[derive(Clone, Debug)]
pub struct InteractiveSearch {
    config: SearchConfig,
    drop_config: DropConfig,
    cache: Arc<SessionCache>,
}

/// Everything a completed session produced.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Top-`s` original indices ranked by meaningfulness probability
    /// (ties broken by full-space distance to the query).
    pub neighbors: Vec<usize>,
    /// Final meaningfulness probability per original point (the average of
    /// Eq. 8 over the major iterations run).
    pub probabilities: Vec<f64>,
    /// Full session transcript.
    pub transcript: Transcript,
    /// Meaningful-vs-not verdict (§4.1–4.2).
    pub diagnosis: SearchDiagnosis,
    /// How many major iterations ran.
    pub majors_run: usize,
    /// The effective support `max(s, d)` that was used.
    pub effective_support: usize,
}

impl SearchOutcome {
    /// The *natural* neighbor set: the `natural_k` points above the steep
    /// drop, when the session was diagnosed meaningful (§4.1's
    /// thresholding). `None` when the data was diagnosed not meaningful.
    pub fn natural_neighbors(&self) -> Option<Vec<usize>> {
        match self.diagnosis {
            SearchDiagnosis::Meaningful { natural_k, .. } => {
                let mut order: Vec<usize> = (0..self.probabilities.len()).collect();
                // Probabilities are non-negative, so `total_cmp` coincides
                // with the old partial order; unlike the old
                // `partial_cmp().expect()`, a NaN probability (poisoned
                // upstream data) sorts deterministically instead of
                // panicking mid-ranking.
                order.sort_by(|&a, &b| {
                    self.probabilities[b]
                        .total_cmp(&self.probabilities[a])
                        .then(a.cmp(&b))
                });
                order.truncate(natural_k);
                Some(order)
            }
            SearchDiagnosis::NotMeaningful { .. } => None,
        }
    }

    /// Every degradation-ladder rung the session took (empty on a fully
    /// healthy run). Shorthand for `transcript.degradations`.
    pub fn degradations(&self) -> &DegradationLog {
        &self.transcript.degradations
    }
}

/// Options for one [`InteractiveSearch::run_with`] session — the unified
/// replacement for the old `run`/`try_run`/`run_traced`/`try_run_traced`
/// quartet.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Compute budget for the session; overrides
    /// [`SearchConfig::deadline`] when set. Expiry surfaces as
    /// [`HinnError::Deadline`].
    pub deadline: Option<Duration>,
    /// Install a scoped [`hinn_obs::SessionRecorder`] for the session's
    /// duration and return its merged report in
    /// [`RunOutput::telemetry`]. The outcome is bit-identical either way
    /// (`tests/obs_invariance.rs` proves it).
    pub trace: bool,
    /// Collect the user's responses in [`RunOutput::responses`], in view
    /// order — the session log that `hinn::user::session_to_string`
    /// serializes.
    pub record_responses: bool,
}

impl RunOptions {
    /// Options with tracing enabled (the old `run_traced` shape).
    pub fn traced() -> Self {
        Self {
            trace: true,
            ..Self::default()
        }
    }

    /// Enable telemetry tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Set the session's compute budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Collect the user's responses.
    pub fn with_recorded_responses(mut self) -> Self {
        self.record_responses = true;
        self
    }
}

/// What one [`InteractiveSearch::run_with`] session returned.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The session's outcome.
    pub outcome: SearchOutcome,
    /// Merged telemetry report, present iff [`RunOptions::trace`] was set.
    pub telemetry: Option<hinn_obs::TelemetryReport>,
    /// The user's responses in view order, present iff
    /// [`RunOptions::record_responses`] was set.
    pub responses: Option<Vec<UserResponse>>,
}

impl RunOutput {
    /// Discard the extras and keep the outcome.
    pub fn into_outcome(self) -> SearchOutcome {
        self.outcome
    }
}

impl InteractiveSearch {
    /// Create a search engine with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`SearchConfig::validate`]); [`InteractiveSearch::try_new`] is the
    /// non-panicking form.
    pub fn new(config: SearchConfig) -> Self {
        match Self::try_new(config) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::new`].
    pub fn try_new(config: SearchConfig) -> Result<Self, HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        Ok(Self {
            config,
            drop_config: DropConfig::default(),
            cache,
        })
    }

    /// Override the steep-drop detector configuration.
    pub fn with_drop_config(mut self, drop_config: DropConfig) -> Self {
        self.drop_config = drop_config;
        self
    }

    /// Replace the engine's session cache with a shared one (its policy
    /// supersedes [`SearchConfig::cache`]). [`crate::BatchRunner`] uses
    /// this to amortize artifacts across every session of a batch; tests
    /// use it to pre-warm an engine.
    pub fn with_session_cache(mut self, cache: Arc<SessionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The engine's session cache.
    pub fn session_cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// Run the full interactive session of Fig. 2 against `user` — the
    /// single entry point the legacy `run*` quartet collapsed into.
    ///
    /// Internally this is a driver loop over
    /// [`SessionEngine`](crate::SessionEngine): start, show each
    /// [`Step::NeedResponse`] view to the callback, submit, repeat until
    /// [`Step::Done`]. The loop adds nothing of its own, so the outcome is
    /// bit-identical to the engine driven by hand (or suspended and
    /// resumed along the way).
    ///
    /// # Errors
    /// Invalid input comes back as [`HinnError::InvalidInput`] and an
    /// expired deadline as [`HinnError::Deadline`]. Numerical pathologies
    /// mid-session do not error: they walk the degradation ladder and are
    /// recorded in [`Transcript::degradations`].
    pub fn run_with(
        &self,
        data: &DatasetHandle,
        query: &[f64],
        user: &mut dyn UserModel,
        options: RunOptions,
    ) -> Result<RunOutput, HinnError> {
        self.run_at(data.snapshot(), query, user, options)
    }

    /// [`run_with`](Self::run_with) against an explicit epoch snapshot —
    /// the form that lets a caller keep running sessions against a pinned
    /// epoch while the handle streams on.
    pub fn run_at(
        &self,
        snap: Arc<EpochSnapshot>,
        query: &[f64],
        user: &mut dyn UserModel,
        options: RunOptions,
    ) -> Result<RunOutput, HinnError> {
        self.run_inner(PointStore::epoch(snap), query, user, options)
    }

    /// [`run_with`](Self::run_with) over a borrowed slice — the pre-epoch
    /// shim. Each call behaves like a one-epoch [`DatasetHandle`] minus
    /// the epoch pin (no chained fingerprint, no typed epoch refusals).
    #[deprecated(
        since = "0.1.0",
        note = "use run_with with a DatasetHandle (or run_at with an EpochSnapshot)"
    )]
    pub fn run_with_slice(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
        options: RunOptions,
    ) -> Result<RunOutput, HinnError> {
        self.run_inner(PointStore::Borrowed(points), query, user, options)
    }

    fn run_inner(
        &self,
        store: PointStore<'_>,
        query: &[f64],
        user: &mut dyn UserModel,
        options: RunOptions,
    ) -> Result<RunOutput, HinnError> {
        let mut config = self.config.clone();
        if options.deadline.is_some() {
            config.deadline = options.deadline;
        }
        // Traced runs use flight-recorder mode: per-occurrence timed span
        // events ride along with the aggregates, so the report can be
        // exported straight to Chrome/Perfetto (`HINN_OBS_TRACE`).
        let recorder = options
            .trace
            .then(|| Arc::new(hinn_obs::SessionRecorder::with_trace()));
        let mut responses = options.record_responses.then(Vec::new);
        let outcome = {
            let _guard = recorder.clone().map(|r| hinn_obs::install(r));
            let (mut engine, mut step) = SessionEngine::start_inner(
                config,
                self.drop_config,
                self.cache.clone(),
                store,
                query,
            )?;
            loop {
                match step {
                    Step::Done(outcome) => break *outcome,
                    Step::NeedResponse(req) => {
                        let response = user.respond(req.profile(), req.context());
                        if let Some(log) = responses.as_mut() {
                            log.push(response.clone());
                        }
                        step = engine.submit(response)?;
                    }
                }
            }
        };
        let telemetry = recorder.map(|r| r.report());
        if let Some(report) = &telemetry {
            // Environment-driven export (`HINN_OBS_EXPORT` telemetry JSON,
            // `HINN_OBS_TRACE` Chrome trace). Write failures are non-fatal
            // by contract: the search result is never sacrificed to an
            // unwritable path.
            hinn_obs::export_env(report);
        }
        Ok(RunOutput {
            outcome,
            telemetry,
            responses,
        })
    }

    /// Start a suspendable session over `data`'s current epoch, sharing
    /// this engine's cache and drop configuration — the
    /// inverted-control-flow form of [`run_with`](Self::run_with) (see
    /// [`SessionEngine`]).
    pub fn start_session(
        &self,
        data: &DatasetHandle,
        query: &[f64],
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        self.start_session_at(data.snapshot(), query)
    }

    /// [`start_session`](Self::start_session) against an explicit epoch
    /// snapshot.
    pub fn start_session_at(
        &self,
        snap: Arc<EpochSnapshot>,
        query: &[f64],
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        SessionEngine::start_inner(
            self.config.clone(),
            self.drop_config,
            self.cache.clone(),
            PointStore::epoch(snap),
            query,
        )
    }

    /// Start a suspendable session over a borrowed slice — the pre-epoch
    /// shim matching [`run_with_slice`](Self::run_with_slice).
    #[deprecated(
        since = "0.1.0",
        note = "use start_session with a DatasetHandle (or start_session_at with an EpochSnapshot)"
    )]
    pub fn start_session_slice<'a>(
        &self,
        points: &'a [Vec<f64>],
        query: &[f64],
    ) -> Result<(SessionEngine<'a>, Step), HinnError> {
        SessionEngine::start_inner(
            self.config.clone(),
            self.drop_config,
            self.cache.clone(),
            PointStore::Borrowed(points),
            query,
        )
    }

    /// Run the full interactive session of Fig. 2 against `user`.
    ///
    /// # Panics
    /// Panics if `points` is empty, dimensionalities disagree, or `d < 2`;
    /// [`InteractiveSearch::try_run`] is the non-panicking form.
    #[deprecated(note = "use `run_with(points, query, user, RunOptions::default())`")]
    pub fn run(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> SearchOutcome {
        #[allow(deprecated)]
        match self.run_with_slice(points, query, user, RunOptions::default()) {
            Ok(out) => out.outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::run`]: invalid input comes back as
    /// [`HinnError::InvalidInput`] and a configured
    /// [`SearchConfig::deadline`] as [`HinnError::Deadline`], instead of a
    /// panic.
    #[deprecated(note = "use `run_with(points, query, user, RunOptions::default())`")]
    pub fn try_run(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> Result<SearchOutcome, HinnError> {
        #[allow(deprecated)]
        self.run_with_slice(points, query, user, RunOptions::default())
            .map(RunOutput::into_outcome)
    }

    /// [`InteractiveSearch::run`] with a scoped [`hinn_obs::SessionRecorder`]
    /// installed for the session's duration; returns the outcome together
    /// with the merged telemetry report.
    ///
    /// # Panics
    /// Panics on invalid input, like [`run`](InteractiveSearch::run).
    #[deprecated(note = "use `run_with(points, query, user, RunOptions::traced())`")]
    pub fn run_traced(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> (SearchOutcome, hinn_obs::TelemetryReport) {
        #[allow(deprecated)]
        match self.run_with_slice(points, query, user, RunOptions::traced()) {
            Ok(RunOutput {
                outcome,
                telemetry: Some(report),
                ..
            }) => (outcome, report),
            Ok(_) => unreachable!("traced run always yields telemetry"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InteractiveSearch::run_traced`]. The telemetry report of
    /// a failed session is dropped with the session.
    #[deprecated(note = "use `run_with(points, query, user, RunOptions::traced())`")]
    pub fn try_run_traced(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        user: &mut dyn UserModel,
    ) -> Result<(SearchOutcome, hinn_obs::TelemetryReport), HinnError> {
        #[allow(deprecated)]
        let RunOutput {
            outcome, telemetry, ..
        } = self.run_with_slice(points, query, user, RunOptions::traced())?;
        match telemetry {
            Some(report) => Ok((outcome, report)),
            None => unreachable!("traced run always yields telemetry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProjectionMode;
    use hinn_user::{HeuristicUser, ScriptedUser};

    fn handle(pts: &[Vec<f64>]) -> DatasetHandle {
        DatasetHandle::new(pts).expect("epoch handle")
    }

    fn run_default(
        engine: &InteractiveSearch,
        pts: &[Vec<f64>],
        q: &[f64],
        user: &mut dyn hinn_user::UserModel,
    ) -> SearchOutcome {
        engine
            .run_with(&handle(pts), q, user, RunOptions::default())
            .expect("healthy input")
            .outcome
    }

    /// 8-D data: a 30-point cluster tight in dims (0,1,2) around 50, with
    /// the query at its center; 170 uniform background points.
    fn planted() -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>) {
        let mut state = 0xDA3E39CB94B95BDBu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for _ in 0..30 {
            let mut p: Vec<f64> = (0..8).map(|_| unif() * 100.0).collect();
            for coord in p.iter_mut().take(3) {
                *coord = 50.0 + (unif() - 0.5) * 3.0;
            }
            pts.push(p);
        }
        for _ in 0..170 {
            pts.push((0..8).map(|_| unif() * 100.0).collect());
        }
        (pts, vec![50.0; 8], (0..30).collect())
    }

    #[test]
    fn recovers_planted_cluster_with_heuristic_user() {
        let (pts, q, members) = planted();
        let config = SearchConfig::default()
            .with_support(30)
            .with_mode(ProjectionMode::AxisParallel);
        let mut user = HeuristicUser::default();
        let outcome = run_default(&InteractiveSearch::new(config), &pts, &q, &mut user);
        assert!(outcome.majors_run >= 2);
        let hits = outcome
            .neighbors
            .iter()
            .filter(|i| members.contains(i))
            .count();
        assert!(
            hits as f64 >= 0.7 * outcome.neighbors.len() as f64,
            "interactive search should recover the cluster: {hits}/{}",
            outcome.neighbors.len()
        );
        // Cluster members should carry higher probability than background.
        let mean_member: f64 = members
            .iter()
            .map(|&i| outcome.probabilities[i])
            .sum::<f64>()
            / members.len() as f64;
        let mean_bg: f64 = (30..200).map(|i| outcome.probabilities[i]).sum::<f64>() / 170.0;
        assert!(
            mean_member > mean_bg + 0.3,
            "member prob {mean_member} vs background {mean_bg}"
        );
        // A healthy session takes no ladder rung.
        assert!(outcome.degradations().is_empty());
    }

    #[test]
    fn all_discard_user_yields_not_meaningful() {
        let (pts, q, _) = planted();
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            ..SearchConfig::default()
        };
        let mut user = ScriptedUser::new([]); // discards everything
        let outcome = run_default(&InteractiveSearch::new(config), &pts, &q, &mut user);
        assert!(!outcome.diagnosis.is_meaningful());
        assert!(outcome.probabilities.iter().all(|&p| p == 0.0));
        assert!(outcome.natural_neighbors().is_none());
    }

    #[test]
    fn probabilities_are_valid_and_aligned() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = run_default(
            &InteractiveSearch::new(SearchConfig::default().with_support(20)),
            &pts,
            &q,
            &mut user,
        );
        assert_eq!(outcome.probabilities.len(), pts.len());
        for p in &outcome.probabilities {
            assert!((0.0..=1.0).contains(p), "probability out of range: {p}");
        }
        assert_eq!(outcome.neighbors.len(), outcome.effective_support);
    }

    #[test]
    fn transcript_records_every_view() {
        let (pts, q, _) = planted();
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 2,
            record_profiles: true,
            ..SearchConfig::default()
        };
        let mut user = HeuristicUser::default();
        let outcome = run_default(&InteractiveSearch::new(config), &pts, &q, &mut user);
        // 8 dims → 4 minors per major.
        assert_eq!(outcome.transcript.majors[0].minors.len(), 4);
        for rec in outcome.transcript.iter_minors() {
            assert!(rec.profile.is_some(), "profiles must be recorded");
            assert_eq!(rec.projection.dim(), 2);
        }
    }

    #[test]
    fn effective_support_clamps_to_dimensionality() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = run_default(
            &InteractiveSearch::new(SearchConfig::default().with_support(3)),
            &pts,
            &q,
            &mut user,
        );
        assert_eq!(outcome.effective_support, 8, "support must be ≥ d");
    }

    #[test]
    fn natural_neighbors_sorted_by_probability() {
        let (pts, q, _) = planted();
        let mut user = HeuristicUser::default();
        let outcome = run_default(
            &InteractiveSearch::new(SearchConfig::default().with_support(30)),
            &pts,
            &q,
            &mut user,
        );
        if let Some(natural) = outcome.natural_neighbors() {
            for w in natural.windows(2) {
                assert!(outcome.probabilities[w[0]] >= outcome.probabilities[w[1]]);
            }
        }
    }

    #[test]
    fn natural_neighbors_tolerates_poisoned_probabilities() {
        // Regression: a NaN probability used to panic the ranking via
        // `partial_cmp().expect()`. With `total_cmp` the poisoned entry
        // sorts deterministically (NaN first, as the largest value) and
        // the healthy ordering is otherwise preserved.
        let outcome = SearchOutcome {
            neighbors: vec![],
            probabilities: vec![0.2, f64::NAN, 0.9, 0.4],
            transcript: Transcript::default(),
            diagnosis: SearchDiagnosis::Meaningful {
                natural_k: 4,
                gap: 0.5,
                top_mean: 0.9,
            },
            majors_run: 1,
            effective_support: 4,
        };
        let order = outcome.natural_neighbors().expect("meaningful");
        assert_eq!(order, vec![1, 2, 3, 0], "NaN first, then descending");
    }

    #[test]
    #[allow(deprecated)]
    fn run_with_reports_invalid_input_instead_of_panicking() {
        let mut user = ScriptedUser::new([]);
        let engine = InteractiveSearch::new(SearchConfig::default());
        // The epoch path: an empty handle is still an engine-side error.
        let empty = DatasetHandle::empty(2).expect("empty handle");
        let err = engine
            .run_with(&empty, &[0.0, 0.0], &mut user, RunOptions::default())
            .expect_err("empty data");
        assert!(err.is_invalid_input());
        assert!(err.to_string().contains("empty data set"));

        // Malformed rows never reach an epoch engine (the handle refuses
        // them at append), so the slice shim keeps the legacy checks.
        let err = engine
            .run_with_slice(&[], &[0.0, 0.0], &mut user, RunOptions::default())
            .expect_err("empty data");
        assert!(err.to_string().contains("empty data set"));

        let err = engine
            .run_with_slice(
                &[vec![0.0, 0.0], vec![1.0, f64::NAN]],
                &[0.0, 0.0],
                &mut user,
                RunOptions::default(),
            )
            .expect_err("non-finite point");
        assert!(err.to_string().contains("point 1"));

        let err = engine
            .run_with_slice(
                &[vec![0.0, 0.0], vec![1.0, 1.0, 2.0]],
                &[0.0, 0.0],
                &mut user,
                RunOptions::default(),
            )
            .expect_err("ragged point");
        assert!(err.to_string().contains("ragged point 1"));

        assert!(InteractiveSearch::try_new(SearchConfig {
            grid_n: 1,
            ..SearchConfig::default()
        })
        .is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_match_run_with_bit_for_bit() {
        // The four deprecated entry points are documented as thin wrappers;
        // hold them to it.
        let (pts, q, _) = planted();
        let config = SearchConfig::default().with_support(20);
        let outcome =
            InteractiveSearch::new(config.clone()).run(&pts, &q, &mut HeuristicUser::default());
        let tried = InteractiveSearch::new(config.clone())
            .try_run(&pts, &q, &mut HeuristicUser::default())
            .expect("healthy data");
        let unified = InteractiveSearch::new(config)
            .run_with(
                &handle(&pts),
                &q,
                &mut HeuristicUser::default(),
                RunOptions::default(),
            )
            .expect("healthy data")
            .outcome;
        assert_eq!(outcome.neighbors, unified.neighbors);
        assert_eq!(tried.neighbors, unified.neighbors);
        for ((a, b), c) in outcome
            .probabilities
            .iter()
            .zip(&tried.probabilities)
            .zip(&unified.probabilities)
        {
            assert_eq!(a.to_bits(), c.to_bits());
            assert_eq!(b.to_bits(), c.to_bits());
        }
        assert!(unified.degradations().is_empty());
    }

    #[test]
    fn run_options_surface_telemetry_and_responses() {
        let (pts, q, _) = planted();
        let config = SearchConfig::default().with_support(20);
        let out = InteractiveSearch::new(config)
            .run_with(
                &handle(&pts),
                &q,
                &mut HeuristicUser::default(),
                RunOptions::traced().with_recorded_responses(),
            )
            .expect("healthy data");
        let report = out.telemetry.expect("traced run yields telemetry");
        assert!(report
            .schema()
            .lines()
            .any(|l| l.contains("search.session")));
        let responses = out.responses.expect("responses were recorded");
        assert_eq!(responses.len(), out.outcome.transcript.total_views());
        // Untraced runs carry neither.
        let bare = InteractiveSearch::new(SearchConfig::default().with_support(20))
            .run_with(
                &handle(&pts),
                &q,
                &mut HeuristicUser::default(),
                RunOptions::default(),
            )
            .expect("healthy data");
        assert!(bare.telemetry.is_none());
        assert!(bare.responses.is_none());
    }

    #[test]
    fn run_options_deadline_overrides_config() {
        let (pts, q, _) = planted();
        // A deadline the fault point forces to expire, passed through
        // options rather than the config.
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let err = {
            let _g = hinn_fault::install_local(plan.clone());
            InteractiveSearch::new(SearchConfig::default().with_support(20))
                .run_with(
                    &handle(&pts),
                    &q,
                    &mut HeuristicUser::default(),
                    RunOptions::default().with_deadline(std::time::Duration::from_secs(3600)),
                )
                .expect_err("forced deadline")
        };
        assert_eq!(plan.fired("search.deadline"), 1);
        assert!(matches!(err, HinnError::Deadline { .. }));
    }

    #[test]
    fn forced_deadline_surfaces_as_typed_error() {
        let (pts, q, _) = planted();
        // A generous budget that cannot expire on its own — only the
        // forced fault point trips the check, deterministically at the
        // first minor boundary.
        let config = SearchConfig::default()
            .with_support(20)
            .with_deadline(std::time::Duration::from_secs(3600));
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let err = {
            let _g = hinn_fault::install_local(plan.clone());
            InteractiveSearch::new(config)
                .run_with(
                    &handle(&pts),
                    &q,
                    &mut HeuristicUser::default(),
                    RunOptions::default(),
                )
                .expect_err("forced deadline")
        };
        assert_eq!(plan.fired("search.deadline"), 1);
        assert!(matches!(err, HinnError::Deadline { .. }));
        assert!(err.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn without_deadline_the_fault_point_is_never_consulted() {
        let (pts, q, _) = planted();
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let outcome = {
            let _g = hinn_fault::install_local(plan.clone());
            InteractiveSearch::new(SearchConfig::default().with_support(20))
                .run_with(
                    &handle(&pts),
                    &q,
                    &mut HeuristicUser::default(),
                    RunOptions::default(),
                )
                .expect("no deadline configured")
                .outcome
        };
        assert_eq!(plan.hits("search.deadline"), 0, "clock-free path");
        assert!(outcome.majors_run >= 1);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "query dimensionality")]
    fn query_dim_mismatch_panics() {
        let mut user = ScriptedUser::new([]);
        InteractiveSearch::new(SearchConfig::default()).run(
            &[vec![0.0, 0.0]],
            &[0.0, 0.0, 0.0],
            &mut user,
        );
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "empty data set")]
    fn empty_data_panics() {
        let mut user = ScriptedUser::new([]);
        InteractiveSearch::new(SearchConfig::default()).run(&[], &[0.0], &mut user);
    }
}
