//! Preference-count bookkeeping (Fig. 7 of the paper).
//!
//! Counts are kept per *original* dataset index and weighted by the
//! per-projection weights `w_i` (Eq. 3; the paper's experiments use
//! `w_i = 1`). A count update also records `n_i` — how many points the user
//! picked in projection `i` — which the meaningfulness statistics of Fig. 8
//! need.

/// Weighted preference counts over the original dataset.
#[derive(Clone, Debug)]
pub struct PreferenceCounts {
    v: Vec<f64>,
    /// `(n_i, w_i)` per minor iteration of the current major iteration.
    picks: Vec<(usize, f64)>,
}

impl PreferenceCounts {
    /// All-zero counts for `n` original points.
    pub fn new(n: usize) -> Self {
        Self {
            v: vec![0.0; n],
            picks: Vec::new(),
        }
    }

    /// Rebuild counts from their serialized parts (`v(·)` per original id
    /// and `(n_i, w_i)` per view) — the inverse of [`Self::counts`] /
    /// [`Self::views`], used by session-snapshot restore. The parts are
    /// stored verbatim, so a restored value is bit-identical to the one
    /// that was serialized.
    pub fn from_parts(v: Vec<f64>, picks: Vec<(usize, f64)>) -> Self {
        Self { v, picks }
    }

    /// Record one projection's user picks: `original_ids` of the selected
    /// points and the projection weight `w`.
    ///
    /// # Panics
    /// Panics if any id is out of range or `w < 0`.
    pub fn record_view(&mut self, original_ids: &[usize], w: f64) {
        assert!(w >= 0.0, "record_view: negative weight");
        for &id in original_ids {
            assert!(id < self.v.len(), "record_view: id {id} out of range");
            self.v[id] += w;
        }
        self.picks.push((original_ids.len(), w));
    }

    /// Record a dismissed view (`n_i = 0`); keeps the statistics aligned
    /// with the number of views shown.
    pub fn record_discard(&mut self, w: f64) {
        self.picks.push((0, w));
    }

    /// Weighted count of point `id`.
    #[inline]
    pub fn count(&self, id: usize) -> f64 {
        self.v[id]
    }

    /// All counts (indexed by original id).
    pub fn counts(&self) -> &[f64] {
        &self.v
    }

    /// `(n_i, w_i)` of every view in this major iteration.
    pub fn views(&self) -> &[(usize, f64)] {
        &self.picks
    }

    /// Number of views recorded (including dismissed ones).
    pub fn n_views(&self) -> usize {
        self.picks.len()
    }

    /// Ids with a strictly positive count — the survivors of the paper's
    /// "remove any point with v(i) = 0" rule, restricted to `candidates`.
    pub fn survivors(&self, candidates: &[usize]) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&id| self.v[id] > 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_weighted_counts() {
        let mut c = PreferenceCounts::new(5);
        c.record_view(&[0, 2, 4], 1.0);
        c.record_view(&[2], 2.0);
        assert_eq!(c.count(0), 1.0);
        assert_eq!(c.count(1), 0.0);
        assert_eq!(c.count(2), 3.0);
        assert_eq!(c.views(), &[(3, 1.0), (1, 2.0)]);
    }

    #[test]
    fn discards_recorded_as_zero_picks() {
        let mut c = PreferenceCounts::new(3);
        c.record_discard(1.0);
        c.record_view(&[1], 1.0);
        assert_eq!(c.n_views(), 2);
        assert_eq!(c.views()[0], (0, 1.0));
    }

    #[test]
    fn survivors_filter() {
        let mut c = PreferenceCounts::new(6);
        c.record_view(&[1, 3], 1.0);
        assert_eq!(c.survivors(&[0, 1, 2, 3]), vec![1, 3]);
        assert_eq!(c.survivors(&[0, 2]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let mut c = PreferenceCounts::new(2);
        c.record_view(&[2], 1.0);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_panics() {
        let mut c = PreferenceCounts::new(2);
        c.record_view(&[0], -1.0);
    }
}
