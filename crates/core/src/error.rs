//! The typed error taxonomy of the fallible search core.
//!
//! Every failure the engine can report flows through [`HinnError`]; the
//! panicking entry points (`InteractiveSearch::run`,
//! `find_query_centered_projection`, …) are thin wrappers that panic with
//! the error's `Display` text, so legacy `should_panic` callers see the
//! same messages they always did while `try_*` callers get structured
//! variants carrying the failing phase.
//!
//! The taxonomy deliberately distinguishes *caller mistakes*
//! ([`HinnError::InvalidInput`]) from *data pathologies* the degradation
//! ladder could not absorb ([`HinnError::DegenerateGeometry`],
//! [`HinnError::EigenFailure`]) and *operational limits*
//! ([`HinnError::Deadline`], [`HinnError::SessionPanicked`]): batch
//! drivers retry the latter groups with a degraded configuration but never
//! the first (garbage input stays garbage under any configuration).

use std::fmt;
use std::time::Duration;

/// Everything that can go wrong inside the search core.
#[derive(Clone, Debug, PartialEq)]
pub enum HinnError {
    /// The caller handed the engine something unusable: empty data, ragged
    /// or non-finite points, a mis-sized query, an inconsistent
    /// configuration. Never retried.
    InvalidInput {
        /// Pipeline phase that rejected the input.
        phase: &'static str,
        /// Human-readable description (matches the legacy panic message).
        message: String,
    },
    /// The data's geometry collapsed past what the degradation ladder can
    /// absorb: a density grid with no extent, a projection search with no
    /// usable direction left.
    DegenerateGeometry {
        /// Pipeline phase that hit the degeneracy.
        phase: &'static str,
        /// What exactly collapsed.
        message: String,
    },
    /// The eigensolver rejected its input outright (non-symmetric or
    /// non-finite covariance). Plain non-*convergence* is not an error —
    /// the ladder falls back to axis-parallel candidates and records a
    /// [`crate::degrade::DegradationKind::EigenFallback`].
    EigenFailure {
        /// Pipeline phase whose covariance failed.
        phase: &'static str,
        /// The underlying solver complaint.
        message: String,
    },
    /// The session exceeded its configured per-query deadline
    /// ([`crate::SearchConfig::deadline`]). Checked cooperatively at minor
    /// iteration boundaries, so the overshoot is at most one view's work.
    Deadline {
        /// Phase at which the budget check fired.
        phase: &'static str,
        /// Wall-clock time consumed when the check fired.
        elapsed: Duration,
        /// The configured budget.
        budget: Duration,
    },
    /// A panic escaped a session and was caught at the batch boundary
    /// ([`crate::BatchRunner`] isolates each query with `catch_unwind`).
    SessionPanicked {
        /// Phase label of the catching boundary.
        phase: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A session pinned to one dataset epoch was asked to resume against
    /// a different one. The typed consistency rule of streaming epochs:
    /// callers either resume onto the pinned epoch or opt into an
    /// explicit rebase (`SessionEngine::resume_rebased`); silently
    /// running a snapshot against moved data is never an option.
    EpochMismatch {
        /// The epoch counter the session pinned at open.
        pinned: u64,
        /// The epoch counter of the snapshot the caller offered.
        offered: u64,
    },
}

impl HinnError {
    /// The pipeline phase the error originated from.
    pub fn phase(&self) -> &'static str {
        match self {
            Self::InvalidInput { phase, .. }
            | Self::DegenerateGeometry { phase, .. }
            | Self::EigenFailure { phase, .. }
            | Self::Deadline { phase, .. }
            | Self::SessionPanicked { phase, .. } => phase,
            Self::EpochMismatch { .. } => "session.resume",
        }
    }

    /// Is this a caller mistake (as opposed to a data pathology or an
    /// operational limit)? Batch drivers never retry these.
    pub fn is_invalid_input(&self) -> bool {
        matches!(self, Self::InvalidInput { .. })
    }
}

impl fmt::Display for HinnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Invalid-input messages carry their own "who rejected you"
            // prefix and double as the legacy panic text, so they render
            // bare.
            Self::InvalidInput { message, .. } => write!(f, "{message}"),
            Self::DegenerateGeometry { phase, message } => {
                write!(f, "degenerate geometry in {phase}: {message}")
            }
            Self::EigenFailure { phase, message } => {
                write!(f, "eigensolver failure in {phase}: {message}")
            }
            Self::Deadline {
                phase,
                elapsed,
                budget,
            } => write!(
                f,
                "deadline exceeded in {phase}: {elapsed:?} elapsed of a {budget:?} budget"
            ),
            Self::SessionPanicked { phase, message } => {
                write!(f, "session panicked in {phase}: {message}")
            }
            Self::EpochMismatch { pinned, offered } => write!(
                f,
                "epoch mismatch: session pinned dataset epoch {pinned} but was offered epoch \
                 {offered}; resume onto the pinned epoch or rebase explicitly"
            ),
        }
    }
}

impl std::error::Error for HinnError {}

impl From<hinn_linalg::LinalgError> for HinnError {
    fn from(e: hinn_linalg::LinalgError) -> Self {
        Self::EigenFailure {
            phase: "linalg.eigen",
            message: e.to_string(),
        }
    }
}

impl From<hinn_kde::KdeError> for HinnError {
    fn from(e: hinn_kde::KdeError) -> Self {
        Self::DegenerateGeometry {
            phase: "kde.profile",
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_substrings() {
        let e = HinnError::InvalidInput {
            phase: "search.validate",
            message: "InteractiveSearch: empty data set".into(),
        };
        assert_eq!(e.to_string(), "InteractiveSearch: empty data set");
        assert_eq!(e.phase(), "search.validate");
        assert!(e.is_invalid_input());
    }

    #[test]
    fn conversions_map_to_the_right_variants() {
        let le = hinn_linalg::LinalgError::NotSymmetric { tolerance: 1e-9 };
        let he: HinnError = le.into();
        assert!(matches!(he, HinnError::EigenFailure { .. }));
        assert!(he.to_string().contains("symmetric"));

        let ke = hinn_kde::KdeError::EmptyProjection;
        let he: HinnError = ke.into();
        assert!(matches!(he, HinnError::DegenerateGeometry { .. }));
        assert!(he.to_string().contains("empty projection"));
        assert!(!he.is_invalid_input());
    }

    #[test]
    fn epoch_mismatch_is_not_invalid_input() {
        let e = HinnError::EpochMismatch {
            pinned: 3,
            offered: 9,
        };
        assert!(!e.is_invalid_input(), "mismatch is a consistency refusal");
        assert_eq!(e.phase(), "session.resume");
        let s = e.to_string();
        assert!(s.contains("epoch 3"), "{s}");
        assert!(s.contains("epoch 9"), "{s}");
    }

    #[test]
    fn deadline_display_names_both_durations() {
        let e = HinnError::Deadline {
            phase: "search.minor",
            elapsed: Duration::from_millis(1500),
            budget: Duration::from_millis(1000),
        };
        let s = e.to_string();
        assert!(s.contains("deadline exceeded"), "{s}");
        assert!(s.contains("search.minor"), "{s}");
    }
}
