//! Pluggable candidate generation for the interactive loop.
//!
//! The paper's protocol ranks and prunes a *candidate* set; nothing in the
//! loop requires that set to start as the whole dataset. A
//! [`CandidateSource`] chooses how the session's initial alive set is
//! seeded: the full dataset (the paper's literal setting and the
//! default), an exact top-`budget` prefilter (linear scan or VA-file), or
//! the sublinear HNSW graph of `hinn-index`.
//!
//! Every source is deterministic for a fixed configuration: the exact
//! sources by the workspace's `(distance, id)` total order, the HNSW
//! source by the seeded-graph contract of `hinn-index` (fixed seed ⇒
//! identical graph ⇒ identical candidates, across thread budgets and
//! processes). The VA-file and HNSW sources route their index through
//! [`hinn_cache::DatasetArtifacts`], so repeated sessions on one dataset
//! share a single build.

use crate::degrade::{DegradationEvent, DegradationKind};
use crate::error::HinnError;
use hinn_baselines::{knn_indices_with, Metric, VaFile};
use hinn_index::{Hnsw, HnswParams};
use hinn_par::Parallelism;

/// How a session seeds its initial candidate (alive) set. See the module
/// docs; configured via
/// [`SearchConfig::with_candidate_source`](crate::SearchConfig::with_candidate_source).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CandidateSource {
    /// Every point is a candidate (the paper's setting; the default).
    #[default]
    Full,
    /// Exact top-`budget` by Euclidean distance, via a full linear scan.
    /// Same answers as [`CandidateSource::Full`] would rank first, at
    /// O(N·d) seed cost — the reference the recall harness measures
    /// approximate sources against.
    Linear {
        /// Number of candidates to keep.
        budget: usize,
    },
    /// Exact top-`budget` via the VA-file filter-and-refine index
    /// (`hinn-baselines`), shared across sessions per dataset.
    VaFile {
        /// Quantization bits per dimension (1..=8).
        bits: u32,
        /// Number of candidates to keep.
        budget: usize,
    },
    /// Approximate top-`budget` via the deterministic HNSW graph
    /// (`hinn-index`), shared across sessions per (dataset, build params).
    Hnsw {
        /// Graph build/search parameters.
        params: HnswParams,
        /// Number of candidates to keep.
        budget: usize,
    },
}

impl CandidateSource {
    /// An HNSW source with default build parameters.
    pub fn hnsw(budget: usize) -> Self {
        Self::Hnsw {
            params: HnswParams::default(),
            budget,
        }
    }

    /// Is this the full-dataset (identity) source?
    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full)
    }

    /// The configured candidate budget (`None` for [`CandidateSource::Full`]).
    pub fn budget(&self) -> Option<usize> {
        match self {
            Self::Full => None,
            Self::Linear { budget } | Self::VaFile { budget, .. } | Self::Hnsw { budget, .. } => {
                Some(*budget)
            }
        }
    }

    /// Validate the source's parameters (budget ≥ 2 so a seeded session
    /// can rank something; VA-file bits and HNSW params in range).
    pub fn try_validate(&self) -> Result<(), HinnError> {
        let fail = |message: String| {
            Err(HinnError::InvalidInput {
                phase: "config.validate",
                message,
            })
        };
        if let Some(budget) = self.budget() {
            if budget < 2 {
                return fail(format!(
                    "CandidateSource: budget must be at least 2, got {budget}"
                ));
            }
        }
        match self {
            Self::VaFile { bits, .. } if !(1..=8).contains(bits) => fail(format!(
                "CandidateSource: VA-file bits must be in 1..=8, got {bits}"
            )),
            Self::Hnsw { params, .. } => match params.try_validate() {
                Ok(()) => Ok(()),
                Err(e) => fail(format!("CandidateSource: {e}")),
            },
            _ => Ok(()),
        }
    }

    /// The top-`k` candidate ids for `query`, closest first. For the exact
    /// sources this is the true Euclidean k-NN answer; for HNSW it is the
    /// graph's approximation (measured by the recall harness). `Full`
    /// degenerates to the linear scan — it has no budget of its own, so
    /// `top_k` *is* the exact baseline.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch or (first call per dataset)
    /// invalid index-build input, exactly as the underlying index does.
    pub fn top_k(
        &self,
        par: Parallelism,
        points: &[Vec<f64>],
        query: &[f64],
        k: usize,
    ) -> Vec<usize> {
        match self {
            Self::Full | Self::Linear { .. } => knn_indices_with(par, points, query, k, Metric::L2),
            Self::VaFile { bits, .. } => VaFile::shared(points, *bits).knn_with(par, query, k).0,
            // `shared` canonicalizes the stored `ef_search` (every ef
            // variant maps to one artifact slot), so the *session's*
            // configured width must travel with the query — never read it
            // back off the shared graph, whose params reflect no caller.
            Self::Hnsw { params, .. } => {
                Hnsw::shared(points, *params).knn_with_ef(query, k, params.ef_search)
            }
        }
    }

    /// The initial alive set of a session: every id for `Full`, else the
    /// source's top-`budget` ids — clamped up to the effective support
    /// `s_eff` (a candidate set smaller than the support would starve the
    /// ranking) and down to `n` — returned sorted ascending, the order the
    /// engine's alive set always maintains.
    ///
    /// The exact sources always deliver `min(budget, n)` ids, but the
    /// HNSW graph can return fewer: poisoned (NaN-coordinate) points are
    /// excluded from the graph entirely and disconnected components are
    /// unreachable from the entry point. A seed below the effective
    /// support would starve the ranking — or, below 2 ids, terminate the
    /// session immediately — so when the source under-delivers, the seed
    /// falls back to the exact linear scan and reports a
    /// [`DegradationKind::StarvedSeed`] event for the session's
    /// degradation log. The fallback is a pure function of
    /// `(points, query, budget)`, so determinism is preserved.
    pub(crate) fn seed_alive(
        &self,
        par: Parallelism,
        points: &[Vec<f64>],
        query: &[f64],
        s_eff: usize,
    ) -> (Vec<usize>, Option<DegradationEvent>) {
        match self {
            Self::Full => ((0..points.len()).collect(), None),
            _ => {
                let budget = self
                    .budget()
                    .unwrap_or(points.len())
                    .max(s_eff)
                    .min(points.len());
                let mut ids = self.top_k(par, points, query, budget);
                let floor = s_eff.max(2).min(points.len());
                let event = (ids.len() < floor).then(|| {
                    let detail = format!(
                        "candidate source {:?} returned {} of {} requested ids \
                         (< effective support {}); reseeded via exact linear scan",
                        self,
                        ids.len(),
                        budget,
                        floor,
                    );
                    ids = Self::Linear { budget }.top_k(par, points, query, budget);
                    DegradationEvent::unplaced(DegradationKind::StarvedSeed, detail)
                });
                ids.sort_unstable();
                (ids, event)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
            .collect()
    }

    #[test]
    fn default_is_full() {
        assert!(CandidateSource::default().is_full());
        assert_eq!(CandidateSource::default().budget(), None);
    }

    #[test]
    fn validation_rejects_bad_budgets_and_params() {
        assert!(CandidateSource::Full.try_validate().is_ok());
        assert!(CandidateSource::Linear { budget: 2 }.try_validate().is_ok());
        assert!(CandidateSource::Linear { budget: 1 }
            .try_validate()
            .is_err());
        assert!(CandidateSource::VaFile {
            bits: 0,
            budget: 50
        }
        .try_validate()
        .is_err());
        assert!(CandidateSource::VaFile {
            bits: 4,
            budget: 50
        }
        .try_validate()
        .is_ok());
        let bad = CandidateSource::Hnsw {
            params: HnswParams::default().with_m(1),
            budget: 50,
        };
        assert!(bad.try_validate().is_err());
        assert!(CandidateSource::hnsw(50).try_validate().is_ok());
    }

    #[test]
    fn exact_sources_agree_on_top_k() {
        let pts = cloud(300, 6, 0x11);
        let q = pts[7].clone();
        let par = Parallelism::serial();
        let full = CandidateSource::Full.top_k(par, &pts, &q, 25);
        let lin = CandidateSource::Linear { budget: 25 }.top_k(par, &pts, &q, 25);
        let va = CandidateSource::VaFile {
            bits: 4,
            budget: 25,
        }
        .top_k(par, &pts, &q, 25);
        assert_eq!(full, lin);
        assert_eq!(full, va);
        assert_eq!(full[0], 7, "self-query returns self first");
    }

    #[test]
    fn seed_alive_full_is_identity() {
        let pts = cloud(40, 4, 0x22);
        let (alive, event) =
            CandidateSource::Full.seed_alive(Parallelism::serial(), &pts, &pts[0], 20);
        assert_eq!(alive, (0..40).collect::<Vec<_>>());
        assert!(event.is_none());
    }

    #[test]
    fn seed_alive_is_sorted_and_clamped() {
        let pts = cloud(200, 5, 0x33);
        let q = pts[0].clone();
        let par = Parallelism::serial();
        // Budget below s_eff clamps up; above n clamps down.
        let (small, event) = CandidateSource::Linear { budget: 3 }.seed_alive(par, &pts, &q, 30);
        assert_eq!(small.len(), 30);
        assert!(event.is_none(), "an exact source never starves");
        assert!(small.windows(2).all(|w| w[0] < w[1]), "sorted unique ids");
        assert!(small.contains(&0), "the query's own point survives");
        let (big, _) = CandidateSource::Linear { budget: 10_000 }.seed_alive(par, &pts, &q, 30);
        assert_eq!(big, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn hnsw_seed_alive_is_deterministic() {
        let pts = cloud(400, 8, 0x44);
        let q = pts[11].clone();
        let src = CandidateSource::hnsw(60);
        let (a, a_event) = src.seed_alive(Parallelism::serial(), &pts, &q, 20);
        let (b, _) = src.seed_alive(Parallelism::fixed(7), &pts, &q, 20);
        assert_eq!(a, b, "HNSW seeding must ignore the thread budget");
        assert_eq!(a.len(), 60);
        assert!(a_event.is_none(), "a healthy graph delivers the budget");
    }

    #[test]
    fn starved_hnsw_seed_falls_back_to_linear_with_a_diagnostic() {
        // Poison most of the dataset: the graph indexes only 10 clean
        // points, so a budget of 30 cannot be met and the seed must fall
        // back to the exact linear scan instead of starving the session.
        let mut pts = cloud(40, 4, 0x55);
        for p in pts.iter_mut().skip(10) {
            p[0] = f64::NAN;
        }
        let q = pts[0].clone();
        let src = CandidateSource::hnsw(30);
        let (alive, event) = src.seed_alive(Parallelism::serial(), &pts, &q, 30);
        assert_eq!(alive.len(), 30, "fallback must fill the clamped budget");
        assert!(alive.windows(2).all(|w| w[0] < w[1]), "sorted unique ids");
        let event = event.expect("a starved seed must be observable");
        assert_eq!(event.kind, DegradationKind::StarvedSeed);
        assert!(event.detail.contains("linear"), "{}", event.detail);
    }
}
