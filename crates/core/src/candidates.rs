//! Pluggable candidate generation for the interactive loop.
//!
//! The paper's protocol ranks and prunes a *candidate* set; nothing in the
//! loop requires that set to start as the whole dataset. A
//! [`CandidateSource`] chooses how the session's initial alive set is
//! seeded: the full dataset (the paper's literal setting and the
//! default), an exact top-`budget` prefilter (linear scan or VA-file), or
//! the sublinear HNSW graph of `hinn-index`.
//!
//! Every source is deterministic for a fixed configuration: the exact
//! sources by the workspace's `(distance, id)` total order, the HNSW
//! source by the seeded-graph contract of `hinn-index` (fixed seed ⇒
//! identical graph ⇒ identical candidates, across thread budgets and
//! processes). The VA-file and HNSW sources route their index through
//! [`hinn_cache::DatasetArtifacts`], so repeated sessions on one dataset
//! share a single build.

use crate::degrade::{DegradationEvent, DegradationKind};
use crate::error::HinnError;
use hinn_baselines::{knn_indices_with, Metric, VaFile};
use hinn_cache::DatasetArtifacts;
use hinn_data::EpochSnapshot;
use hinn_index::{Hnsw, HnswParams};
use hinn_par::Parallelism;
use std::sync::Arc;

/// Tombstone fraction (deleted / appended) beyond which the epoch HNSW
/// seed abandons the incremental append-only graph — whose searches must
/// over-fetch past tombstones — and rebuilds over the dense alive rows.
pub(crate) const REBUILD_TOMBSTONE_FRACTION: f64 = 0.3;

/// How a session seeds its initial candidate (alive) set. See the module
/// docs; configured via
/// [`SearchConfig::with_candidate_source`](crate::SearchConfig::with_candidate_source).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CandidateSource {
    /// Every point is a candidate (the paper's setting; the default).
    #[default]
    Full,
    /// Exact top-`budget` by Euclidean distance, via a full linear scan.
    /// Same answers as [`CandidateSource::Full`] would rank first, at
    /// O(N·d) seed cost — the reference the recall harness measures
    /// approximate sources against.
    Linear {
        /// Number of candidates to keep.
        budget: usize,
    },
    /// Exact top-`budget` via the VA-file filter-and-refine index
    /// (`hinn-baselines`), shared across sessions per dataset.
    VaFile {
        /// Quantization bits per dimension (1..=8).
        bits: u32,
        /// Number of candidates to keep.
        budget: usize,
    },
    /// Approximate top-`budget` via the deterministic HNSW graph
    /// (`hinn-index`), shared across sessions per (dataset, build params).
    Hnsw {
        /// Graph build/search parameters.
        params: HnswParams,
        /// Number of candidates to keep.
        budget: usize,
    },
}

impl CandidateSource {
    /// An HNSW source with default build parameters.
    pub fn hnsw(budget: usize) -> Self {
        Self::Hnsw {
            params: HnswParams::default(),
            budget,
        }
    }

    /// Is this the full-dataset (identity) source?
    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full)
    }

    /// The configured candidate budget (`None` for [`CandidateSource::Full`]).
    pub fn budget(&self) -> Option<usize> {
        match self {
            Self::Full => None,
            Self::Linear { budget } | Self::VaFile { budget, .. } | Self::Hnsw { budget, .. } => {
                Some(*budget)
            }
        }
    }

    /// Validate the source's parameters (budget ≥ 2 so a seeded session
    /// can rank something; VA-file bits and HNSW params in range).
    pub fn try_validate(&self) -> Result<(), HinnError> {
        let fail = |message: String| {
            Err(HinnError::InvalidInput {
                phase: "config.validate",
                message,
            })
        };
        if let Some(budget) = self.budget() {
            if budget < 2 {
                return fail(format!(
                    "CandidateSource: budget must be at least 2, got {budget}"
                ));
            }
        }
        match self {
            Self::VaFile { bits, .. } if !(1..=8).contains(bits) => fail(format!(
                "CandidateSource: VA-file bits must be in 1..=8, got {bits}"
            )),
            Self::Hnsw { params, .. } => match params.try_validate() {
                Ok(()) => Ok(()),
                Err(e) => fail(format!("CandidateSource: {e}")),
            },
            _ => Ok(()),
        }
    }

    /// The top-`k` candidate ids for `query`, closest first. For the exact
    /// sources this is the true Euclidean k-NN answer; for HNSW it is the
    /// graph's approximation (measured by the recall harness). `Full`
    /// degenerates to the linear scan — it has no budget of its own, so
    /// `top_k` *is* the exact baseline.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch or (first call per dataset)
    /// invalid index-build input, exactly as the underlying index does.
    pub fn top_k(
        &self,
        par: Parallelism,
        points: &[Vec<f64>],
        query: &[f64],
        k: usize,
    ) -> Vec<usize> {
        match self {
            Self::Full | Self::Linear { .. } => knn_indices_with(par, points, query, k, Metric::L2),
            Self::VaFile { bits, .. } => VaFile::shared(points, *bits).knn_with(par, query, k).0,
            // `shared` canonicalizes the stored `ef_search` (every ef
            // variant maps to one artifact slot), so the *session's*
            // configured width must travel with the query — never read it
            // back off the shared graph, whose params reflect no caller.
            Self::Hnsw { params, .. } => {
                Hnsw::shared(points, *params).knn_with_ef(query, k, params.ef_search)
            }
        }
    }

    /// The initial alive set of a session: every id for `Full`, else the
    /// source's top-`budget` ids — clamped up to the effective support
    /// `s_eff` (a candidate set smaller than the support would starve the
    /// ranking) and down to `n` — returned sorted ascending, the order the
    /// engine's alive set always maintains.
    ///
    /// The exact sources always deliver `min(budget, n)` ids, but the
    /// HNSW graph can return fewer: poisoned (NaN-coordinate) points are
    /// excluded from the graph entirely and disconnected components are
    /// unreachable from the entry point. A seed below the effective
    /// support would starve the ranking — or, below 2 ids, terminate the
    /// session immediately — so when the source under-delivers, the seed
    /// falls back to the exact linear scan and reports a
    /// [`DegradationKind::StarvedSeed`] event for the session's
    /// degradation log. The fallback is a pure function of
    /// `(points, query, budget)`, so determinism is preserved.
    pub(crate) fn seed_alive(
        &self,
        par: Parallelism,
        points: &[Vec<f64>],
        query: &[f64],
        s_eff: usize,
    ) -> (Vec<usize>, Option<DegradationEvent>) {
        match self {
            Self::Full => ((0..points.len()).collect(), None),
            _ => {
                let budget = self
                    .budget()
                    .unwrap_or(points.len())
                    .max(s_eff)
                    .min(points.len());
                let mut ids = self.top_k(par, points, query, budget);
                let floor = s_eff.max(2).min(points.len());
                let event = (ids.len() < floor).then(|| {
                    let detail = format!(
                        "candidate source {:?} returned {} of {} requested ids \
                         (< effective support {}); reseeded via exact linear scan",
                        self,
                        ids.len(),
                        budget,
                        floor,
                    );
                    ids = Self::Linear { budget }.top_k(par, points, query, budget);
                    DegradationEvent::unplaced(DegradationKind::StarvedSeed, detail)
                });
                ids.sort_unstable();
                (ids, event)
            }
        }
    }

    /// [`CandidateSource::seed_alive`] for a session opened over an
    /// [`EpochSnapshot`]: `rows` is the snapshot's dense alive view (the
    /// engine's id space), and the HNSW source reuses the epoch's
    /// append-only graph lineage instead of hashing the rows.
    ///
    /// The graph is keyed by the snapshot's *append* fingerprint chain, so
    /// epochs that differ only by deletes share one graph and each append
    /// batch extends the predecessor's graph in place of a rebuild
    /// (bit-identical to a one-shot build — see `Hnsw::extended`).
    /// Deletes filter at search time: the walk over-fetches by the
    /// tombstone count and drops tombstoned ids; past
    /// [`REBUILD_TOMBSTONE_FRACTION`] the seed rebuilds over the dense
    /// alive rows, keyed by the full chained fingerprint.
    pub(crate) fn seed_alive_epoch(
        &self,
        par: Parallelism,
        snap: &EpochSnapshot,
        rows: &[Vec<f64>],
        query: &[f64],
        s_eff: usize,
    ) -> (Vec<usize>, Option<DegradationEvent>) {
        let Self::Hnsw { params, budget } = self else {
            // Exact sources scan the dense alive rows directly — dense
            // indices *are* the engine's point ids under an epoch store.
            return self.seed_alive(par, rows, query, s_eff);
        };
        let n = rows.len();
        let budget = (*budget).max(s_eff).min(n);
        let mut ids = Self::epoch_hnsw_ids(snap, *params, rows, query, budget);
        let floor = s_eff.max(2).min(n);
        let event = (ids.len() < floor).then(|| {
            let detail = format!(
                "candidate source {:?} returned {} of {} requested ids \
                 (< effective support {}); reseeded via exact linear scan",
                self,
                ids.len(),
                budget,
                floor,
            );
            ids = Self::Linear { budget }.top_k(par, rows, query, budget);
            DegradationEvent::unplaced(DegradationKind::StarvedSeed, detail)
        });
        ids.sort_unstable();
        (ids, event)
    }

    /// The epoch HNSW walk: top-`budget` *dense* (alive) indices.
    fn epoch_hnsw_ids(
        snap: &EpochSnapshot,
        params: HnswParams,
        rows: &[Vec<f64>],
        query: &[f64],
        budget: usize,
    ) -> Vec<usize> {
        let appended = snap.appended_len();
        if appended == 0 {
            return Vec::new();
        }
        // Same canonicalization as `Hnsw::shared`: every `ef_search`
        // variant maps to one artifact slot, and the session's width
        // travels with the query.
        let canon = HnswParams {
            ef_search: HnswParams::default().ef_search,
            ..params
        };
        let dead = snap.tombstone_count();
        if dead as f64 > REBUILD_TOMBSTONE_FRACTION * appended as f64 {
            // Heavily tombstoned: rebuild over the dense alive rows, keyed
            // by the full chained fingerprint (appends *and* deletes), so
            // the graph itself carries no tombstones.
            let arts =
                DatasetArtifacts::for_fingerprint(snap.fingerprint(), rows.len(), snap.dim());
            let graph = arts
                .store()
                .get_or_insert("index.hnsw", canon.key(), || {
                    Hnsw::build(rows.to_vec(), canon)
                })
                .unwrap_or_else(|| Arc::new(Hnsw::build(rows.to_vec(), canon)));
            return graph.knn_with_ef(query, budget, params.ef_search);
        }
        // Incremental path: one graph over all appended rows, extended
        // from the predecessor epoch's graph when the registry still holds
        // it (a pure optimization — the extension is bit-identical to the
        // fallback one-shot build, so cache residency never changes ids).
        let all = snap.all_rows();
        let arts =
            DatasetArtifacts::for_fingerprint(snap.append_fingerprint(), appended, snap.dim());
        let graph = arts
            .store()
            .get_or_insert("index.hnsw", canon.key(), || {
                snap.prev_append_fingerprint()
                    .and_then(DatasetArtifacts::lookup)
                    .and_then(|prev| prev.store().get::<Hnsw>("index.hnsw", canon.key()))
                    .map(|prev_graph| prev_graph.extended(&all))
                    .unwrap_or_else(|| Hnsw::build(all.as_ref().clone(), canon))
            })
            .unwrap_or_else(|| Arc::new(Hnsw::build(all.as_ref().clone(), canon)));
        // Over-fetch by the tombstone count so the post-filter can still
        // deliver `budget` alive ids, then map global ids to dense ones
        // (`dense_index_of` is `None` exactly for tombstoned ids).
        let want = budget.saturating_add(dead).min(appended);
        graph
            .knn_with_ef(query, want, params.ef_search)
            .into_iter()
            .filter_map(|gid| snap.dense_index_of(gid))
            .take(budget)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
            .collect()
    }

    #[test]
    fn default_is_full() {
        assert!(CandidateSource::default().is_full());
        assert_eq!(CandidateSource::default().budget(), None);
    }

    #[test]
    fn validation_rejects_bad_budgets_and_params() {
        assert!(CandidateSource::Full.try_validate().is_ok());
        assert!(CandidateSource::Linear { budget: 2 }.try_validate().is_ok());
        assert!(CandidateSource::Linear { budget: 1 }
            .try_validate()
            .is_err());
        assert!(CandidateSource::VaFile {
            bits: 0,
            budget: 50
        }
        .try_validate()
        .is_err());
        assert!(CandidateSource::VaFile {
            bits: 4,
            budget: 50
        }
        .try_validate()
        .is_ok());
        let bad = CandidateSource::Hnsw {
            params: HnswParams::default().with_m(1),
            budget: 50,
        };
        assert!(bad.try_validate().is_err());
        assert!(CandidateSource::hnsw(50).try_validate().is_ok());
    }

    #[test]
    fn exact_sources_agree_on_top_k() {
        let pts = cloud(300, 6, 0x11);
        let q = pts[7].clone();
        let par = Parallelism::serial();
        let full = CandidateSource::Full.top_k(par, &pts, &q, 25);
        let lin = CandidateSource::Linear { budget: 25 }.top_k(par, &pts, &q, 25);
        let va = CandidateSource::VaFile {
            bits: 4,
            budget: 25,
        }
        .top_k(par, &pts, &q, 25);
        assert_eq!(full, lin);
        assert_eq!(full, va);
        assert_eq!(full[0], 7, "self-query returns self first");
    }

    #[test]
    fn seed_alive_full_is_identity() {
        let pts = cloud(40, 4, 0x22);
        let (alive, event) =
            CandidateSource::Full.seed_alive(Parallelism::serial(), &pts, &pts[0], 20);
        assert_eq!(alive, (0..40).collect::<Vec<_>>());
        assert!(event.is_none());
    }

    #[test]
    fn seed_alive_is_sorted_and_clamped() {
        let pts = cloud(200, 5, 0x33);
        let q = pts[0].clone();
        let par = Parallelism::serial();
        // Budget below s_eff clamps up; above n clamps down.
        let (small, event) = CandidateSource::Linear { budget: 3 }.seed_alive(par, &pts, &q, 30);
        assert_eq!(small.len(), 30);
        assert!(event.is_none(), "an exact source never starves");
        assert!(small.windows(2).all(|w| w[0] < w[1]), "sorted unique ids");
        assert!(small.contains(&0), "the query's own point survives");
        let (big, _) = CandidateSource::Linear { budget: 10_000 }.seed_alive(par, &pts, &q, 30);
        assert_eq!(big, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn hnsw_seed_alive_is_deterministic() {
        let pts = cloud(400, 8, 0x44);
        let q = pts[11].clone();
        let src = CandidateSource::hnsw(60);
        let (a, a_event) = src.seed_alive(Parallelism::serial(), &pts, &q, 20);
        let (b, _) = src.seed_alive(Parallelism::fixed(7), &pts, &q, 20);
        assert_eq!(a, b, "HNSW seeding must ignore the thread budget");
        assert_eq!(a.len(), 60);
        assert!(a_event.is_none(), "a healthy graph delivers the budget");
    }

    #[test]
    fn starved_hnsw_seed_falls_back_to_linear_with_a_diagnostic() {
        // Poison most of the dataset: the graph indexes only 10 clean
        // points, so a budget of 30 cannot be met and the seed must fall
        // back to the exact linear scan instead of starving the session.
        let mut pts = cloud(40, 4, 0x55);
        for p in pts.iter_mut().skip(10) {
            p[0] = f64::NAN;
        }
        let q = pts[0].clone();
        let src = CandidateSource::hnsw(30);
        let (alive, event) = src.seed_alive(Parallelism::serial(), &pts, &q, 30);
        assert_eq!(alive.len(), 30, "fallback must fill the clamped budget");
        assert!(alive.windows(2).all(|w| w[0] < w[1]), "sorted unique ids");
        let event = event.expect("a starved seed must be observable");
        assert_eq!(event.kind, DegradationKind::StarvedSeed);
        assert!(event.detail.contains("linear"), "{}", event.detail);
    }

    #[test]
    fn epoch_hnsw_seed_is_chunking_invariant_and_filters_tombstones() {
        use hinn_data::DatasetHandle;
        let pts = cloud(300, 6, 0x66);
        let q = pts[3].clone();
        let src = CandidateSource::hnsw(40);
        let par = Parallelism::serial();

        let batched = DatasetHandle::new(&pts).expect("clean rows");
        let chunked = DatasetHandle::empty(6).expect("dim");
        chunked.append(&pts[..100]).expect("chunk 1");
        chunked.append(&pts[100..101]).expect("chunk 2");
        chunked.append(&pts[101..]).expect("chunk 3");

        let (snap_b, snap_c) = (batched.snapshot(), chunked.snapshot());
        let (rows_b, rows_c) = (snap_b.rows(), snap_c.rows());
        let (a, ea) = src.seed_alive_epoch(par, &snap_b, &rows_b, &q, 20);
        let (b, eb) = src.seed_alive_epoch(par, &snap_c, &rows_c, &q, 20);
        assert_eq!(a, b, "chunked ingest must seed identically to batched");
        assert_eq!(a.len(), 40);
        assert!(ea.is_none() && eb.is_none());

        // Delete five seeded points (dense == global pre-delete) from both
        // handles: the walk must over-fetch past the tombstones and the
        // two lineages must still agree.
        let victims: Vec<usize> = a.iter().take(5).copied().collect();
        batched.delete(&victims).expect("known ids");
        chunked.delete(&victims).expect("known ids");
        let (snap_b, snap_c) = (batched.snapshot(), chunked.snapshot());
        let (rows_b, rows_c) = (snap_b.rows(), snap_c.rows());
        let (a2, _) = src.seed_alive_epoch(par, &snap_b, &rows_b, &q, 20);
        let (b2, _) = src.seed_alive_epoch(par, &snap_c, &rows_c, &q, 20);
        assert_eq!(a2, b2);
        assert_eq!(a2.len(), 40, "tombstones must not starve the seed");
        let alive_ids = snap_b.alive_ids();
        for &dense in &a2 {
            assert!(
                !victims.contains(&alive_ids[dense]),
                "tombstoned id leaked into the seed"
            );
        }
    }

    #[test]
    fn epoch_hnsw_seed_rebuilds_past_the_tombstone_threshold() {
        use hinn_data::DatasetHandle;
        let pts = cloud(200, 5, 0x77);
        let q = pts[2].clone();
        let handle = DatasetHandle::new(&pts).expect("clean rows");
        // Tombstone 40% of the appended rows — past the 30% threshold the
        // seed must take the dense-rebuild path and stay deterministic.
        let victims: Vec<usize> = (100..180).collect();
        handle.delete(&victims).expect("known ids");
        let snap = handle.snapshot();
        let rows = snap.rows();
        assert!(
            snap.tombstone_count() as f64 > REBUILD_TOMBSTONE_FRACTION * snap.appended_len() as f64
        );
        let src = CandidateSource::hnsw(30);
        let (a, ea) = src.seed_alive_epoch(Parallelism::serial(), &snap, &rows, &q, 15);
        let (b, _) = src.seed_alive_epoch(Parallelism::fixed(4), &snap, &rows, &q, 15);
        assert_eq!(a, b, "rebuilt seed must ignore the thread budget");
        assert_eq!(a.len(), 30);
        assert!(ea.is_none());
        assert!(a.iter().all(|&i| i < rows.len()), "dense ids only");
    }

    #[test]
    fn epoch_exact_sources_match_the_dense_slice_path() {
        use hinn_data::DatasetHandle;
        let pts = cloud(120, 4, 0x88);
        let q = pts[0].clone();
        let handle = DatasetHandle::new(&pts).expect("clean rows");
        handle.delete(&[7, 8, 9]).expect("known ids");
        let snap = handle.snapshot();
        let rows = snap.rows();
        let par = Parallelism::serial();
        for src in [
            CandidateSource::Full,
            CandidateSource::Linear { budget: 25 },
            CandidateSource::VaFile {
                bits: 4,
                budget: 25,
            },
        ] {
            let (epoch_seed, _) = src.seed_alive_epoch(par, &snap, &rows, &q, 10);
            let (slice_seed, _) = src.seed_alive(par, &rows, &q, 10);
            assert_eq!(epoch_seed, slice_seed, "{src:?}");
        }
    }
}
