//! Typed accessors over the shared per-dataset artifact store.
//!
//! [`hinn_cache::DatasetArtifacts`] is a type-erased store; this module
//! gives the workspace's global dataset statistics — mean vector, full
//! covariance, per-coordinate variances (the `γᵢ` denominators of the
//! variance-ratio grading along the original axes) — well-known keys and
//! concrete types, so every consumer (benchmark harnesses, baselines,
//! reports) computes them once per dataset and shares the `Arc`.
//!
//! All statistics go through the `_with` entry points of
//! `hinn_linalg::stats`, which are bit-identical for every thread budget;
//! a cached value is therefore the exact value any caller would compute.

use hinn_cache::DatasetArtifacts;
use hinn_linalg::{Matrix, Parallelism};
use std::sync::Arc;

/// The shared artifacts shell of `points` (process-global registry keyed
/// by content fingerprint — see [`DatasetArtifacts::for_points`]).
pub fn dataset_artifacts(points: &[Vec<f64>]) -> Arc<DatasetArtifacts> {
    DatasetArtifacts::for_points(points)
}

/// The dataset's global mean vector, computed once and shared.
pub fn global_mean(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Vec<f64>> {
    arts.store()
        .get_or_insert("core.global_mean", 0, || {
            hinn_linalg::stats::mean_vector_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::stats::mean_vector_with(par, points)))
}

/// The dataset's global covariance matrix, computed once and shared.
pub fn global_covariance(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Matrix> {
    arts.store()
        .get_or_insert("core.global_covariance", 0, || {
            hinn_linalg::covariance_matrix_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::covariance_matrix_with(par, points)))
}

/// The dataset's per-coordinate variances (the `γᵢ` denominators along
/// the original attributes), computed once and shared.
pub fn global_coordinate_variances(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Vec<f64>> {
    arts.store()
        .get_or_insert("core.coordinate_variances", 0, || {
            hinn_linalg::stats::coordinate_variances_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::stats::coordinate_variances_with(par, points)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Vec<f64>> {
        (0..20)
            .map(|i| vec![i as f64, 2.0 * i as f64 + 1.0, 5.0])
            .collect()
    }

    #[test]
    fn stats_match_direct_computation_and_share_storage() {
        let data = pts();
        let par = Parallelism::serial();
        let arts = dataset_artifacts(&data);
        let mean = global_mean(&arts, par, &data);
        let direct = hinn_linalg::stats::mean_vector(&data);
        for (a, b) in mean.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A second request (even at another thread budget) shares the Arc.
        let again = global_mean(&arts, Parallelism::fixed(4), &data);
        assert!(Arc::ptr_eq(&mean, &again));

        let var = global_coordinate_variances(&arts, par, &data);
        let direct = hinn_linalg::stats::coordinate_variances(&data);
        for (a, b) in var.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(var[2], 0.0, "constant coordinate has zero variance");

        let cov = global_covariance(&arts, par, &data);
        let direct = hinn_linalg::covariance_matrix(&data);
        assert_eq!(cov.rows(), direct.rows());
        for (a, b) in cov.as_slice().iter().zip(direct.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn repeated_sessions_reuse_one_shell() {
        let data = pts();
        let a = dataset_artifacts(&data);
        let b = dataset_artifacts(&data);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n_points(), 20);
        assert_eq!(a.dims(), 3);
    }
}
