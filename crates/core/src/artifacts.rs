//! Typed accessors over the shared per-dataset artifact store.
//!
//! [`hinn_cache::DatasetArtifacts`] is a type-erased store; this module
//! gives the workspace's global dataset statistics — mean vector, full
//! covariance, per-coordinate variances (the `γᵢ` denominators of the
//! variance-ratio grading along the original axes) — well-known keys and
//! concrete types, so every consumer (benchmark harnesses, baselines,
//! reports) computes them once per dataset and shares the `Arc`.
//!
//! All statistics go through the `_with` entry points of
//! `hinn_linalg::stats`, which are bit-identical for every thread budget;
//! a cached value is therefore the exact value any caller would compute.

use hinn_cache::DatasetArtifacts;
use hinn_data::EpochSnapshot;
use hinn_linalg::{Matrix, Parallelism};
use std::sync::Arc;

/// The shared artifacts shell of `points` (process-global registry keyed
/// by content fingerprint — see [`DatasetArtifacts::for_points`]).
pub fn dataset_artifacts(points: &[Vec<f64>]) -> Arc<DatasetArtifacts> {
    DatasetArtifacts::for_points(points)
}

/// The shared artifacts shell of an epoch snapshot, keyed by the chained
/// epoch fingerprint — O(1), no row hashing (see
/// [`DatasetArtifacts::for_fingerprint`]).
pub fn epoch_artifacts(snap: &EpochSnapshot) -> Arc<DatasetArtifacts> {
    DatasetArtifacts::for_fingerprint(snap.fingerprint(), snap.len(), snap.dim())
}

/// The epoch's global mean vector, served from the handle's rank-1
/// maintained [`hinn_data::StreamingStats`] and cached in the epoch's
/// artifact shell under the same well-known key the slice path uses.
///
/// Within one recompute window the rank-1 value can drift from the exact
/// serial value by accumulated floating-point error; the periodic exact
/// checkpoint bounds that drift (see `DESIGN.md` §6.10), and
/// `tests/epoch_streaming.rs` pins the tolerance.
pub fn epoch_global_mean(snap: &EpochSnapshot) -> Arc<Vec<f64>> {
    let arts = epoch_artifacts(snap);
    let build = || snap.stats().mean().to_vec();
    arts.store()
        .get_or_insert("core.global_mean", 0, build)
        .unwrap_or_else(|| Arc::new(build()))
}

/// The epoch's global covariance matrix, served from the rank-1
/// maintained streaming moments (see [`epoch_global_mean`] for the
/// tolerance contract).
pub fn epoch_global_covariance(snap: &EpochSnapshot) -> Arc<Matrix> {
    let arts = epoch_artifacts(snap);
    let build = || snap.stats().covariance();
    arts.store()
        .get_or_insert("core.global_covariance", 0, build)
        .unwrap_or_else(|| Arc::new(build()))
}

/// The epoch's per-coordinate variances (the `γᵢ` denominators along the
/// original attributes), served from the rank-1 maintained streaming
/// moments (see [`epoch_global_mean`] for the tolerance contract).
pub fn epoch_global_coordinate_variances(snap: &EpochSnapshot) -> Arc<Vec<f64>> {
    let arts = epoch_artifacts(snap);
    let build = || snap.stats().coordinate_variances();
    arts.store()
        .get_or_insert("core.coordinate_variances", 0, build)
        .unwrap_or_else(|| Arc::new(build()))
}

/// The dataset's global mean vector, computed once and shared.
pub fn global_mean(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Vec<f64>> {
    arts.store()
        .get_or_insert("core.global_mean", 0, || {
            hinn_linalg::stats::mean_vector_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::stats::mean_vector_with(par, points)))
}

/// The dataset's global covariance matrix, computed once and shared.
pub fn global_covariance(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Matrix> {
    arts.store()
        .get_or_insert("core.global_covariance", 0, || {
            hinn_linalg::covariance_matrix_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::covariance_matrix_with(par, points)))
}

/// The dataset's per-coordinate variances (the `γᵢ` denominators along
/// the original attributes), computed once and shared.
pub fn global_coordinate_variances(
    arts: &DatasetArtifacts,
    par: Parallelism,
    points: &[Vec<f64>],
) -> Arc<Vec<f64>> {
    arts.store()
        .get_or_insert("core.coordinate_variances", 0, || {
            hinn_linalg::stats::coordinate_variances_with(par, points)
        })
        .unwrap_or_else(|| Arc::new(hinn_linalg::stats::coordinate_variances_with(par, points)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Vec<f64>> {
        (0..20)
            .map(|i| vec![i as f64, 2.0 * i as f64 + 1.0, 5.0])
            .collect()
    }

    #[test]
    fn stats_match_direct_computation_and_share_storage() {
        let data = pts();
        let par = Parallelism::serial();
        let arts = dataset_artifacts(&data);
        let mean = global_mean(&arts, par, &data);
        let direct = hinn_linalg::stats::mean_vector(&data);
        for (a, b) in mean.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A second request (even at another thread budget) shares the Arc.
        let again = global_mean(&arts, Parallelism::fixed(4), &data);
        assert!(Arc::ptr_eq(&mean, &again));

        let var = global_coordinate_variances(&arts, par, &data);
        let direct = hinn_linalg::stats::coordinate_variances(&data);
        for (a, b) in var.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(var[2], 0.0, "constant coordinate has zero variance");

        let cov = global_covariance(&arts, par, &data);
        let direct = hinn_linalg::covariance_matrix(&data);
        assert_eq!(cov.rows(), direct.rows());
        for (a, b) in cov.as_slice().iter().zip(direct.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn epoch_stats_are_cached_under_the_chained_fingerprint() {
        let data = pts();
        let dh = hinn_data::DatasetHandle::new(&data).expect("epoch handle");
        let snap = dh.snapshot();
        let mean = epoch_global_mean(&snap);
        let exact = hinn_linalg::stats::mean_vector(&data);
        for (a, b) in mean.iter().zip(&exact) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
        // A second request shares the Arc through the epoch shell.
        let again = epoch_global_mean(&snap);
        assert!(Arc::ptr_eq(&mean, &again));

        let var = epoch_global_coordinate_variances(&snap);
        let exact = hinn_linalg::stats::coordinate_variances(&data);
        for (a, b) in var.iter().zip(&exact) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
        let cov = epoch_global_covariance(&snap);
        let exact = hinn_linalg::covariance_matrix(&data);
        assert_eq!(cov.rows(), exact.rows());
        for (a, b) in cov.as_slice().iter().zip(exact.as_slice()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
        // A new epoch is a new shell: the cache key moves with the chain.
        dh.append(&[vec![100.0, 100.0, 5.0]]).expect("append");
        let moved = epoch_global_mean(&dh.snapshot());
        assert!(!Arc::ptr_eq(&mean, &moved));
    }

    #[test]
    fn repeated_sessions_reuse_one_shell() {
        let data = pts();
        let a = dataset_artifacts(&data);
        let b = dataset_artifacts(&data);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n_points(), 20);
        assert_eq!(a.dims(), 3);
    }
}
