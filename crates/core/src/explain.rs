//! Per-neighbor explanations.
//!
//! The paper's central pitch is that the user *understands* why the
//! returned neighbors are meaningful, because they watched the views in
//! which those neighbors clustered with the query. This module makes that
//! understanding queryable after the fact: for any returned point, which
//! views included it in the user's selection, through which attributes
//! (projection directions) those views looked, and how close the point sat
//! to the query in each.
//!
//! Requires the session to have run with
//! `SearchConfig::record_profiles = true` and needs the original data to
//! re-derive per-view membership (the transcript stores the views, not the
//! per-point pick lists).

use crate::search::SearchOutcome;
use hinn_user::UserResponse;

/// One view's contribution to a neighbor's meaningfulness.
#[derive(Clone, Debug)]
pub struct ViewEvidence {
    /// Major iteration (0-based).
    pub major: usize,
    /// Minor iteration (0-based).
    pub minor: usize,
    /// Was the point inside the user's selection in this view?
    pub picked: bool,
    /// Projected distance from the point to the query in this view.
    pub projected_distance: f64,
    /// For each of the view's two directions: the dominant original
    /// attribute index and its weight in the direction (the
    /// interpretability handle — for axis-parallel views the weight is 1).
    pub dominant_attributes: [(usize, f64); 2],
}

/// The full explanation of one neighbor.
#[derive(Clone, Debug)]
pub struct NeighborExplanation {
    /// The explained point's original index.
    pub index: usize,
    /// Final meaningfulness probability.
    pub probability: f64,
    /// Per-view evidence (only views whose recorded profile still contains
    /// the point — later major iterations drop filtered points).
    pub evidence: Vec<ViewEvidence>,
}

impl NeighborExplanation {
    /// Number of views that picked this point.
    pub fn times_picked(&self) -> usize {
        self.evidence.iter().filter(|e| e.picked).count()
    }
}

/// Explain why `index` was (or was not) a meaningful neighbor in this
/// session (see module docs).
///
/// # Panics
/// Panics if `index` is out of range or the session was run without
/// profile recording.
pub fn explain_neighbor(
    outcome: &SearchOutcome,
    points: &[Vec<f64>],
    query: &[f64],
    index: usize,
) -> NeighborExplanation {
    assert!(
        index < outcome.probabilities.len(),
        "explain_neighbor: index out of range"
    );
    let mut evidence = Vec::new();
    for minor in outcome.transcript.iter_minors() {
        let Some(profile) = minor.profile.as_ref() else {
            panic!("explain_neighbor: session must record profiles");
        };
        // The view's rows map to original ids through the projection of
        // the then-current data; recompute this point's projection
        // directly from the ambient coordinates.
        let coords = minor.projection.project(&points[index]);
        let qcoords = minor.projection.project(query);
        let projected_distance = hinn_linalg::vector::dist(&coords, &qcoords);

        // Was it picked? Re-apply the recorded response to this point's
        // projected position.
        let picked = match &minor.response {
            UserResponse::Discard => false,
            UserResponse::Threshold(tau) => {
                // Inside the (τ, Q)-connected region ⇔ its cell is in the
                // mask and the point was part of the view's data. Points
                // filtered out in earlier majors were not on screen.
                let on_screen = profile
                    .points
                    .iter()
                    .any(|p| (p[0] - coords[0]).abs() < 1e-9 && (p[1] - coords[1]).abs() < 1e-9);
                on_screen && {
                    let mask = profile.connected_mask(*tau, hinn_kde::CornerRule::AtLeastThree);
                    profile
                        .grid
                        .spec
                        .cell_of(coords[0], coords[1])
                        .map(|(cx, cy)| mask.contains(cx, cy))
                        .unwrap_or(false)
                }
            }
            UserResponse::Polygon(lines) => {
                let qsig: Vec<bool> = lines.iter().map(|l| l.side(profile.query)).collect();
                lines
                    .iter()
                    .zip(&qsig)
                    .all(|(l, &s)| l.side([coords[0], coords[1]]) == s)
            }
        };

        // Dominant original attribute per direction. The `>=` keeps the
        // old `max_by` tie behavior (last maximum wins) and, unlike the
        // old `partial_cmp().expect()`, never panics on a NaN weight.
        let mut dominant = [(0usize, 0.0f64); 2];
        for (k, dir) in minor.projection.basis().iter().enumerate().take(2) {
            let mut best = (0usize, 0.0f64);
            for (attr, &weight) in dir.iter().enumerate() {
                if weight.abs() >= best.1.abs() {
                    best = (attr, weight);
                }
            }
            dominant[k] = best;
        }

        evidence.push(ViewEvidence {
            major: minor.major,
            minor: minor.minor,
            picked,
            projected_distance,
            dominant_attributes: dominant,
        });
    }
    NeighborExplanation {
        index,
        probability: outcome.probabilities[index],
        evidence,
    }
}

/// Render an explanation as human-readable text.
pub fn explanation_text(e: &NeighborExplanation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "point #{}: meaningfulness probability {:.3}, picked in {}/{} views",
        e.index,
        e.probability,
        e.times_picked(),
        e.evidence.len()
    );
    for v in &e.evidence {
        let _ = writeln!(
            out,
            "  major {} view {}: {} at projected distance {:.3} (axes ~ attr {} ({:.2}), attr {} ({:.2}))",
            v.major + 1,
            v.minor + 1,
            if v.picked { "PICKED" } else { "not picked" },
            v.projected_distance,
            v.dominant_attributes[0].0,
            v.dominant_attributes[0].1,
            v.dominant_attributes[1].0,
            v.dominant_attributes[1].1,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InteractiveSearch, ProjectionMode, SearchConfig};
    use hinn_user::HeuristicUser;

    fn session() -> (Vec<Vec<f64>>, Vec<f64>, SearchOutcome) {
        let mut state = 0xDEAD1234u64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for _ in 0..30 {
            let mut p: Vec<f64> = (0..6).map(|_| unif() * 100.0).collect();
            p[0] = 50.0 + (unif() - 0.5) * 2.0;
            p[1] = 50.0 + (unif() - 0.5) * 2.0;
            p[2] = 50.0 + (unif() - 0.5) * 2.0;
            pts.push(p);
        }
        for _ in 0..90 {
            pts.push((0..6).map(|_| unif() * 100.0).collect());
        }
        let query = vec![50.0; 6];
        let config = SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            record_profiles: true,
            ..SearchConfig::default()
                .with_support(10)
                .with_mode(ProjectionMode::AxisParallel)
        };
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(config)
            .run_with(
                &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
                &query,
                &mut user,
                crate::search::RunOptions::default(),
            )
            .expect("explain fixture session")
            .into_outcome();
        (pts, query, outcome)
    }

    #[test]
    fn cluster_member_has_pick_evidence() {
        let (pts, query, outcome) = session();
        let top = outcome.neighbors[0];
        let e = explain_neighbor(&outcome, &pts, &query, top);
        assert_eq!(e.index, top);
        assert_eq!(e.evidence.len(), outcome.transcript.total_views());
        assert!(
            e.times_picked() >= 1,
            "the top neighbor must have been picked somewhere"
        );
        // Its probability matches the outcome's.
        assert_eq!(e.probability, outcome.probabilities[top]);
    }

    #[test]
    fn background_point_has_fewer_picks_than_member() {
        let (pts, query, outcome) = session();
        let member = explain_neighbor(&outcome, &pts, &query, 0);
        // Find the background point with the lowest probability.
        let worst = (30..120)
            .min_by(|&a, &b| {
                outcome.probabilities[a]
                    .partial_cmp(&outcome.probabilities[b])
                    .unwrap()
            })
            .unwrap();
        let bg = explain_neighbor(&outcome, &pts, &query, worst);
        assert!(member.times_picked() > bg.times_picked());
    }

    #[test]
    fn text_rendering_contains_the_story() {
        let (pts, query, outcome) = session();
        let e = explain_neighbor(&outcome, &pts, &query, outcome.neighbors[0]);
        let text = explanation_text(&e);
        assert!(text.contains("meaningfulness probability"));
        assert!(text.contains("PICKED"));
        assert!(text.contains("attr"));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_panics() {
        let (pts, query, outcome) = session();
        explain_neighbor(&outcome, &pts, &query, 10_000);
    }
}
