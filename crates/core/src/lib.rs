//! The interactive nearest-neighbor search system — the paper's primary
//! contribution (Figs. 2–8 of Aggarwal, ICDE 2002).
//!
//! The system runs *major iterations*, each consisting of `d/2` *minor
//! iterations*. Every minor iteration:
//!
//! 1. finds the most discriminatory query-centered 2-D projection inside
//!    the subspace orthogonal to everything already shown
//!    ([`projection::find_query_centered_projection`], Figs. 3–4),
//! 2. renders its kernel-density visual profile and asks the
//!    [`hinn_user::UserModel`] to place a density separator — or dismiss
//!    the view (Figs. 5–6),
//! 3. turns the separator into the set of points density-connected to the
//!    query and updates the preference counts ([`counts`], Fig. 7).
//!
//! After each major iteration the counts become *meaningfulness
//! probabilities* under the independent-Bernoulli null ([`meaning`],
//! Fig. 8); points never picked are removed; and the loop terminates when
//! the top-`s` ranking stabilizes ([`search`], Fig. 2). The final
//! probabilities feed the steep-drop diagnosis ([`diagnosis`], §4.1–4.2)
//! which either reports the *natural* neighbor set or declares the data
//! not amenable to meaningful nearest-neighbor search.
//!
//! Every piece is independently usable; [`search::InteractiveSearch`] is
//! the packaged driver.

// The robustness wall: the core crate's non-test code must not contain
// hidden panic sites — fallible paths return `HinnError`, intentional
// aborts use an explicit `panic!` with a message. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifacts;
pub mod batch;
pub mod cache;
pub mod candidates;
pub mod config;
pub mod counts;
pub mod degrade;
pub mod diagnosis;
pub mod engine;
pub mod error;
pub mod explain;
pub mod meaning;
pub mod projection;
pub mod report;
pub mod search;
pub mod snapshot;
pub mod transcript;

pub use batch::{BatchRunner, QueryReport};
pub use cache::SessionCache;
pub use candidates::CandidateSource;
pub use config::{BandwidthMode, ProjectionMode, SearchConfig};
pub use degrade::{DegradationEvent, DegradationKind, DegradationLog};
pub use diagnosis::SearchDiagnosis;
pub use engine::{OwnedSessionEngine, SessionEngine, Step, ViewRequest};
pub use error::HinnError;
pub use explain::{explain_neighbor, explanation_text, NeighborExplanation};
pub use hinn_cache::CachePolicy;
pub use hinn_data::{DatasetHandle, EpochError, EpochSnapshot};
pub use hinn_par::Parallelism;
pub use search::{InteractiveSearch, RunOptions, RunOutput, SearchOutcome};
pub use snapshot::SessionSnapshot;
pub use transcript::{MinorPhases, MinorRecord, Transcript};
