//! The graceful-degradation ladder's audit trail.
//!
//! When the engine survives a numerical pathology by downgrading itself —
//! falling back from PCA to axis-parallel candidates, dropping a
//! zero-variance direction, flooring a collapsed bandwidth, skipping an
//! unusable view — the recovery must be *visible*, not silent: a session
//! that quietly degraded is exactly the kind of "plausible but wrong"
//! result the paper warns about. Every rung taken is recorded as a
//! [`DegradationEvent`] in the transcript's [`DegradationLog`] and counted
//! through `hinn-obs` under `fault.downgrade.*`, so both interactive
//! callers and telemetry dashboards see how much of the answer rests on
//! fallbacks.

use std::fmt;

/// Which rung of the ladder fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradationKind {
    /// The Jacobi eigensolver failed or did not converge on a query-cluster
    /// covariance; the candidate pool fell back to axis-parallel
    /// directions (which cannot overfit and need no decomposition).
    EigenFallback,
    /// A query-cluster covariance was flagged degenerate; its PCA
    /// candidates were dropped and only axis marginals competed.
    DegenerateCovariance,
    /// Candidate directions along which the *data* has (numerically) zero
    /// variance were dropped: a variance ratio against a zero denominator
    /// ranks on noise, not signal.
    DroppedZeroVariance,
    /// A visual profile's KDE bandwidth collapsed (zero-spread projection)
    /// and was floored to a small positive value.
    BandwidthFloored,
    /// A minor iteration's view could not be built at all and was skipped;
    /// the session continued in the remaining subspace.
    SkippedMinorView,
    /// A batch query failed and was retried once with a degraded
    /// configuration (axis-parallel projections, fixed bandwidth).
    DegradedRetry,
    /// An approximate candidate source returned fewer ids than the
    /// session's effective support (poisoned points are excluded from the
    /// index, disconnected graph components are unreachable); the seed
    /// fell back to the exact linear scan.
    StarvedSeed,
}

impl DegradationKind {
    /// Stable snake_case name (used in event text and test assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::EigenFallback => "eigen_fallback",
            Self::DegenerateCovariance => "degenerate_covariance",
            Self::DroppedZeroVariance => "dropped_zero_variance",
            Self::BandwidthFloored => "bandwidth_floored",
            Self::SkippedMinorView => "skipped_minor_view",
            Self::DegradedRetry => "degraded_retry",
            Self::StarvedSeed => "starved_seed",
        }
    }

    /// The `hinn-obs` counter bumped when this rung fires.
    pub fn metric(self) -> &'static str {
        match self {
            Self::EigenFallback => "fault.downgrade.eigen_fallback",
            Self::DegenerateCovariance => "fault.downgrade.degenerate_covariance",
            Self::DroppedZeroVariance => "fault.downgrade.dropped_zero_variance",
            Self::BandwidthFloored => "fault.downgrade.bandwidth_floored",
            Self::SkippedMinorView => "fault.downgrade.skipped_minor_view",
            Self::DegradedRetry => "fault.downgrade.degraded_retry",
            Self::StarvedSeed => "fault.downgrade.starved_seed",
        }
    }
}

impl fmt::Display for DegradationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rung of the ladder actually taken, with enough context to audit it.
#[derive(Clone, Debug)]
pub struct DegradationEvent {
    /// Major iteration the event belongs to (`None` when it happened
    /// outside the minor loop, e.g. a batch-level retry).
    pub major: Option<usize>,
    /// Minor iteration the event belongs to.
    pub minor: Option<usize>,
    /// Which rung fired.
    pub kind: DegradationKind,
    /// Free-form detail: what collapsed and what the fallback was.
    pub detail: String,
}

impl DegradationEvent {
    /// An event not yet attributed to a specific view (the search driver
    /// stamps `major`/`minor` when it absorbs helper-level events).
    pub fn unplaced(kind: DegradationKind, detail: impl Into<String>) -> Self {
        Self {
            major: None,
            minor: None,
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.major, self.minor) {
            (Some(ma), Some(mi)) => {
                write!(f, "[major {ma} minor {mi}] {}: {}", self.kind, self.detail)
            }
            _ => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

/// Ordered record of every degradation a session went through.
#[derive(Clone, Debug, Default)]
pub struct DegradationLog {
    /// The events, in the order they fired.
    pub events: Vec<DegradationEvent>,
}

impl DegradationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Did the session complete without taking any ladder rung?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// How many events of `kind` fired.
    pub fn count(&self, kind: DegradationKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterate the events in firing order.
    pub fn iter(&self) -> impl Iterator<Item = &DegradationEvent> {
        self.events.iter()
    }

    /// Record `event`, bumping its `fault.downgrade.*` counter.
    pub fn push(&mut self, event: DegradationEvent) {
        hinn_obs::counter(event.kind.metric(), 1);
        self.events.push(event);
    }

    /// Absorb helper-level events, stamping them with the view they
    /// belong to.
    pub fn absorb(&mut self, events: Vec<DegradationEvent>, major: usize, minor: usize) {
        for mut e in events {
            e.major = Some(major);
            e.minor = Some(minor);
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_and_stamps() {
        let mut log = DegradationLog::new();
        assert!(log.is_empty());
        log.push(DegradationEvent::unplaced(
            DegradationKind::BandwidthFloored,
            "zero-spread projection",
        ));
        log.absorb(
            vec![
                DegradationEvent::unplaced(DegradationKind::EigenFallback, "stalled"),
                DegradationEvent::unplaced(DegradationKind::EigenFallback, "stalled again"),
            ],
            2,
            1,
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(DegradationKind::EigenFallback), 2);
        assert_eq!(log.count(DegradationKind::DegradedRetry), 0);
        let last = &log.events[2];
        assert_eq!((last.major, last.minor), (Some(2), Some(1)));
        assert!(last.to_string().contains("major 2 minor 1"));
        assert!(log.events[0].to_string().starts_with("bandwidth_floored"));
    }

    #[test]
    fn degradations_bump_obs_counters() {
        let recorder = std::sync::Arc::new(hinn_obs::SessionRecorder::new());
        {
            let _g = hinn_obs::install(recorder.clone());
            let mut log = DegradationLog::new();
            log.push(DegradationEvent::unplaced(
                DegradationKind::SkippedMinorView,
                "profile unavailable",
            ));
            log.push(DegradationEvent::unplaced(
                DegradationKind::SkippedMinorView,
                "profile unavailable again",
            ));
        }
        let report = recorder.report();
        assert_eq!(
            report.counters.get("fault.downgrade.skipped_minor_view"),
            Some(&2)
        );
    }
}
