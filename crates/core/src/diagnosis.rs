//! Search-level meaningfulness diagnosis (§4.1–§4.2).
//!
//! Combines the steep-drop analysis of the final probabilities with
//! session-level signals (how many views the user dismissed) into the
//! verdict the paper's system reports: either "here is the natural set of
//! meaningful neighbors" or "this data is not amenable to meaningful
//! nearest-neighbor search".

use crate::transcript::Transcript;
use hinn_metrics::drop::{detect_steep_drop, DropConfig, DropVerdict};

/// The system's verdict on a completed search session.
#[derive(Clone, Debug, PartialEq)]
pub enum SearchDiagnosis {
    /// A natural, statistically coherent neighbor set exists.
    Meaningful {
        /// Size of the natural neighbor set (points above the cliff).
        natural_k: usize,
        /// Probability gap at the cliff.
        gap: f64,
        /// Mean probability above the cliff.
        top_mean: f64,
    },
    /// Nearest-neighbor search on this data is not meaningful.
    NotMeaningful {
        /// Largest probability gap observed.
        best_gap: f64,
        /// Human-readable explanation (dismissal rate, flat probabilities…).
        reason: String,
    },
}

impl SearchDiagnosis {
    /// `true` for the meaningful variant.
    pub fn is_meaningful(&self) -> bool {
        matches!(self, SearchDiagnosis::Meaningful { .. })
    }

    /// Derive the verdict from final probabilities and the transcript.
    pub fn derive(
        probabilities: &[f64],
        transcript: &Transcript,
        drop_config: &DropConfig,
    ) -> Self {
        let verdict = detect_steep_drop(probabilities, drop_config);
        let views = transcript.total_views();
        let dismissed = transcript.total_dismissed();
        let dismissal_rate = if views > 0 {
            dismissed as f64 / views as f64
        } else {
            1.0
        };
        match verdict {
            DropVerdict::Meaningful {
                natural_k,
                gap,
                top_mean,
            } => SearchDiagnosis::Meaningful {
                natural_k,
                gap,
                top_mean,
            },
            DropVerdict::NotMeaningful { best_gap } => {
                let mut reason = format!(
                    "no steep drop in the sorted meaningfulness probabilities \
                     (best gap {best_gap:.3})"
                );
                if dismissal_rate > 0.5 {
                    reason.push_str(&format!(
                        "; user dismissed {dismissed}/{views} views — no projection \
                         exposed a distinct query cluster"
                    ));
                }
                SearchDiagnosis::NotMeaningful { best_gap, reason }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::{MajorRecord, MinorRecord};
    use hinn_linalg::Subspace;
    use hinn_user::UserResponse;

    fn transcript(picked: usize, dismissed: usize) -> Transcript {
        let mut minors = Vec::new();
        for i in 0..picked {
            minors.push(MinorRecord {
                major: 0,
                minor: i,
                projection: Subspace::full(2),
                variance_ratios: vec![],
                response: UserResponse::Threshold(0.1),
                n_picked: 5,
                query_peak_ratio: 0.8,
                profile: None,
                phases: None,
            });
        }
        for i in 0..dismissed {
            minors.push(MinorRecord {
                major: 0,
                minor: picked + i,
                projection: Subspace::full(2),
                variance_ratios: vec![],
                response: UserResponse::Discard,
                n_picked: 0,
                query_peak_ratio: 0.1,
                profile: None,
                phases: None,
            });
        }
        Transcript {
            majors: vec![MajorRecord {
                minors,
                n_points_before: 100,
                n_points_after: 50,
                overlap_with_previous: None,
            }],
            ..Transcript::default()
        }
    }

    #[test]
    fn cliffy_probabilities_are_meaningful() {
        let mut probs = vec![0.95; 8];
        probs.extend(vec![0.05; 92]);
        let d = SearchDiagnosis::derive(&probs, &transcript(5, 1), &DropConfig::default());
        match d {
            SearchDiagnosis::Meaningful { natural_k, .. } => assert_eq!(natural_k, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flat_probabilities_not_meaningful_with_reason() {
        let probs = vec![0.2; 100];
        let d = SearchDiagnosis::derive(&probs, &transcript(1, 9), &DropConfig::default());
        match d {
            SearchDiagnosis::NotMeaningful { reason, .. } => {
                assert!(reason.contains("no steep drop"));
                assert!(reason.contains("dismissed 9/10"), "{reason}");
            }
            other => panic!("{other:?}"),
        }
        assert!(
            !SearchDiagnosis::derive(&probs, &transcript(1, 9), &DropConfig::default())
                .is_meaningful()
        );
    }

    #[test]
    fn low_dismissal_rate_omits_dismissal_note() {
        let probs = vec![0.2; 100];
        let d = SearchDiagnosis::derive(&probs, &transcript(9, 1), &DropConfig::default());
        match d {
            SearchDiagnosis::NotMeaningful { reason, .. } => {
                assert!(!reason.contains("dismissed"), "{reason}");
            }
            other => panic!("{other:?}"),
        }
    }
}
