//! Query-centered projection finding (Figs. 3 and 4 of the paper).
//!
//! [`find_query_centered_projection`] iteratively refines a subspace `E_p`
//! starting from the current subspace `E_c`: in each round the `s` points
//! nearest to the query *inside* `E_p` form the tentative query cluster
//! `N_p`, and [`query_cluster_subspace`] shrinks `E_p` to the directions in
//! which `N_p` is tightest relative to the whole data (smallest variance
//! ratio `λᵢ/γᵢ`). The dimensionality halves each round until a 2-D
//! projection remains. The gradual halving matters: `N_p` and `E_p` depend
//! on each other, and the refinement lets each sharpen the other (§2.1).
//!
//! Numerical pathologies do not abort the search — they walk a
//! **degradation ladder** recorded as [`DegradationEvent`]s: an
//! eigensolver failure or non-convergence falls back to the axis-parallel
//! candidate pool, a degenerate query-cluster covariance drops its PCA
//! candidates, and directions with zero *data* variance are dropped
//! rather than ranked against a floored denominator.

use crate::cache::{ProjectionCacheCtx, SessionCache};
use crate::config::ProjectionMode;
use crate::degrade::{DegradationEvent, DegradationKind};
use crate::error::HinnError;
use hinn_linalg::{covariance_matrix, try_jacobi_eigen, Matrix, Parallelism, Subspace};
use hinn_par::fill_chunks;
use std::sync::Arc;

/// Result of one projection search: the 2-D projection to show the user and
/// the complementary subspace that the remaining minor iterations must use.
#[derive(Clone, Debug)]
pub struct ProjectionResult {
    /// The discriminatory 2-D projection (ambient coordinates).
    pub projection: Subspace,
    /// `E_c ⊖ projection`: where the next minor iteration searches.
    pub remainder: Subspace,
    /// Variance ratios `λᵢ/γᵢ` of the final 2 directions (diagnostic).
    pub variance_ratios: Vec<f64>,
}

/// Fig. 4: shrink to the `l` directions of `current` in which `cluster` is
/// best distinguished from `data`.
///
/// `cluster` and `data` are point sets in **`current`-subspace coordinates**
/// (length `current.dim()`). In [`ProjectionMode::Arbitrary`] the candidate
/// directions are the principal components of the cluster; in
/// [`ProjectionMode::AxisParallel`] they are the coordinate axes of
/// `current` (which, when the search starts from the full space, are the
/// original attributes). Returns the new subspace in ambient coordinates
/// together with the chosen directions' variance ratios.
pub fn query_cluster_subspace(
    current: &Subspace,
    cluster_coords: &[Vec<f64>],
    data_coords: &[Vec<f64>],
    l: usize,
) -> (Subspace, Vec<f64>) {
    query_cluster_subspace_mode(
        current,
        cluster_coords,
        data_coords,
        l,
        ProjectionMode::Arbitrary,
    )
}

/// [`query_cluster_subspace`] with an explicit projection mode.
pub fn query_cluster_subspace_mode(
    current: &Subspace,
    cluster_coords: &[Vec<f64>],
    data_coords: &[Vec<f64>],
    l: usize,
    mode: ProjectionMode,
) -> (Subspace, Vec<f64>) {
    query_cluster_subspace_mode_with(
        Parallelism::serial(),
        current,
        cluster_coords,
        data_coords,
        l,
        mode,
    )
}

/// [`query_cluster_subspace_mode`] with an explicit thread budget for the
/// covariance and variance scans. Bit-identical to the serial path for
/// every budget.
///
/// # Panics
/// Panics on invalid input; [`try_query_cluster_subspace_mode_with`] is
/// the non-panicking form.
pub fn query_cluster_subspace_mode_with(
    par: Parallelism,
    current: &Subspace,
    cluster_coords: &[Vec<f64>],
    data_coords: &[Vec<f64>],
    l: usize,
    mode: ProjectionMode,
) -> (Subspace, Vec<f64>) {
    let mut events = Vec::new();
    match try_query_cluster_subspace_mode_with(
        par,
        current,
        cluster_coords,
        data_coords,
        l,
        mode,
        &mut events,
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// The axis-parallel candidate pool: coordinate axes of the current
/// subspace, scored by the cluster's marginal variances. Robust by
/// construction (no decomposition, cannot overfit) — it is both the
/// [`ProjectionMode::AxisParallel`] pool and the ladder's fallback when
/// the PCA pool is unusable.
fn axis_candidates(
    par: Parallelism,
    cluster_coords: &[Vec<f64>],
    m: usize,
) -> Vec<(Vec<f64>, f64)> {
    let var = hinn_linalg::stats::coordinate_variances_with(par, cluster_coords);
    (0..m)
        .map(|i| {
            let mut e = vec![0.0; m];
            e[i] = 1.0;
            (e, var[i])
        })
        .collect()
}

/// Fallible [`query_cluster_subspace_mode_with`]: invalid input comes back
/// as [`HinnError::InvalidInput`], and every ladder rung taken while
/// assembling the candidate pool is appended to `events` (unstamped — the
/// caller knows which view it is building).
#[allow(clippy::too_many_arguments)]
pub fn try_query_cluster_subspace_mode_with(
    par: Parallelism,
    current: &Subspace,
    cluster_coords: &[Vec<f64>],
    data_coords: &[Vec<f64>],
    l: usize,
    mode: ProjectionMode,
    events: &mut Vec<DegradationEvent>,
) -> Result<(Subspace, Vec<f64>), HinnError> {
    try_query_cluster_subspace_mode_ctx(
        par,
        current,
        cluster_coords,
        data_coords,
        l,
        mode,
        events,
        None,
    )
}

/// [`try_query_cluster_subspace_mode_with`] with an optional session-cache
/// context: the data variance `γ` along each candidate direction — a pure
/// function of (alive set, subspace, direction) — is memoized across the
/// pipeline's support restarts and across repeated sessions.
#[allow(clippy::too_many_arguments)]
fn try_query_cluster_subspace_mode_ctx(
    par: Parallelism,
    current: &Subspace,
    cluster_coords: &[Vec<f64>],
    data_coords: &[Vec<f64>],
    l: usize,
    mode: ProjectionMode,
    events: &mut Vec<DegradationEvent>,
    ctx: Option<&ProjectionCacheCtx<'_>>,
) -> Result<(Subspace, Vec<f64>), HinnError> {
    let _span = hinn_obs::span!("projection.subspace");
    let m = current.dim();
    if l < 1 || l > m {
        return Err(HinnError::InvalidInput {
            phase: "projection.subspace",
            message: "query_cluster_subspace: l out of range".into(),
        });
    }
    if cluster_coords.is_empty() || data_coords.is_empty() {
        return Err(HinnError::InvalidInput {
            phase: "projection.subspace",
            message: "query_cluster_subspace: empty point sets".into(),
        });
    }

    // Candidate directions in `current` coordinates, with the cluster
    // variance along each.
    //
    // The arbitrary mode cannot simply trust the cluster's sample
    // covariance: when the neighborhood is small relative to `m` or
    // contaminated by non-cluster points, the covariance has artificially
    // small eigenvalues in spurious directions (pure overfitting), and
    // ranking by in-sample eigenvalue selects those artifacts. Instead the
    // candidate pool combines (a) principal components estimated on one
    // half of the cluster and (b) the coordinate axes of the current
    // subspace, with *every* candidate's cluster variance measured on the
    // held-out half. Overfit PCA directions blow up out-of-sample and
    // lose to the robust axis marginals; genuinely oblique cluster
    // structure survives the holdout and wins.
    let candidates: Vec<(Vec<f64>, f64)> = match mode {
        // The pool is only trustworthy when each half has comfortably more
        // points than dimensions; otherwise the half-sample covariance has
        // a null space and even the *held-out* scores of its eigenvectors
        // are selection-biased noise. Below that, fall back to the robust
        // axis marginals.
        ProjectionMode::Arbitrary if cluster_coords.len() >= 4 * m => {
            if hinn_fault::point("covariance.degenerate") {
                // Forced (or detected) covariance degeneracy: the PCA pool
                // is untrustworthy wholesale, so only the axis marginals
                // compete — exactly the AxisParallel pool.
                events.push(DegradationEvent::unplaced(
                    DegradationKind::DegenerateCovariance,
                    "query-cluster covariance degenerate; PCA candidates dropped, \
                     axis marginals only",
                ));
                axis_candidates(par, cluster_coords, m)
            } else {
                let half_a: Vec<Vec<f64>> = cluster_coords.iter().step_by(2).cloned().collect();
                let half_b: Vec<Vec<f64>> =
                    cluster_coords.iter().skip(1).step_by(2).cloned().collect();
                let mut pool: Vec<(Vec<f64>, f64)> = Vec::with_capacity(3 * m);
                // Cross-fitted principal components: directions from each
                // half are scored on the other half. An eigensolver that
                // rejects or fails to diagonalize a half's covariance
                // costs only that half's candidates — the axis pool below
                // keeps the view buildable (ladder rung: EigenFallback).
                for (fit, score) in [(&half_a, &half_b), (&half_b, &half_a)] {
                    let cov = hinn_linalg::covariance_matrix_with(par, fit);
                    match try_jacobi_eigen(&cov) {
                        Ok(out) if out.converged => {
                            for i in 0..m {
                                let dir = out.eigen.vector(i);
                                let held_out =
                                    hinn_linalg::stats::variance_along_with(par, score, &dir);
                                pool.push((dir, held_out));
                            }
                        }
                        Ok(out) => {
                            events.push(DegradationEvent::unplaced(
                                DegradationKind::EigenFallback,
                                format!(
                                    "eigensolver stalled after {} sweep(s) on a half-sample \
                                     covariance; falling back to axis-parallel candidates",
                                    out.sweeps
                                ),
                            ));
                        }
                        Err(e) => {
                            events.push(DegradationEvent::unplaced(
                                DegradationKind::EigenFallback,
                                format!(
                                    "eigensolver rejected a half-sample covariance ({e}); \
                                     falling back to axis-parallel candidates"
                                ),
                            ));
                        }
                    }
                }
                // Axis candidates cannot overfit, so they are scored on
                // the full cluster sample (the lowest-variance estimate
                // available).
                pool.extend(axis_candidates(par, cluster_coords, m));
                pool
            }
        }
        ProjectionMode::Arbitrary | ProjectionMode::AxisParallel => {
            axis_candidates(par, cluster_coords, m)
        }
    };

    // Variance ratio λᵢ/γᵢ with γᵢ the data variance along the direction.
    // A direction along which the *data* itself has (numerically) zero
    // spread carries no discriminating signal — its ratio would compare
    // noise against a floored denominator — so it is dropped and the drop
    // recorded (ladder rung: DroppedZeroVariance). The 1e-12 threshold
    // matches the floor the ranking historically applied.
    let mut scored: Vec<(f64, usize)> = Vec::with_capacity(candidates.len());
    let mut dropped = 0usize;
    for (i, (dir, lambda)) in candidates.iter().enumerate() {
        let gamma = match ctx {
            // Memoized exact output: the cached value is the bit pattern
            // the scan below would produce, keyed by the full input.
            Some(c) => *c
                .cache
                .gamma
                .get_or_insert_with(SessionCache::gamma_key(c.alive_fp, current, dir), || {
                    hinn_linalg::stats::variance_along_with(par, data_coords, dir)
                }),
            None => hinn_linalg::stats::variance_along_with(par, data_coords, dir),
        };
        if gamma < 1e-12 {
            dropped += 1;
            continue;
        }
        scored.push((lambda / gamma, i));
    }
    if dropped > 0 {
        events.push(DegradationEvent::unplaced(
            DegradationKind::DroppedZeroVariance,
            format!("dropped {dropped} candidate direction(s) with zero data variance"),
        ));
    }
    // Variance ratios are quotients of non-negative variances, so they are
    // never -0.0 and `total_cmp` agrees with the old partial order while
    // staying total (a NaN ratio from pathological input sorts last
    // instead of panicking).
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // Greedily collect the `l` best *linearly independent* directions (the
    // pooled candidates can overlap, e.g. an eigenvector nearly equal to an
    // axis).
    let mut picked = Subspace::empty(m);
    let mut ratios = Vec::with_capacity(l);
    for &(r, i) in &scored {
        if picked.dim() == l {
            break;
        }
        if picked.try_extend(&candidates[i].0) {
            ratios.push(r);
        }
    }
    let chosen: Vec<Vec<f64>> = picked.basis().to_vec();
    Ok((current.sub_subspace(&chosen), ratios))
}

/// Fig. 3: find the most discriminatory query-centered 2-D projection
/// inside `current` by iterative dimensionality halving.
///
/// `points` are the ambient-coordinate data (current data set `D_c`) and
/// `query` the ambient query point; `support` is the neighborhood size `s`.
///
/// # Panics
/// Panics if `current.dim() < 2` or `points` is empty.
pub fn find_query_centered_projection(
    points: &[Vec<f64>],
    query: &[f64],
    current: &Subspace,
    support: usize,
    mode: ProjectionMode,
) -> ProjectionResult {
    find_query_centered_projection_with(
        Parallelism::serial(),
        points,
        query,
        current,
        support,
        mode,
    )
}

/// [`find_query_centered_projection`] with an explicit thread budget for
/// the per-round projection, distance, covariance, and variance scans.
/// Bit-identical to the serial path for every budget.
///
/// # Panics
/// Panics if `current.dim() < 2` or `points` is empty;
/// [`try_find_query_centered_projection_with`] is the non-panicking form.
pub fn find_query_centered_projection_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    current: &Subspace,
    support: usize,
    mode: ProjectionMode,
) -> ProjectionResult {
    match try_find_query_centered_projection_with(par, points, query, current, support, mode) {
        Ok((result, _events)) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`find_query_centered_projection_with`]: returns the
/// projection together with every degradation event the winning pipeline
/// run recorded (only the kept support candidate's events are reported —
/// a discarded restart's hiccups never influenced the answer).
pub fn try_find_query_centered_projection_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    current: &Subspace,
    support: usize,
    mode: ProjectionMode,
) -> Result<(ProjectionResult, Vec<DegradationEvent>), HinnError> {
    try_find_query_centered_projection_ctx(par, points, query, current, support, mode, None)
}

/// [`try_find_query_centered_projection_with`] with an optional
/// session-cache context for the per-subspace coordinate and `γ`-variance
/// memoization (see [`crate::SessionCache`]). `ctx = None` is the
/// compute-always path; results are bit-identical either way.
pub(crate) fn try_find_query_centered_projection_ctx(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    current: &Subspace,
    support: usize,
    mode: ProjectionMode,
    ctx: Option<&ProjectionCacheCtx<'_>>,
) -> Result<(ProjectionResult, Vec<DegradationEvent>), HinnError> {
    let _span = hinn_obs::span!("projection.find");
    if current.dim() < 2 {
        return Err(HinnError::InvalidInput {
            phase: "projection.find",
            message: "find_query_centered_projection: need a ≥2-D search subspace".into(),
        });
    }
    if points.is_empty() {
        return Err(HinnError::InvalidInput {
            phase: "projection.find",
            message: "find_query_centered_projection: empty data".into(),
        });
    }

    // The right neighborhood size is not knowable a priori: too small and
    // the tentative cluster N_p is all noise, too large and it is diluted
    // past recognition. Restart the halving pipeline with a few support
    // sizes around the requested one and keep the most discriminating
    // result (smallest mean variance ratio) — the computer-side equivalent
    // of trying a couple of zoom levels before showing the user a view.
    let n = points.len();
    let mut candidates: Vec<usize> = [support, support * 2, support * 3]
        .into_iter()
        .map(|s| s.max(8).min(n))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    let mut best: Option<(f64, ProjectionResult, Vec<DegradationEvent>)> = None;
    for s in candidates {
        let (result, events) =
            try_find_projection_with_support(par, points, query, current, s, mode, ctx)?;
        let score = if result.variance_ratios.is_empty() {
            f64::INFINITY
        } else {
            result.variance_ratios.iter().sum::<f64>() / result.variance_ratios.len() as f64
        };
        if best.as_ref().map(|(b, _, _)| score < *b).unwrap_or(true) {
            best = Some((score, result, events));
        }
    }
    match best {
        Some((_, result, events)) => Ok((result, events)),
        // Unreachable — the candidate list is never empty — but surfaced
        // as a typed error rather than an unwrap.
        None => Err(HinnError::DegenerateGeometry {
            phase: "projection.find",
            message: "no support candidate produced a projection".into(),
        }),
    }
}

/// One run of the Fig. 3 halving pipeline at a fixed support.
#[allow(clippy::too_many_arguments)] // internal; mirrors the pipeline input
fn try_find_projection_with_support(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    current: &Subspace,
    support: usize,
    mode: ProjectionMode,
    ctx: Option<&ProjectionCacheCtx<'_>>,
) -> Result<(ProjectionResult, Vec<DegradationEvent>), HinnError> {
    let mut events = Vec::new();
    let mut ep = current.clone();
    let mut lp = ep.dim();
    let mut ratios = Vec::new();
    while lp > 2 {
        let next_l = (lp / 2).max(2);
        // Coordinates of data and query inside the current E_p. Memoized
        // per (alive set, subspace): the three support restarts share one
        // round-1 scan, and warm sessions skip the projection entirely.
        let data_coords: Arc<Vec<Vec<f64>>> = match ctx {
            Some(c) => c
                .cache
                .coords
                .get_or_insert_with(SessionCache::coords_key(c.alive_fp, &ep), || {
                    ep.project_all_with(par, points)
                }),
            None => Arc::new(ep.project_all_with(par, points)),
        };
        let q_coords = ep.project(query);
        // The s nearest points to the query within E_p (the tentative
        // query cluster N_p).
        let scan_span = hinn_obs::span!("projection.scan");
        hinn_obs::counter("projection.points_scanned", data_coords.len() as u64);
        let mut order: Vec<(f64, usize)> = vec![(0.0, 0); data_coords.len()];
        fill_chunks(par, &mut order, |start, slice| {
            // Transpose this chunk of projected coordinates into pooled
            // column scratch and run the batch distance kernel — one
            // point per SIMD lane, bit-identical to the scalar
            // `vector::dist` per point (the per-point reduction keeps the
            // ascending-coordinate fold order).
            let m = q_coords.len();
            let len = slice.len();
            let mut colbuf = hinn_cache::PooledF64::take_zeroed(m * len);
            for off in 0..len {
                for (j, &v) in data_coords[start + off].iter().enumerate() {
                    colbuf[j * len + off] = v;
                }
            }
            let cols: Vec<&[f64]> = (0..m).map(|j| &colbuf[j * len..(j + 1) * len]).collect();
            let mut dists = hinn_cache::PooledF64::take_zeroed(len);
            hinn_linalg::simd::dist_sq_cols(&cols, &q_coords, &mut dists);
            hinn_linalg::simd::sqrt_inplace(&mut dists);
            for (off, slot) in slice.iter_mut().enumerate() {
                *slot = (dists[off], start + off);
            }
        });
        let keep = support.min(order.len());
        // Distances are non-negative, so `total_cmp` coincides with the
        // old partial order while tolerating NaN from poisoned input.
        order.select_nth_unstable_by(keep.saturating_sub(1), |a, b| {
            a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
        });
        drop(scan_span);
        let cluster_coords: Vec<Vec<f64>> = order[..keep]
            .iter()
            .map(|&(_, i)| data_coords[i].clone())
            .collect();

        let (next, r) = try_query_cluster_subspace_mode_ctx(
            par,
            &ep,
            &cluster_coords,
            &data_coords,
            next_l,
            mode,
            &mut events,
            ctx,
        )?;
        // Numerical degeneracies can shrink the basis; bail out with what
        // we have rather than loop forever.
        if next.dim() < 2 {
            break;
        }
        ep = next;
        ratios = r;
        lp = ep.dim();
    }

    // If the search subspace was already 2-D we never entered the loop.
    let projection = ep;
    let remainder = current.complement_within(&projection);
    Ok((
        ProjectionResult {
            projection,
            remainder,
            variance_ratios: ratios,
        },
        events,
    ))
}

/// Convenience for tests and diagnostics: the `l × l` covariance of points
/// in a subspace's coordinates.
pub fn subspace_covariance(points: &[Vec<f64>], subspace: &Subspace) -> Matrix {
    covariance_matrix(&subspace.project_all(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6-D data: 50 cluster points tight in dims (0,1), uniform elsewhere;
    /// 250 uniform background points. Query at the cluster center.
    fn planted() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for _ in 0..50 {
            let mut p: Vec<f64> = (0..6).map(|_| unif() * 100.0).collect();
            p[0] = 50.0 + (unif() - 0.5) * 3.0;
            p[1] = 50.0 + (unif() - 0.5) * 3.0;
            pts.push(p);
        }
        for _ in 0..250 {
            pts.push((0..6).map(|_| unif() * 100.0).collect());
        }
        (pts, vec![50.0; 6])
    }

    #[test]
    fn finds_the_discriminating_plane_axis_parallel() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let res = find_query_centered_projection(&pts, &q, &full, 50, ProjectionMode::AxisParallel);
        assert_eq!(res.projection.dim(), 2);
        assert_eq!(res.remainder.dim(), 4);
        // The projection must essentially span dims 0 and 1.
        let mut e0 = vec![0.0; 6];
        e0[0] = 1.0;
        let mut e1 = vec![0.0; 6];
        e1[1] = 1.0;
        assert!(res.projection.contains(&e0, 1e-6), "dim 0 missing");
        assert!(res.projection.contains(&e1, 1e-6), "dim 1 missing");
    }

    #[test]
    fn finds_the_discriminating_plane_arbitrary() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let res = find_query_centered_projection(&pts, &q, &full, 50, ProjectionMode::Arbitrary);
        assert_eq!(res.projection.dim(), 2);
        // The plane spanned by dims 0,1 should be close to the found one:
        // projecting e0/e1 into the projection must retain most mass.
        for axis in [0usize, 1] {
            let mut e = vec![0.0; 6];
            e[axis] = 1.0;
            let coords = res.projection.project(&e);
            let mass: f64 = coords.iter().map(|c| c * c).sum();
            assert!(
                mass > 0.7,
                "projection misses axis {axis}: retained mass {mass}"
            );
        }
    }

    #[test]
    fn remainder_is_orthogonal_complement() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let res = find_query_centered_projection(&pts, &q, &full, 40, ProjectionMode::Arbitrary);
        for a in res.projection.basis() {
            for b in res.remainder.basis() {
                assert!(hinn_linalg::vector::dot(a, b).abs() < 1e-8);
            }
        }
        assert_eq!(res.projection.dim() + res.remainder.dim(), 6);
    }

    #[test]
    fn two_dimensional_search_space_passes_through() {
        let (pts, q) = planted();
        let plane = Subspace::from_vectors(
            6,
            &[
                vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            ],
        );
        let res = find_query_centered_projection(&pts, &q, &plane, 30, ProjectionMode::Arbitrary);
        assert_eq!(res.projection.dim(), 2);
        assert_eq!(res.remainder.dim(), 0);
        for b in plane.basis() {
            assert!(res.projection.contains(b, 1e-8));
        }
    }

    #[test]
    fn variance_ratios_are_discriminative_on_planted_data() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let res = find_query_centered_projection(&pts, &q, &full, 50, ProjectionMode::AxisParallel);
        assert_eq!(res.variance_ratios.len(), 2);
        for r in &res.variance_ratios {
            assert!(*r < 0.5, "planted cluster should yield small ratios: {r}");
        }
    }

    #[test]
    fn query_cluster_subspace_picks_low_variance_axes() {
        // Cluster constant in coordinate 2, spread in 0 and 1.
        let cluster = vec![
            vec![0.0, 0.0, 5.0],
            vec![1.0, 2.0, 5.0],
            vec![2.0, 1.0, 5.0],
            vec![3.0, 3.0, 5.0],
        ];
        let data = vec![
            vec![0.0, 0.0, 0.0],
            vec![9.0, 8.0, 9.0],
            vec![4.0, 5.0, 3.0],
            vec![7.0, 2.0, 7.0],
            vec![2.0, 9.0, 1.0],
        ];
        let full = Subspace::full(3);
        let (sub, ratios) =
            query_cluster_subspace_mode(&full, &cluster, &data, 1, ProjectionMode::AxisParallel);
        assert_eq!(sub.dim(), 1);
        assert!(sub.contains(&[0.0, 0.0, 1.0], 1e-9), "should pick axis 2");
        assert!(ratios[0] < 1e-9);
    }

    #[test]
    #[should_panic(expected = "l out of range")]
    fn l_too_large_panics() {
        let full = Subspace::full(2);
        query_cluster_subspace(&full, &[vec![0.0, 0.0]], &[vec![0.0, 0.0]], 3);
    }

    #[test]
    fn try_variant_matches_panicking_variant_bit_for_bit() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        for mode in [ProjectionMode::Arbitrary, ProjectionMode::AxisParallel] {
            let plain = find_query_centered_projection(&pts, &q, &full, 50, mode);
            let (tried, events) = try_find_query_centered_projection_with(
                Parallelism::serial(),
                &pts,
                &q,
                &full,
                50,
                mode,
            )
            .expect("healthy data");
            assert!(
                events.is_empty(),
                "healthy data must not degrade: {events:?}"
            );
            assert_eq!(plain.variance_ratios.len(), tried.variance_ratios.len());
            for (a, b) in plain.variance_ratios.iter().zip(&tried.variance_ratios) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in plain
                .projection
                .basis()
                .iter()
                .zip(tried.projection.basis())
            {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn try_variant_reports_invalid_input() {
        let line = Subspace::from_vectors(3, &[vec![1.0, 0.0, 0.0]]);
        let err = try_find_query_centered_projection_with(
            Parallelism::serial(),
            &[vec![0.0; 3]],
            &[0.0; 3],
            &line,
            8,
            ProjectionMode::Arbitrary,
        )
        .expect_err("1-D search subspace");
        assert!(err.is_invalid_input());
        assert!(err.to_string().contains("≥2-D search subspace"));

        let full = Subspace::full(3);
        let err = try_find_query_centered_projection_with(
            Parallelism::serial(),
            &[],
            &[0.0; 3],
            &full,
            8,
            ProjectionMode::Arbitrary,
        )
        .expect_err("empty data");
        assert!(err.to_string().contains("empty data"));
    }

    #[test]
    fn forced_eigen_fault_falls_back_to_axis_parallel_pool() {
        // With `eigen.converge` forced, every PCA half fails and the
        // Arbitrary pool collapses to the axis marginals — the projection
        // must equal the explicit AxisParallel run bit for bit, and the
        // fallback must be recorded.
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("eigen.converge", hinn_fault::FaultMode::Always),
        );
        let (faulted, events) = {
            let _g = hinn_fault::install_local(plan.clone());
            try_find_query_centered_projection_with(
                Parallelism::serial(),
                &pts,
                &q,
                &full,
                50,
                ProjectionMode::Arbitrary,
            )
            .expect("fallback keeps the search alive")
        };
        assert!(plan.fired("eigen.converge") > 0);
        assert!(
            events
                .iter()
                .any(|e| e.kind == DegradationKind::EigenFallback),
            "fallback must be recorded: {events:?}"
        );
        let axis =
            find_query_centered_projection(&pts, &q, &full, 50, ProjectionMode::AxisParallel);
        for (a, b) in faulted
            .projection
            .basis()
            .iter()
            .zip(axis.projection.basis())
        {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "faulted ≠ axis-parallel");
            }
        }
        for (a, b) in faulted.variance_ratios.iter().zip(&axis.variance_ratios) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn forced_degenerate_covariance_drops_the_pca_pool() {
        let (pts, q) = planted();
        let full = Subspace::full(6);
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new()
                .with("covariance.degenerate", hinn_fault::FaultMode::Always),
        );
        let (faulted, events) = {
            let _g = hinn_fault::install_local(plan.clone());
            try_find_query_centered_projection_with(
                Parallelism::serial(),
                &pts,
                &q,
                &full,
                50,
                ProjectionMode::Arbitrary,
            )
            .expect("axis pool keeps the search alive")
        };
        assert!(plan.fired("covariance.degenerate") > 0);
        assert!(events
            .iter()
            .any(|e| e.kind == DegradationKind::DegenerateCovariance));
        let axis =
            find_query_centered_projection(&pts, &q, &full, 50, ProjectionMode::AxisParallel);
        for (a, b) in faulted
            .projection
            .basis()
            .iter()
            .zip(axis.projection.basis())
        {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn zero_variance_directions_are_dropped_and_logged() {
        // Data constant in coordinate 2: that axis has zero data variance
        // and must be dropped from the ranking rather than win with a
        // floored denominator.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let data: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![unif() * 10.0, unif() * 10.0, 7.0])
            .collect();
        let cluster: Vec<Vec<f64>> = data[..10].to_vec();
        let full = Subspace::full(3);
        let mut events = Vec::new();
        let (sub, _ratios) = try_query_cluster_subspace_mode_with(
            Parallelism::serial(),
            &full,
            &cluster,
            &data,
            2,
            ProjectionMode::AxisParallel,
            &mut events,
        )
        .expect("two informative axes remain");
        assert_eq!(sub.dim(), 2);
        assert!(
            !sub.contains(&[0.0, 0.0, 1.0], 1e-9),
            "the constant axis must not be selected"
        );
        assert!(events
            .iter()
            .any(|e| e.kind == DegradationKind::DroppedZeroVariance));
    }
}
