//! Batch evaluation: run many queries against one data set.
//!
//! Real deployments (and the paper's own evaluation protocol) ask the same
//! question for a set of query points — "what are the natural neighbors of
//! each of these, and how meaningful are they?". [`BatchRunner`] packages
//! that: one shared data set and configuration, a user-model factory (each
//! query gets a fresh user, as in the paper's per-query sessions), and
//! parallel execution across queries with `std::thread::scope`.

use crate::config::SearchConfig;
use crate::diagnosis::SearchDiagnosis;
use crate::search::{InteractiveSearch, SearchOutcome};
use hinn_par::Parallelism;
use hinn_user::UserModel;
use std::time::Duration;

/// Result of one query in a batch.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Index into the batch's query list.
    pub query_index: usize,
    /// The returned neighbor set: the natural set when the session was
    /// meaningful, the top-`s` ranking otherwise.
    pub neighbors: Vec<usize>,
    /// The session's verdict.
    pub diagnosis: SearchDiagnosis,
    /// Major iterations run.
    pub majors_run: usize,
    /// Views shown / dismissed.
    pub views: (usize, usize),
    /// Wall-clock time of this query's session.
    pub wall: Duration,
    /// Intra-query thread budget the session ran with (the batch budget
    /// divided across inter-query workers — see [`Parallelism::split`]).
    pub intra_threads: usize,
}

impl QueryReport {
    fn from_outcome(
        query_index: usize,
        outcome: &SearchOutcome,
        wall: Duration,
        intra_threads: usize,
    ) -> Self {
        let neighbors = outcome
            .natural_neighbors()
            .unwrap_or_else(|| outcome.neighbors.clone());
        Self {
            query_index,
            neighbors,
            diagnosis: outcome.diagnosis.clone(),
            majors_run: outcome.majors_run,
            views: (
                outcome.transcript.total_views(),
                outcome.transcript.total_dismissed(),
            ),
            wall,
            intra_threads,
        }
    }
}

/// Multi-query driver (see module docs).
pub struct BatchRunner<'a> {
    points: &'a [Vec<f64>],
    config: SearchConfig,
    budget: Parallelism,
}

impl<'a> BatchRunner<'a> {
    /// Create a runner over `points` with the shared `config`. The thread
    /// budget defaults to the config's [`SearchConfig::parallelism`].
    pub fn new(points: &'a [Vec<f64>], config: SearchConfig) -> Self {
        config.validate();
        let budget = config.parallelism;
        Self {
            points,
            config,
            budget,
        }
    }

    /// Cap the worker-thread count (default: the config's parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "BatchRunner: need at least one thread");
        self.budget = Parallelism::fixed(threads);
        self
    }

    /// Set the total thread budget. It is divided between inter-query
    /// workers and each session's intra-query parallelism so nested
    /// sessions never oversubscribe the machine.
    pub fn with_parallelism(mut self, budget: Parallelism) -> Self {
        self.budget = budget;
        self
    }

    /// Run every query, constructing a fresh user per query via
    /// `make_user`. Reports come back in query order.
    pub fn run<F>(&self, queries: &[Vec<f64>], make_user: F) -> Vec<QueryReport>
    where
        F: Fn() -> Box<dyn UserModel> + Sync,
    {
        let n = queries.len();
        let workers = self.budget.threads().min(n.max(1));
        // Each worker runs sessions whose intra-query hot paths get an
        // equal share of the remaining budget. Results do not depend on
        // this split (bit-identical under any Parallelism); only the
        // schedule does.
        let mut session_config = self.config.clone();
        session_config.parallelism = self.budget.split(workers);
        let intra_threads = session_config.parallelism.threads();
        let mut reports: Vec<Option<QueryReport>> = (0..n).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<&mut Option<QueryReport>>> =
            reports.iter_mut().map(std::sync::Mutex::new).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut user = make_user();
                    let t0 = std::time::Instant::now();
                    let outcome = InteractiveSearch::new(session_config.clone()).run(
                        self.points,
                        &queries[i],
                        user.as_mut(),
                    );
                    let wall = t0.elapsed();
                    hinn_obs::observe("batch.query_ms", wall.as_secs_f64() * 1e3);
                    **slots[i].lock().expect("slot lock") =
                        Some(QueryReport::from_outcome(i, &outcome, wall, intra_threads));
                });
            }
        });
        reports
            .into_iter()
            .map(|r| r.expect("every query produced a report"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_user::HeuristicUser;

    /// 6-D data, full-space cluster at 50 plus background.
    fn workload() -> Vec<Vec<f64>> {
        let mut state = 0xC0FFEEu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for _ in 0..30 {
            pts.push((0..6).map(|_| 50.0 + (unif() - 0.5) * 2.0).collect());
        }
        for _ in 0..90 {
            pts.push((0..6).map(|_| unif() * 100.0).collect());
        }
        pts
    }

    fn config() -> SearchConfig {
        SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            ..SearchConfig::default().with_support(10)
        }
    }

    #[test]
    fn batch_reports_in_query_order() {
        let pts = workload();
        let queries = vec![pts[0].clone(), pts[5].clone(), pts[100].clone()];
        let runner = BatchRunner::new(&pts, config());
        let reports = runner.run(&queries, || Box::new(HeuristicUser::default()));
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.query_index, i);
            assert!(!r.neighbors.is_empty());
            assert!(r.views.0 >= r.views.1);
            assert!(r.intra_threads >= 1);
            assert!(r.wall > Duration::ZERO);
        }
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let pts = workload();
        let queries: Vec<Vec<f64>> = (0..4).map(|i| pts[i * 7].clone()).collect();
        let serial = BatchRunner::new(&pts, config())
            .with_threads(1)
            .run(&queries, || Box::new(HeuristicUser::default()));
        let parallel = BatchRunner::new(&pts, config())
            .with_threads(4)
            .run(&queries, || Box::new(HeuristicUser::default()));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.majors_run, b.majors_run);
        }
    }

    #[test]
    fn empty_query_list_is_fine() {
        let pts = workload();
        let runner = BatchRunner::new(&pts, config());
        let reports = runner.run(&[], || Box::new(HeuristicUser::default()));
        assert!(reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let pts = workload();
        let _ = BatchRunner::new(&pts, config()).with_threads(0);
    }

    #[test]
    fn nested_budget_matches_serial_budget() {
        // A total budget split between inter-query workers and intra-query
        // hot paths must not change any answer.
        let pts = workload();
        let queries: Vec<Vec<f64>> = (0..4).map(|i| pts[i * 7].clone()).collect();
        let serial = BatchRunner::new(&pts, config())
            .with_parallelism(Parallelism::serial())
            .run(&queries, || Box::new(HeuristicUser::default()));
        let budgeted = BatchRunner::new(&pts, config())
            .with_parallelism(Parallelism::fixed(6))
            .run(&queries, || Box::new(HeuristicUser::default()));
        for (a, b) in serial.iter().zip(&budgeted) {
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.majors_run, b.majors_run);
            assert_eq!(a.views, b.views);
        }
        // 4 workers over a 6-thread budget → 1 intra-query thread each.
        assert!(budgeted.iter().all(|r| r.intra_threads == 1));
        assert!(serial.iter().all(|r| r.intra_threads == 1));
    }
}
