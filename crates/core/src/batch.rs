//! Batch evaluation: run many queries against one data set.
//!
//! Real deployments (and the paper's own evaluation protocol) ask the same
//! question for a set of query points — "what are the natural neighbors of
//! each of these, and how meaningful are they?". [`BatchRunner`] packages
//! that: one shared data set and configuration, a user-model factory (each
//! query gets a fresh user, as in the paper's per-query sessions), and
//! parallel execution across queries with `std::thread::scope`.
//!
//! The runner is a *fault boundary*: each query runs under
//! `catch_unwind`, so one poisoned session can neither take down the
//! batch nor skew its siblings. A failed query is retried once with a
//! degraded configuration (axis-parallel projections, fixed bandwidth —
//! the cheapest, most robust path through the engine) and, if it still
//! fails, surfaces as [`QueryReport::Failed`] carrying the typed
//! [`HinnError`] instead of a panic.

use crate::cache::SessionCache;
use crate::config::{BandwidthMode, ProjectionMode, SearchConfig};
use crate::degrade::{DegradationEvent, DegradationKind};
use crate::diagnosis::SearchDiagnosis;
use crate::error::HinnError;
use crate::search::{InteractiveSearch, RunOptions, RunOutput, SearchOutcome};
use hinn_cache::Fingerprint;
use hinn_data::{DatasetHandle, EpochSnapshot};
use hinn_par::Parallelism;
use hinn_user::UserModel;
use std::sync::Arc;
use std::time::Duration;

/// Result of one query in a batch: either a completed session or a typed
/// failure that survived the retry.
#[derive(Clone, Debug)]
pub enum QueryReport {
    /// The session completed (possibly on the degraded retry).
    Completed {
        /// Index into the batch's query list.
        query_index: usize,
        /// The returned neighbor set: the natural set when the session was
        /// meaningful, the top-`s` ranking otherwise.
        neighbors: Vec<usize>,
        /// The session's verdict.
        diagnosis: SearchDiagnosis,
        /// Major iterations run.
        majors_run: usize,
        /// Views shown / dismissed.
        views: (usize, usize),
        /// Wall-clock time of this query (including a failed first
        /// attempt, when retried).
        wall: Duration,
        /// Intra-query thread budget the session ran with (the batch
        /// budget divided across inter-query workers — see
        /// [`Parallelism::split`]).
        intra_threads: usize,
        /// Did this result come from the degraded retry?
        retried: bool,
        /// Degradation-ladder rungs the winning session took.
        degradations: usize,
    },
    /// Both the session and its degraded retry failed (or the failure was
    /// an input error, which is never retried).
    Failed {
        /// Index into the batch's query list.
        query_index: usize,
        /// The error of the last attempt.
        error: HinnError,
        /// Was a degraded retry attempted?
        retried: bool,
        /// Wall-clock time spent on all attempts.
        wall: Duration,
        /// Intra-query thread budget of the attempts.
        intra_threads: usize,
    },
}

impl QueryReport {
    /// Index into the batch's query list.
    pub fn query_index(&self) -> usize {
        match self {
            Self::Completed { query_index, .. } | Self::Failed { query_index, .. } => *query_index,
        }
    }

    /// Did the query fail even after the retry?
    pub fn is_failed(&self) -> bool {
        matches!(self, Self::Failed { .. })
    }

    /// The neighbor set of a completed query.
    pub fn neighbors(&self) -> Option<&[usize]> {
        match self {
            Self::Completed { neighbors, .. } => Some(neighbors),
            Self::Failed { .. } => None,
        }
    }

    /// The verdict of a completed query.
    pub fn diagnosis(&self) -> Option<&SearchDiagnosis> {
        match self {
            Self::Completed { diagnosis, .. } => Some(diagnosis),
            Self::Failed { .. } => None,
        }
    }

    /// Major iterations of a completed query.
    pub fn majors_run(&self) -> Option<usize> {
        match self {
            Self::Completed { majors_run, .. } => Some(*majors_run),
            Self::Failed { .. } => None,
        }
    }

    /// Views shown / dismissed of a completed query.
    pub fn views(&self) -> Option<(usize, usize)> {
        match self {
            Self::Completed { views, .. } => Some(*views),
            Self::Failed { .. } => None,
        }
    }

    /// The error of a failed query.
    pub fn error(&self) -> Option<&HinnError> {
        match self {
            Self::Completed { .. } => None,
            Self::Failed { error, .. } => Some(error),
        }
    }

    /// Wall-clock time spent on the query (all attempts).
    pub fn wall(&self) -> Duration {
        match self {
            Self::Completed { wall, .. } | Self::Failed { wall, .. } => *wall,
        }
    }

    /// Intra-query thread budget the attempts ran with.
    pub fn intra_threads(&self) -> usize {
        match self {
            Self::Completed { intra_threads, .. } | Self::Failed { intra_threads, .. } => {
                *intra_threads
            }
        }
    }

    /// Did the runner fall back to the degraded configuration?
    pub fn retried(&self) -> bool {
        match self {
            Self::Completed { retried, .. } | Self::Failed { retried, .. } => *retried,
        }
    }

    fn from_outcome(
        query_index: usize,
        outcome: &SearchOutcome,
        wall: Duration,
        intra_threads: usize,
        retried: bool,
    ) -> Self {
        let neighbors = outcome
            .natural_neighbors()
            .unwrap_or_else(|| outcome.neighbors.clone());
        Self::Completed {
            query_index,
            neighbors,
            diagnosis: outcome.diagnosis.clone(),
            majors_run: outcome.majors_run,
            views: (
                outcome.transcript.total_views(),
                outcome.transcript.total_dismissed(),
            ),
            wall,
            intra_threads,
            retried,
            degradations: outcome.degradations().len(),
        }
    }
}

/// The batch's data: an epoch snapshot pinned at construction, or a
/// borrowed slice through the deprecated shim.
enum BatchStore<'a> {
    Slice(&'a [Vec<f64>]),
    Epoch(Arc<EpochSnapshot>),
}

/// Multi-query driver (see module docs).
pub struct BatchRunner<'a> {
    store: BatchStore<'a>,
    config: SearchConfig,
    budget: Parallelism,
    cache: Arc<SessionCache>,
}

impl<'a> BatchRunner<'a> {
    /// Create a runner pinned to `data`'s *current* epoch with the shared
    /// `config`. Rows appended or deleted after construction do not affect
    /// the batch — every query of the batch sees the same snapshot. The
    /// thread budget defaults to the config's
    /// [`SearchConfig::parallelism`]. One [`SessionCache`] (sized by
    /// [`SearchConfig::cache`]) is shared by every session of the batch,
    /// including degraded retries — repeated or similar queries reuse each
    /// other's projections and profiles.
    pub fn new(data: &DatasetHandle, config: SearchConfig) -> Self {
        Self::at(data.snapshot(), config)
    }

    /// [`BatchRunner::new`] against an explicit epoch snapshot.
    pub fn at(snap: Arc<EpochSnapshot>, config: SearchConfig) -> Self {
        config.validate();
        let budget = config.parallelism;
        let cache = Arc::new(SessionCache::new(config.cache));
        Self {
            store: BatchStore::Epoch(snap),
            config,
            budget,
            cache,
        }
    }

    /// The epoch the batch is pinned to: `(epoch counter, chained
    /// fingerprint)`. `None` for slice-backed runners.
    pub fn dataset_epoch(&self) -> Option<(u64, Fingerprint)> {
        match &self.store {
            BatchStore::Epoch(snap) => Some((snap.epoch(), snap.fingerprint())),
            BatchStore::Slice(_) => None,
        }
    }

    /// Create a runner over a borrowed slice — the pre-epoch shim.
    #[deprecated(
        since = "0.1.0",
        note = "use BatchRunner::new with a DatasetHandle (or BatchRunner::at with an EpochSnapshot)"
    )]
    pub fn from_slice(points: &'a [Vec<f64>], config: SearchConfig) -> Self {
        config.validate();
        let budget = config.parallelism;
        let cache = Arc::new(SessionCache::new(config.cache));
        Self {
            store: BatchStore::Slice(points),
            config,
            budget,
            cache,
        }
    }

    /// The cache shared across the batch's sessions (e.g. to pre-warm it,
    /// inspect residency, or share it with a second runner).
    pub fn session_cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// Share an existing session cache (its policy supersedes
    /// [`SearchConfig::cache`]) — e.g. one cache across several batches
    /// over the same dataset.
    pub fn with_session_cache(mut self, cache: Arc<SessionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Cap the worker-thread count (default: the config's parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "BatchRunner: need at least one thread");
        self.budget = Parallelism::fixed(threads);
        self
    }

    /// Set the total thread budget. It is divided between inter-query
    /// workers and each session's intra-query parallelism so nested
    /// sessions never oversubscribe the machine.
    pub fn with_parallelism(mut self, budget: Parallelism) -> Self {
        self.budget = budget;
        self
    }

    /// Set a per-query wall-clock deadline (see
    /// [`SearchConfig::deadline`]). An expired query fails with
    /// [`HinnError::Deadline`], is retried once with the degraded
    /// configuration, and surfaces as [`QueryReport::Failed`] if the
    /// retry expires too.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Run every query, constructing a fresh user per query via
    /// `make_user`. Reports come back in query order. No panic escapes
    /// this call: a panicking session is caught at the query boundary,
    /// retried degraded, and at worst reported as
    /// [`QueryReport::Failed`] with [`HinnError::SessionPanicked`].
    pub fn run<F>(&self, queries: &[Vec<f64>], make_user: F) -> Vec<QueryReport>
    where
        F: Fn() -> Box<dyn UserModel> + Sync,
    {
        let n = queries.len();
        let workers = self.budget.threads().min(n.max(1));
        // Each worker runs sessions whose intra-query hot paths get an
        // equal share of the remaining budget. Results do not depend on
        // this split (bit-identical under any Parallelism); only the
        // schedule does.
        let mut session_config = self.config.clone();
        session_config.parallelism = self.budget.split(workers);
        let intra_threads = session_config.parallelism.threads();
        // The degraded retry configuration: axis-parallel projections
        // (no eigensolver) and a fixed global bandwidth — the cheapest,
        // most robust path through the engine.
        let degraded_config = SearchConfig {
            projection_mode: ProjectionMode::AxisParallel,
            bandwidth_mode: BandwidthMode::Fixed,
            ..session_config.clone()
        };
        let mut reports: Vec<Option<QueryReport>> = (0..n).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<&mut Option<QueryReport>>> =
            reports.iter_mut().map(std::sync::Mutex::new).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    let first = run_guarded(
                        &session_config,
                        &self.cache,
                        &self.store,
                        &queries[i],
                        &make_user,
                    );
                    let report = match first {
                        Ok(outcome) => QueryReport::from_outcome(
                            i,
                            &outcome,
                            t0.elapsed(),
                            intra_threads,
                            false,
                        ),
                        // Input errors are deterministic caller mistakes —
                        // a degraded configuration cannot fix them, so
                        // they surface immediately.
                        Err(error) if error.is_invalid_input() => QueryReport::Failed {
                            query_index: i,
                            error,
                            retried: false,
                            wall: t0.elapsed(),
                            intra_threads,
                        },
                        Err(first_error) => {
                            hinn_obs::counter("batch.retries", 1);
                            match run_guarded(
                                &degraded_config,
                                &self.cache,
                                &self.store,
                                &queries[i],
                                &make_user,
                            ) {
                                Ok(mut outcome) => {
                                    outcome.transcript.degradations.push(DegradationEvent {
                                        major: None,
                                        minor: None,
                                        kind: DegradationKind::DegradedRetry,
                                        detail: format!(
                                            "first attempt failed ({first_error}); \
                                             completed with degraded configuration"
                                        ),
                                    });
                                    QueryReport::from_outcome(
                                        i,
                                        &outcome,
                                        t0.elapsed(),
                                        intra_threads,
                                        true,
                                    )
                                }
                                Err(error) => QueryReport::Failed {
                                    query_index: i,
                                    error,
                                    retried: true,
                                    wall: t0.elapsed(),
                                    intra_threads,
                                },
                            }
                        }
                    };
                    let wall = report.wall();
                    hinn_obs::observe("batch.query_ms", wall.as_secs_f64() * 1e3);
                    // A worker that panicked while holding the lock has
                    // already been caught at the query boundary; a
                    // poisoned slot still holds valid (None) data.
                    let mut slot = match slots[i].lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    **slot = Some(report);
                });
            }
        });
        reports
            .into_iter()
            .map(|r| match r {
                Some(report) => report,
                // Unreachable: every index claimed from the queue writes
                // its slot, and a worker panic would have propagated out
                // of `thread::scope` already.
                None => panic!("BatchRunner: a query produced no report"),
            })
            .collect()
    }
}

/// One guarded attempt: the session runs under `catch_unwind`, so a panic
/// anywhere inside (engine, user model, fault injection) is converted to
/// [`HinnError::SessionPanicked`] instead of unwinding into the batch.
fn run_guarded<F>(
    config: &SearchConfig,
    cache: &Arc<SessionCache>,
    store: &BatchStore<'_>,
    query: &[f64],
    make_user: &F,
) -> Result<SearchOutcome, HinnError>
where
    F: Fn() -> Box<dyn UserModel> + Sync,
{
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let engine = InteractiveSearch::try_new(config.clone())?.with_session_cache(cache.clone());
        let mut user = make_user();
        let run = match store {
            BatchStore::Epoch(snap) => {
                engine.run_at(snap.clone(), query, user.as_mut(), RunOptions::default())
            }
            #[allow(deprecated)]
            BatchStore::Slice(points) => {
                engine.run_with_slice(points, query, user.as_mut(), RunOptions::default())
            }
        };
        run.map(RunOutput::into_outcome)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => Err(HinnError::SessionPanicked {
            phase: "batch.query",
            message: panic_message(&payload),
        }),
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_user::HeuristicUser;

    /// 6-D data, full-space cluster at 50 plus background.
    fn workload() -> Vec<Vec<f64>> {
        let mut state = 0xC0FFEEu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for _ in 0..30 {
            pts.push((0..6).map(|_| 50.0 + (unif() - 0.5) * 2.0).collect());
        }
        for _ in 0..90 {
            pts.push((0..6).map(|_| unif() * 100.0).collect());
        }
        pts
    }

    fn config() -> SearchConfig {
        SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            ..SearchConfig::default().with_support(10)
        }
    }

    fn handle(pts: &[Vec<f64>]) -> DatasetHandle {
        DatasetHandle::new(pts).expect("epoch handle")
    }

    #[test]
    fn batch_reports_in_query_order() {
        let pts = workload();
        let queries = vec![pts[0].clone(), pts[5].clone(), pts[100].clone()];
        let runner = BatchRunner::new(&handle(&pts), config());
        let reports = runner.run(&queries, || Box::new(HeuristicUser::default()));
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.query_index(), i);
            assert!(!r.is_failed());
            assert!(!r.retried());
            let neighbors = r.neighbors().expect("completed");
            assert!(!neighbors.is_empty());
            let (shown, dismissed) = r.views().expect("completed");
            assert!(shown >= dismissed);
            assert!(r.intra_threads() >= 1);
            assert!(r.wall() > Duration::ZERO);
        }
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let pts = workload();
        let queries: Vec<Vec<f64>> = (0..4).map(|i| pts[i * 7].clone()).collect();
        let dh = handle(&pts);
        let serial = BatchRunner::new(&dh, config())
            .with_threads(1)
            .run(&queries, || Box::new(HeuristicUser::default()));
        let parallel = BatchRunner::new(&dh, config())
            .with_threads(4)
            .run(&queries, || Box::new(HeuristicUser::default()));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.neighbors(), b.neighbors());
            assert_eq!(a.majors_run(), b.majors_run());
        }
    }

    #[test]
    fn empty_query_list_is_fine() {
        let pts = workload();
        let runner = BatchRunner::new(&handle(&pts), config());
        let reports = runner.run(&[], || Box::new(HeuristicUser::default()));
        assert!(reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let pts = workload();
        let _ = BatchRunner::new(&handle(&pts), config()).with_threads(0);
    }

    #[test]
    fn nested_budget_matches_serial_budget() {
        // A total budget split between inter-query workers and intra-query
        // hot paths must not change any answer.
        let pts = workload();
        let queries: Vec<Vec<f64>> = (0..4).map(|i| pts[i * 7].clone()).collect();
        let dh = handle(&pts);
        let serial = BatchRunner::new(&dh, config())
            .with_parallelism(Parallelism::serial())
            .run(&queries, || Box::new(HeuristicUser::default()));
        let budgeted = BatchRunner::new(&dh, config())
            .with_parallelism(Parallelism::fixed(6))
            .run(&queries, || Box::new(HeuristicUser::default()));
        for (a, b) in serial.iter().zip(&budgeted) {
            assert_eq!(a.neighbors(), b.neighbors());
            assert_eq!(a.majors_run(), b.majors_run());
            assert_eq!(a.views(), b.views());
        }
        // 4 workers over a 6-thread budget → 1 intra-query thread each.
        assert!(budgeted.iter().all(|r| r.intra_threads() == 1));
        assert!(serial.iter().all(|r| r.intra_threads() == 1));
    }

    #[test]
    fn invalid_query_fails_without_retry_while_siblings_complete() {
        let pts = workload();
        // Query 1 has the wrong dimensionality: an input error, reported
        // typed and unretried; queries 0 and 2 must be untouched.
        let queries = vec![pts[0].clone(), vec![1.0, 2.0], pts[100].clone()];
        let reports = BatchRunner::new(&handle(&pts), config())
            .run(&queries, || Box::new(HeuristicUser::default()));
        assert!(!reports[0].is_failed());
        assert!(!reports[2].is_failed());
        let failed = &reports[1];
        assert!(failed.is_failed());
        assert!(!failed.retried(), "input errors are not retried");
        let err = failed.error().expect("failed report carries its error");
        assert!(err.is_invalid_input());
        assert!(err.to_string().contains("query dimensionality"));
    }

    #[test]
    fn slice_shim_matches_the_epoch_runner() {
        let pts = workload();
        let queries: Vec<Vec<f64>> = (0..3).map(|i| pts[i * 11].clone()).collect();
        let epoch = BatchRunner::new(&handle(&pts), config())
            .run(&queries, || Box::new(HeuristicUser::default()));
        #[allow(deprecated)]
        let slice = BatchRunner::from_slice(&pts, config())
            .run(&queries, || Box::new(HeuristicUser::default()));
        for (a, b) in epoch.iter().zip(&slice) {
            assert_eq!(a.neighbors(), b.neighbors());
            assert_eq!(a.majors_run(), b.majors_run());
            assert_eq!(a.views(), b.views());
        }
    }

    #[test]
    fn runner_is_pinned_to_the_epoch_it_was_built_at() {
        let pts = workload();
        let dh = handle(&pts);
        let runner = BatchRunner::new(&dh, config());
        let pinned = runner.dataset_epoch().expect("epoch runner");
        assert_eq!(pinned.0, dh.epoch());
        // The handle streams on; the batch still answers from its pin.
        dh.append(&[vec![1.0; 6]]).expect("append");
        assert_eq!(runner.dataset_epoch().expect("epoch runner").1, pinned.1);
        let reports = runner.run(&[pts[0].clone()], || Box::new(HeuristicUser::default()));
        assert!(!reports[0].is_failed());
        #[allow(deprecated)]
        let slice_runner = BatchRunner::from_slice(&pts, config());
        assert_eq!(slice_runner.dataset_epoch(), None);
    }

    // Fault drills that must install a *global* plan (the points fire on
    // batch worker threads) live in `tests/fault_boundary.rs`, where every
    // test installs a plan and the install lock serializes them.
}
