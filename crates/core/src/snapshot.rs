//! Serialized session state: suspend a [`crate::SessionEngine`] to text,
//! resume it in another thread or process.
//!
//! The format is deliberately line-oriented and versioned
//! (`hinn-session-state v1` header), like the session-log format of
//! `hinn::user::recording`: greppable in a bug report, diffable in a
//! regression, no serde dependency. Every `f64` is written as its exact
//! 16-hex-digit bit pattern, so a restored engine is *bit-identical* to
//! the suspended one — the suspend/resume equivalence suite
//! (`tests/session_resume.rs`) holds the whole pipeline to that.
//!
//! Unknown lines prefixed `x-` are skipped by the parser, giving future
//! versions room to add fields without breaking older readers.
//!
//! What is **not** serialized:
//! - the data set (the caller re-supplies it; a content fingerprint guards
//!   against resuming over the wrong one),
//! - the configuration (re-supplied too, guarded by a fingerprint of the
//!   loop-relevant knobs; thread budget, cache policy, and deadline may
//!   legitimately differ across suspend and resume),
//! - the pending view (recomputed on resume — it is a pure function of
//!   serialized state, so the transcript comes out identical),
//! - recorded profiles (`SearchConfig::record_profiles` sessions refuse to
//!   snapshot; profiles are multi-megabyte render artifacts, not state).

use crate::degrade::{DegradationEvent, DegradationKind};
use crate::transcript::{MajorRecord, MinorPhases, MinorRecord};
use hinn_cache::Fingerprint;
use hinn_linalg::Subspace;
use hinn_user::recording::{response_from_line, response_to_line};

/// Format tag of the one and only snapshot version so far.
pub const SNAPSHOT_HEADER: &str = "hinn-session-state v1";

/// A suspended session, serialized. Obtain one from
/// [`crate::SessionEngine::snapshot`]; turn it back into an engine with
/// [`crate::SessionEngine::resume`] (or the `SessionManager`'s warm tier,
/// which does this under the hood).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSnapshot(String);

impl SessionSnapshot {
    /// Wrap already-serialized text (e.g. read back from disk).
    ///
    /// Only the header is validated here; full validation happens on
    /// resume, against the data set and configuration being resumed with.
    pub fn from_text(text: impl Into<String>) -> Result<Self, String> {
        let text = text.into();
        match text.lines().next() {
            Some(first) if first.trim() == SNAPSHOT_HEADER => Ok(Self(text)),
            Some(first) => Err(format!(
                "not a session snapshot: expected {SNAPSHOT_HEADER:?} header, found {first:?}"
            )),
            None => Err("not a session snapshot: empty text".to_string()),
        }
    }

    /// The serialized form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SessionSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The engine state that crosses the serialization boundary — a plain
/// mirror of `SessionEngine`'s loop state, built and consumed in
/// `engine.rs`.
pub(crate) struct EngineState {
    pub n: usize,
    pub d: usize,
    pub config_fp: Fingerprint,
    pub query: Vec<f64>,
    pub dataset_fp: Option<Fingerprint>,
    /// Epoch pin of a session opened over an
    /// [`hinn_data::EpochSnapshot`]: the epoch counter and the chained
    /// content fingerprint. Serialized as an `x-epoch` extension line so
    /// pre-epoch readers skip it; `None` for slice/shared sessions.
    pub epoch: Option<(u64, Fingerprint)>,
    pub spent_ns: u64,
    pub major: usize,
    pub minor: usize,
    pub majors_run: usize,
    pub stopped: bool,
    pub alive: Vec<usize>,
    pub p_sum: Vec<f64>,
    pub prev_top: Option<Vec<usize>>,
    /// In-flight major iteration: counts, remaining subspace, partial record.
    pub counts_v: Vec<f64>,
    pub counts_picks: Vec<(usize, f64)>,
    pub ec: Subspace,
    pub major_n_before: usize,
    pub major_minors: Vec<MinorRecord>,
    /// Completed major iterations.
    pub transcript_majors: Vec<MajorRecord>,
    pub degradations: Vec<DegradationEvent>,
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn hex64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_list(vs: &[f64]) -> String {
    if vs.is_empty() {
        return "-".to_string();
    }
    vs.iter().map(|v| hex64(*v)).collect::<Vec<_>>().join(" ")
}

fn usize_list(vs: &[usize]) -> String {
    if vs.is_empty() {
        return "-".to_string();
    }
    vs.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn escape(detail: &str) -> String {
    detail.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(detail: &str) -> String {
    let mut out = String::with_capacity(detail.len());
    let mut chars = detail.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn render_subspace(out: &mut String, key: &str, ambient: usize, rows: &[Vec<f64>]) {
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    out.push_str(&format!(
        "{key} {ambient} {} {}\n",
        rows.len(),
        hex_list(&flat)
    ));
}

fn render_minor(out: &mut String, rec: &MinorRecord) {
    out.push_str("begin-minor\n");
    out.push_str(&format!("at {} {}\n", rec.major, rec.minor));
    render_subspace(
        out,
        "projection",
        rec.projection.ambient_dim(),
        rec.projection.basis(),
    );
    out.push_str(&format!(
        "variance-ratios {}\n",
        hex_list(&rec.variance_ratios)
    ));
    out.push_str(&format!("response {}\n", response_to_line(&rec.response)));
    out.push_str(&format!("n-picked {}\n", rec.n_picked));
    out.push_str(&format!("qpr {}\n", hex64(rec.query_peak_ratio)));
    match &rec.phases {
        Some(p) => out.push_str(&format!(
            "phases {} {} {}\n",
            p.projection_ns, p.profile_ns, p.select_ns
        )),
        None => out.push_str("phases -\n"),
    }
    out.push_str("end-minor\n");
}

pub(crate) fn render(state: &EngineState) -> SessionSnapshot {
    let mut out = String::new();
    out.push_str(SNAPSHOT_HEADER);
    out.push('\n');
    out.push_str(&format!("n {}\n", state.n));
    out.push_str(&format!("d {}\n", state.d));
    out.push_str(&format!("config-fp {:032x}\n", state.config_fp.0));
    out.push_str(&format!("query {}\n", hex_list(&state.query)));
    match state.dataset_fp {
        Some(fp) => out.push_str(&format!("dataset-fp {:032x}\n", fp.0)),
        None => out.push_str("dataset-fp -\n"),
    }
    // Epoch pin rides as an `x-` extension line: pre-epoch readers skip
    // it (forward tolerance), epoch-aware resume pre-scans for it.
    if let Some((epoch, fp)) = state.epoch {
        out.push_str(&format!("x-epoch {epoch} {:032x}\n", fp.0));
    }
    out.push_str(&format!("spent-ns {}\n", state.spent_ns));
    out.push_str(&format!(
        "cursor {} {} {}\n",
        state.major, state.minor, state.majors_run
    ));
    out.push_str(&format!("stopped {}\n", u8::from(state.stopped)));
    out.push_str(&format!("alive {}\n", usize_list(&state.alive)));
    out.push_str(&format!("p-sum {}\n", hex_list(&state.p_sum)));
    match &state.prev_top {
        Some(top) => out.push_str(&format!("prev-top {}\n", usize_list(top))),
        None => out.push_str("prev-top -\n"),
    }
    out.push_str("begin-major\n");
    out.push_str(&format!("counts-v {}\n", hex_list(&state.counts_v)));
    if state.counts_picks.is_empty() {
        out.push_str("counts-picks -\n");
    } else {
        let picks: Vec<String> = state
            .counts_picks
            .iter()
            .map(|(n, w)| format!("{n},{}", hex64(*w)))
            .collect();
        out.push_str(&format!("counts-picks {}\n", picks.join(";")));
    }
    render_subspace(&mut out, "ec", state.ec.ambient_dim(), state.ec.basis());
    out.push_str(&format!("major-n-before {}\n", state.major_n_before));
    for rec in &state.major_minors {
        render_minor(&mut out, rec);
    }
    out.push_str("end-major\n");
    for major_rec in &state.transcript_majors {
        out.push_str("begin-major-record\n");
        out.push_str(&format!("n-before {}\n", major_rec.n_points_before));
        out.push_str(&format!("n-after {}\n", major_rec.n_points_after));
        match major_rec.overlap_with_previous {
            Some(o) => out.push_str(&format!("overlap {}\n", hex64(o))),
            None => out.push_str("overlap -\n"),
        }
        for rec in &major_rec.minors {
            render_minor(&mut out, rec);
        }
        out.push_str("end-major-record\n");
    }
    for event in &state.degradations {
        let major = event
            .major
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_string());
        let minor = event
            .minor
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "degradation {} {major} {minor} {}\n",
            event.kind.as_str(),
            escape(&event.detail)
        ));
    }
    SessionSnapshot(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Lines<'a> {
    iter: std::iter::Peekable<std::str::Lines<'a>>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            iter: text.lines().peekable(),
            line_no: 0,
        }
    }

    /// Next meaningful line: skips blanks and `x-`-prefixed extension
    /// lines (the unknown-field tolerance of the format).
    fn next_content(&mut self) -> Option<&'a str> {
        loop {
            let line = self.iter.next()?;
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("x-") {
                continue;
            }
            return Some(trimmed);
        }
    }

    fn peek_content(&mut self) -> Option<&'a str> {
        loop {
            let line = *self.iter.peek()?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("x-") {
                self.iter.next();
                self.line_no += 1;
                continue;
            }
            return Some(trimmed);
        }
    }

    fn err(&self, msg: impl std::fmt::Display) -> String {
        format!("snapshot line {}: {msg}", self.line_no)
    }

    /// Consume a line that must start with `key ` (or equal `key`),
    /// returning the rest.
    fn expect(&mut self, key: &str) -> Result<&'a str, String> {
        let line = self
            .next_content()
            .ok_or_else(|| self.err(format!("unexpected end of snapshot, expected {key:?}")))?;
        if line == key {
            return Ok("");
        }
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::trim)
            .ok_or_else(|| self.err(format!("expected {key:?}, found {line:?}")))
    }
}

fn parse_f64_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 hex {s:?}: {e}"))
}

fn parse_hex_list(s: &str) -> Result<Vec<f64>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split_whitespace().map(parse_f64_hex).collect()
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

fn parse_usize_list(s: &str) -> Result<Vec<usize>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split_whitespace().map(parse_usize).collect()
}

fn parse_fingerprint(s: &str) -> Result<Option<Fingerprint>, String> {
    if s == "-" {
        return Ok(None);
    }
    u128::from_str_radix(s, 16)
        .map(|v| Some(Fingerprint(v)))
        .map_err(|e| format!("bad fingerprint {s:?}: {e}"))
}

fn parse_subspace(rest: &str) -> Result<(usize, Vec<Vec<f64>>), String> {
    let mut parts = rest.splitn(3, ' ');
    let ambient = parse_usize(parts.next().unwrap_or(""))?;
    let nrows = parse_usize(parts.next().unwrap_or(""))?;
    let flat = parse_hex_list(parts.next().unwrap_or("-").trim())?;
    if flat.len() != ambient * nrows {
        return Err(format!(
            "subspace: expected {nrows}x{ambient} values, found {}",
            flat.len()
        ));
    }
    let rows = flat.chunks(ambient.max(1)).map(<[f64]>::to_vec).collect();
    Ok((ambient, rows))
}

fn rebuild_subspace(ambient: usize, rows: Vec<Vec<f64>>) -> Result<Subspace, String> {
    Subspace::try_from_orthonormal_rows(ambient, rows)
        .ok_or_else(|| "subspace rows are not orthonormal".to_string())
}

fn parse_minor(lines: &mut Lines<'_>) -> Result<MinorRecord, String> {
    lines.expect("begin-minor")?;
    let at = lines.expect("at")?;
    let mut at_parts = at.split_whitespace();
    let major = parse_usize(at_parts.next().unwrap_or(""))?;
    let minor = parse_usize(at_parts.next().unwrap_or(""))?;
    let (ambient, rows) = parse_subspace(lines.expect("projection")?)?;
    let projection = rebuild_subspace(ambient, rows)?;
    let variance_ratios = parse_hex_list(lines.expect("variance-ratios")?)?;
    let response = response_from_line(lines.expect("response")?)
        .map_err(|e| format!("bad response line: {e}"))?;
    let n_picked = parse_usize(lines.expect("n-picked")?)?;
    let query_peak_ratio = parse_f64_hex(lines.expect("qpr")?)?;
    let phases_rest = lines.expect("phases")?;
    let phases = if phases_rest == "-" {
        None
    } else {
        let mut ns = phases_rest.split_whitespace();
        Some(MinorPhases {
            projection_ns: parse_u64(ns.next().unwrap_or(""))?,
            profile_ns: parse_u64(ns.next().unwrap_or(""))?,
            select_ns: parse_u64(ns.next().unwrap_or(""))?,
        })
    };
    lines.expect("end-minor")?;
    Ok(MinorRecord {
        major,
        minor,
        projection,
        variance_ratios,
        response,
        n_picked,
        query_peak_ratio,
        profile: None,
        phases,
    })
}

fn parse_degradation_kind(s: &str) -> Result<DegradationKind, String> {
    for kind in [
        DegradationKind::EigenFallback,
        DegradationKind::DegenerateCovariance,
        DegradationKind::DroppedZeroVariance,
        DegradationKind::BandwidthFloored,
        DegradationKind::SkippedMinorView,
        DegradationKind::DegradedRetry,
        DegradationKind::StarvedSeed,
    ] {
        if kind.as_str() == s {
            return Ok(kind);
        }
    }
    Err(format!("unknown degradation kind {s:?}"))
}

fn parse_opt_usize(s: &str) -> Result<Option<usize>, String> {
    if s == "-" {
        return Ok(None);
    }
    parse_usize(s).map(Some)
}

/// Pre-scan for the `x-epoch` extension line. The main parser skips every
/// `x-` line by design (forward tolerance), so the epoch pin is recovered
/// from the raw text: `x-epoch <counter> <fingerprint hex>`. A malformed
/// line is an error — an epoch-aware writer never emits one, so damage
/// must not silently downgrade the pin to "legacy snapshot".
fn parse_epoch_pin(text: &str) -> Result<Option<(u64, Fingerprint)>, String> {
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("x-epoch ") else {
            continue;
        };
        let mut parts = rest.split_whitespace();
        let counter = parse_u64(parts.next().unwrap_or(""))?;
        let fp = parse_fingerprint(parts.next().unwrap_or("-"))?
            .ok_or_else(|| "x-epoch: missing fingerprint".to_string())?;
        return Ok(Some((counter, fp)));
    }
    Ok(None)
}

pub(crate) fn parse(snapshot: &SessionSnapshot) -> Result<EngineState, String> {
    let epoch = parse_epoch_pin(snapshot.as_str())?;
    let mut lines = Lines::new(snapshot.as_str());
    let header = lines
        .next_content()
        .ok_or_else(|| "empty snapshot".to_string())?;
    if header != SNAPSHOT_HEADER {
        return Err(format!(
            "unsupported snapshot header {header:?} (expected {SNAPSHOT_HEADER:?})"
        ));
    }
    let n = parse_usize(lines.expect("n")?)?;
    let d = parse_usize(lines.expect("d")?)?;
    let config_fp = parse_fingerprint(lines.expect("config-fp")?)?
        .ok_or_else(|| "config-fp must be present".to_string())?;
    let query = parse_hex_list(lines.expect("query")?)?;
    let dataset_fp = parse_fingerprint(lines.expect("dataset-fp")?)?;
    let spent_ns = parse_u64(lines.expect("spent-ns")?)?;
    let cursor = lines.expect("cursor")?;
    let mut cursor_parts = cursor.split_whitespace();
    let major = parse_usize(cursor_parts.next().unwrap_or(""))?;
    let minor = parse_usize(cursor_parts.next().unwrap_or(""))?;
    let majors_run = parse_usize(cursor_parts.next().unwrap_or(""))?;
    let stopped = match lines.expect("stopped")? {
        "0" => false,
        "1" => true,
        other => return Err(lines.err(format!("bad stopped flag {other:?}"))),
    };
    let alive = parse_usize_list(lines.expect("alive")?)?;
    let p_sum = parse_hex_list(lines.expect("p-sum")?)?;
    let prev_top = match lines.expect("prev-top")? {
        "-" => None,
        rest => Some(parse_usize_list(rest)?),
    };
    lines.expect("begin-major")?;
    let counts_v = parse_hex_list(lines.expect("counts-v")?)?;
    let picks_rest = lines.expect("counts-picks")?;
    let counts_picks = if picks_rest == "-" {
        Vec::new()
    } else {
        picks_rest
            .split(';')
            .map(|pair| {
                let (n_s, w_s) = pair
                    .split_once(',')
                    .ok_or_else(|| format!("bad picks pair {pair:?}"))?;
                Ok((parse_usize(n_s)?, parse_f64_hex(w_s)?))
            })
            .collect::<Result<Vec<_>, String>>()?
    };
    let (ec_ambient, ec_rows) = parse_subspace(lines.expect("ec")?)?;
    let ec = rebuild_subspace(ec_ambient, ec_rows)?;
    let major_n_before = parse_usize(lines.expect("major-n-before")?)?;
    let mut major_minors = Vec::new();
    while lines.peek_content() == Some("begin-minor") {
        major_minors.push(parse_minor(&mut lines)?);
    }
    lines.expect("end-major")?;
    let mut transcript_majors = Vec::new();
    while lines.peek_content() == Some("begin-major-record") {
        lines.expect("begin-major-record")?;
        let n_points_before = parse_usize(lines.expect("n-before")?)?;
        let n_points_after = parse_usize(lines.expect("n-after")?)?;
        let overlap_with_previous = match lines.expect("overlap")? {
            "-" => None,
            rest => Some(parse_f64_hex(rest)?),
        };
        let mut minors = Vec::new();
        while lines.peek_content() == Some("begin-minor") {
            minors.push(parse_minor(&mut lines)?);
        }
        lines.expect("end-major-record")?;
        transcript_majors.push(MajorRecord {
            minors,
            n_points_before,
            n_points_after,
            overlap_with_previous,
        });
    }
    let mut degradations = Vec::new();
    while let Some(line) = lines.next_content() {
        let Some(rest) = line.strip_prefix("degradation ") else {
            return Err(lines.err(format!("unexpected trailing line {line:?}")));
        };
        let mut parts = rest.splitn(4, ' ');
        let kind = parse_degradation_kind(parts.next().unwrap_or(""))?;
        let ev_major = parse_opt_usize(parts.next().unwrap_or(""))?;
        let ev_minor = parse_opt_usize(parts.next().unwrap_or(""))?;
        let detail = unescape(parts.next().unwrap_or(""));
        degradations.push(DegradationEvent {
            major: ev_major,
            minor: ev_minor,
            kind,
            detail,
        });
    }
    Ok(EngineState {
        n,
        d,
        config_fp,
        query,
        dataset_fp,
        epoch,
        spent_ns,
        major,
        minor,
        majors_run,
        stopped,
        alive,
        p_sum,
        prev_top,
        counts_v,
        counts_picks,
        ec,
        major_n_before,
        major_minors,
        transcript_majors,
        degradations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_user::UserResponse;

    fn sample_state() -> EngineState {
        EngineState {
            n: 4,
            d: 3,
            config_fp: Fingerprint(0xDEADBEEF),
            query: vec![1.0, -2.5, 0.1 + 0.2],
            dataset_fp: Some(Fingerprint(0x1234_5678_9ABC)),
            epoch: Some((7, Fingerprint(0xFEED_F00D))),
            spent_ns: 12_345,
            major: 1,
            minor: 1,
            majors_run: 1,
            stopped: false,
            alive: vec![0, 2, 3],
            p_sum: vec![0.25, 0.0, 1.0 / 3.0, 0.75],
            prev_top: Some(vec![3, 0]),
            counts_v: vec![1.0, 0.0, 2.0, 0.0],
            counts_picks: vec![(2, 1.0), (0, 0.5)],
            ec: Subspace::from_vectors(3, &[vec![0.0, 0.0, 1.0]]),
            major_n_before: 3,
            major_minors: vec![MinorRecord {
                major: 1,
                minor: 0,
                projection: Subspace::from_vectors(3, &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]),
                variance_ratios: vec![0.9, 0.1],
                response: UserResponse::Threshold(0.4),
                n_picked: 2,
                query_peak_ratio: 0.875,
                profile: None,
                phases: None,
            }],
            transcript_majors: vec![MajorRecord {
                minors: vec![MinorRecord {
                    major: 0,
                    minor: 0,
                    projection: Subspace::full(3),
                    variance_ratios: vec![],
                    response: UserResponse::Discard,
                    n_picked: 0,
                    query_peak_ratio: 0.0,
                    profile: None,
                    phases: Some(MinorPhases {
                        projection_ns: 10,
                        profile_ns: 20,
                        select_ns: 30,
                    }),
                }],
                n_points_before: 4,
                n_points_after: 3,
                overlap_with_previous: None,
            }],
            degradations: vec![DegradationEvent {
                major: Some(0),
                minor: Some(0),
                kind: DegradationKind::BandwidthFloored,
                detail: "zero spread\nsecond line \\ with escapes".to_string(),
            }],
        }
    }

    #[test]
    fn render_parse_roundtrip_is_bit_exact() {
        let state = sample_state();
        let snap = render(&state);
        assert!(snap.as_str().starts_with(SNAPSHOT_HEADER));
        let back = parse(&snap).expect("parse rendered snapshot");
        assert_eq!(back.n, state.n);
        assert_eq!(back.d, state.d);
        assert_eq!(back.config_fp, state.config_fp);
        assert_eq!(back.dataset_fp, state.dataset_fp);
        assert_eq!(back.epoch, state.epoch);
        assert_eq!(back.spent_ns, state.spent_ns);
        assert_eq!(
            (back.major, back.minor, back.majors_run),
            (state.major, state.minor, state.majors_run)
        );
        assert_eq!(back.alive, state.alive);
        assert_eq!(back.prev_top, state.prev_top);
        for (a, b) in back.query.iter().zip(&state.query) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.p_sum.iter().zip(&state.p_sum) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.counts_v.iter().zip(&state.counts_v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.counts_picks, state.counts_picks);
        assert_eq!(back.ec, state.ec);
        assert_eq!(back.major_minors.len(), 1);
        let m = &back.major_minors[0];
        assert_eq!(m.projection, state.major_minors[0].projection);
        assert_eq!(m.response, state.major_minors[0].response);
        assert_eq!(
            m.query_peak_ratio.to_bits(),
            state.major_minors[0].query_peak_ratio.to_bits()
        );
        assert_eq!(back.transcript_majors.len(), 1);
        assert_eq!(
            back.transcript_majors[0].minors[0].phases,
            state.transcript_majors[0].minors[0].phases
        );
        assert_eq!(back.degradations.len(), 1);
        assert_eq!(back.degradations[0].detail, state.degradations[0].detail);
        assert_eq!(back.degradations[0].kind, DegradationKind::BandwidthFloored);
    }

    #[test]
    fn unknown_extension_lines_are_skipped() {
        let state = sample_state();
        let snap = render(&state);
        // A future version adds per-section extension lines; v1 readers
        // must skip them.
        let extended: String = snap
            .as_str()
            .lines()
            .flat_map(|l| [l.to_string(), "x-future-field 42".to_string()])
            .collect::<Vec<_>>()
            .join("\n");
        let snap2 = SessionSnapshot::from_text(extended).expect("header still first");
        let back = parse(&snap2).expect("tolerant parse");
        assert_eq!(back.alive, state.alive);
        assert_eq!(back.transcript_majors.len(), 1);
    }

    #[test]
    fn epoch_pin_rides_an_extension_line() {
        let state = sample_state();
        let snap = render(&state);
        // The pin is carried on an `x-` line, so a pre-epoch reader (which
        // skips all of them) still parses the snapshot.
        assert!(
            snap.as_str().lines().any(|l| l.starts_with("x-epoch 7 ")),
            "{snap}"
        );
        // A legacy snapshot (no x-epoch line) parses to an unpinned state.
        let legacy: String = snap
            .as_str()
            .lines()
            .filter(|l| !l.starts_with("x-epoch"))
            .collect::<Vec<_>>()
            .join("\n");
        let back = parse(&SessionSnapshot::from_text(legacy).expect("header")).expect("parse");
        assert_eq!(back.epoch, None);
        // A mangled pin is a parse error, never a silent downgrade.
        let mangled: String = snap
            .as_str()
            .lines()
            .map(|l| {
                if l.starts_with("x-epoch") {
                    "x-epoch 7 zz".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse(&SessionSnapshot::from_text(mangled).expect("header"))
            .map(|_| ())
            .expect_err("bad fingerprint hex");
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn header_is_required() {
        assert!(SessionSnapshot::from_text("").is_err());
        assert!(SessionSnapshot::from_text("hinn-session v1\nthreshold 0.5").is_err());
        let err = parse(&SessionSnapshot("hinn-session-state v0\nn 3".to_string()))
            .err()
            .expect("bad version");
        assert!(err.contains("unsupported"));
    }

    #[test]
    fn corrupted_subspace_is_rejected() {
        let state = sample_state();
        let snap = render(&state);
        // Corrupt one basis value inside the `ec` subspace line: the
        // orthonormality check must catch it.
        let bad: String = snap
            .as_str()
            .lines()
            .map(|l| {
                if l.starts_with("ec ") {
                    l.replace(&hex64(1.0), &hex64(5.0))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let snap2 = SessionSnapshot::from_text(bad).expect("header intact");
        let err = parse(&snap2).err().expect("non-orthonormal ec");
        assert!(err.contains("orthonormal"), "{err}");
    }
}
