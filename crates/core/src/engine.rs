//! The sans-io session engine: the interactive loop of Fig. 2 as an
//! explicit state machine.
//!
//! [`crate::InteractiveSearch::run_with`] and its legacy wrappers drive the
//! paper's protocol through a *blocking callback*: the engine calls
//! `user.respond(...)` and waits. That shape cannot serve a real frontend —
//! a web UI or RPC handler must own the event loop, hold thousands of
//! half-finished sessions, and answer each user on *their* schedule. The
//! [`SessionEngine`] inverts the control flow:
//!
//! ```text
//!   start ──► Step::NeedResponse(view) ──► caller shows the view
//!     ▲                                        │
//!     │                                        ▼
//!   submit(UserResponse) ◄──────────── user picks a separator
//!     │
//!     ├─► Step::NeedResponse(next view)   (loop)
//!     └─► Step::Done(SearchOutcome)
//! ```
//!
//! Between `NeedResponse` and the next `submit` the engine is *suspended*:
//! it holds no locks, runs no threads, reads no clocks, and can be moved
//! across threads, [snapshotted](SessionEngine::snapshot) to a text blob,
//! and [resumed](SessionEngine::resume) in another process. The engine
//! never blocks and never calls the user — those are the two invariants
//! everything in `hinn-serve` is built on.
//!
//! # Equivalence to the callback loop
//!
//! The engine's state transitions are a line-for-line restructuring of the
//! pre-existing `try_run` loop; `run_with` is now a thin driver over it,
//! so the golden-session, parallel-equivalence, cache-equivalence, and
//! obs-invariance suites all pin the engine to the callback-era outputs
//! bit for bit.
//!
//! # Deadlines
//!
//! A configured [`crate::SearchConfig::deadline`] bounds the session's
//! *compute* time, accumulated across `start`/`submit` segments (and
//! preserved through snapshot/resume). Time the user spends thinking while
//! the engine is suspended is free — the natural semantics for a served
//! session. Checks happen cooperatively at minor-iteration boundaries, as
//! before.

use crate::cache::{ProjectionCacheCtx, SessionCache};
use crate::config::{BandwidthMode, SearchConfig};
use crate::counts::PreferenceCounts;
use crate::degrade::{DegradationEvent, DegradationKind, DegradationLog};
use crate::diagnosis::SearchDiagnosis;
use crate::error::HinnError;
use crate::meaning::iteration_probabilities;
use crate::projection::{try_find_query_centered_projection_ctx, ProjectionResult};
use crate::search::SearchOutcome;
use crate::snapshot::{self, EngineState, SessionSnapshot};
use crate::transcript::{MajorRecord, MinorPhases, MinorRecord, Transcript};
use hinn_cache::{Fingerprint, Fnv128};
use hinn_data::{DatasetHandle, EpochSnapshot};
use hinn_kde::{ProfileNotes, VisualProfile};
use hinn_linalg::Subspace;
use hinn_metrics::drop::DropConfig;
use hinn_user::{UserResponse, ViewContext};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the engine asks of its caller next.
#[derive(Clone, Debug)]
pub enum Step {
    /// A view is ready; show it to the user and [`SessionEngine::submit`]
    /// their response.
    NeedResponse(ViewRequest),
    /// The session finished; the engine is spent.
    Done(Box<SearchOutcome>),
}

impl Step {
    /// The pending view of a `NeedResponse` step.
    pub fn view(&self) -> Option<&ViewRequest> {
        match self {
            Self::NeedResponse(v) => Some(v),
            Self::Done(_) => None,
        }
    }

    /// Is the session finished?
    pub fn is_done(&self) -> bool {
        matches!(self, Self::Done(_))
    }

    /// Consume a `Done` step into its outcome.
    pub fn into_outcome(self) -> Option<SearchOutcome> {
        match self {
            Self::NeedResponse(_) => None,
            Self::Done(o) => Some(*o),
        }
    }
}

/// One view awaiting the user's separator: the rendered density profile
/// plus the iteration context (which rows map to which original points).
#[derive(Clone, Debug)]
pub struct ViewRequest {
    profile: Arc<(VisualProfile, ProfileNotes)>,
    context: ViewContext,
}

impl ViewRequest {
    /// The visual density profile to show.
    pub fn profile(&self) -> &VisualProfile {
        &self.profile.0
    }

    /// Iteration context of the view.
    pub fn context(&self) -> &ViewContext {
        &self.context
    }
}

/// The data set a session runs against: borrowed for the classic
/// run-to-completion drivers, `Arc`-shared for suspended serving sessions
/// that must outlive any caller frame, or pinned to one immutable
/// [`EpochSnapshot`] of a streaming [`DatasetHandle`] — the primary form
/// since the epoch redesign. An epoch store carries the snapshot (for its
/// chained fingerprint, tombstones, and incremental index lineage) plus
/// its materialized dense alive rows, which every engine internal
/// operates on: point id `i` is dense index `i` of the pinned epoch.
pub(crate) enum PointStore<'a> {
    Borrowed(&'a [Vec<f64>]),
    Shared(Arc<Vec<Vec<f64>>>),
    Epoch {
        snap: Arc<EpochSnapshot>,
        rows: Arc<Vec<Vec<f64>>>,
    },
}

impl PointStore<'_> {
    /// Pin `snap`, materializing its dense alive view once.
    pub(crate) fn epoch(snap: Arc<EpochSnapshot>) -> PointStore<'static> {
        let rows = snap.rows();
        PointStore::Epoch { snap, rows }
    }

    fn as_slice(&self) -> &[Vec<f64>] {
        match self {
            PointStore::Borrowed(p) => p,
            PointStore::Shared(p) => p.as_slice(),
            PointStore::Epoch { rows, .. } => rows.as_slice(),
        }
    }

    /// The pinned epoch snapshot, if this is an epoch store.
    fn epoch_snapshot(&self) -> Option<&Arc<EpochSnapshot>> {
        match self {
            PointStore::Epoch { snap, .. } => Some(snap),
            _ => None,
        }
    }
}

/// A [`SessionEngine`] that owns (shares) its data set and can therefore
/// be stored, moved across threads, and suspended indefinitely.
pub type OwnedSessionEngine = SessionEngine<'static>;

/// In-flight state of one major iteration.
struct MajorCtx {
    alive_points: Vec<Vec<f64>>,
    alive_fp: Option<Fingerprint>,
    counts: PreferenceCounts,
    ec: Subspace,
    major_rec: MajorRecord,
    /// Index of the next minor iteration to compute (or of the pending
    /// view while suspended).
    minor: usize,
}

/// A computed view waiting for its response.
struct PendingView {
    request: ViewRequest,
    proj: Arc<(ProjectionResult, Vec<DegradationEvent>)>,
    /// Projection/profile wall times, present iff a recorder was installed
    /// when the view was computed. `t_profile` anchors `select_ns`, which
    /// therefore includes the user's think time — exactly the callback
    /// loop's semantics.
    projection_ns: u64,
    profile_ns: u64,
    t_profile: Option<Instant>,
    /// Degradation-log length just before this view's own events were
    /// recorded. Snapshots serialize only events before this mark:
    /// resume recomputes the pending view and re-emits its events, so
    /// serializing them too would duplicate them on every evict/restore
    /// cycle.
    degr_mark: usize,
}

enum EngineStatus {
    Active,
    Finished,
    Failed,
}

/// The interactive search loop with the user inverted out of it (see
/// module docs).
pub struct SessionEngine<'a> {
    config: SearchConfig,
    drop_config: DropConfig,
    cache: Arc<SessionCache>,
    points: PointStore<'a>,
    query: Vec<f64>,
    // Derived once at start.
    n: usize,
    d: usize,
    s_eff: usize,
    n_minors: usize,
    dataset_fp: Option<Fingerprint>,
    /// `(epoch counter, chained fingerprint)` pinned at open for epoch
    /// sessions; `None` for slice/shared stores. Travels through
    /// snapshots (`x-epoch`) and enforces the typed consistency rule:
    /// resuming against any other epoch is [`HinnError::EpochMismatch`].
    epoch: Option<(u64, Fingerprint)>,
    /// Compute time accumulated across segments (tracked only when a
    /// deadline is configured; the default path stays clock-free).
    pub(crate) spent: Duration,
    // Session-loop state (the snapshot surface).
    pub(crate) alive: Vec<usize>,
    pub(crate) p_sum: Vec<f64>,
    pub(crate) transcript: Transcript,
    pub(crate) majors_run: usize,
    pub(crate) prev_top: Option<Vec<usize>>,
    /// Index of the current (or next) major iteration.
    pub(crate) major: usize,
    /// Termination-by-stability latch.
    pub(crate) stopped: bool,
    cur: Option<MajorCtx>,
    pending: Option<PendingView>,
    status: EngineStatus,
}

impl<'a> SessionEngine<'a> {
    /// Start a session over `data`, pinning its current epoch, with a
    /// fresh cache. Returns the engine together with its first [`Step`].
    ///
    /// The session runs against the pinned [`EpochSnapshot`] for its whole
    /// life: concurrent `append`/`delete` on the handle never perturb it,
    /// and resuming one of its snapshots against a moved handle is a typed
    /// [`HinnError::EpochMismatch`] (see [`SessionEngine::resume`]).
    pub fn start(
        config: SearchConfig,
        data: &DatasetHandle,
        query: &[f64],
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        Self::start_at(config, data.snapshot(), query)
    }

    /// [`SessionEngine::start`] pinned to an explicit epoch snapshot
    /// (e.g. one retained before further ingestion).
    pub fn start_at(
        config: SearchConfig,
        snap: Arc<EpochSnapshot>,
        query: &[f64],
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        SessionEngine::start_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::epoch(snap),
            query,
        )
    }

    /// [`SessionEngine::start_at`] in the serving form: a shared cache,
    /// so sessions pinned to the same epoch reuse each other's artifacts.
    pub fn start_at_shared(
        config: SearchConfig,
        snap: Arc<EpochSnapshot>,
        query: &[f64],
        cache: Arc<SessionCache>,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        SessionEngine::start_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::epoch(snap),
            query,
        )
    }

    /// Start a session over borrowed `points` with its own fresh cache —
    /// the pre-epoch one-shot form, kept as a shim: it behaves exactly as
    /// the old `start` did (content fingerprint by full hash, no epoch
    /// pin). New code should build a [`DatasetHandle`] and use
    /// [`SessionEngine::start`].
    #[deprecated(
        since = "0.1.0",
        note = "use SessionEngine::start with a DatasetHandle (or start_at with an EpochSnapshot)"
    )]
    pub fn start_slice(
        config: SearchConfig,
        points: &'a [Vec<f64>],
        query: &[f64],
    ) -> Result<(Self, Step), HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        Self::start_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::Borrowed(points),
            query,
        )
    }

    /// Start a session that *shares* its data set and cache — the
    /// pre-epoch serving form: the engine is `'static` and can be
    /// suspended in a session table while other sessions of the same data
    /// set reuse the cache.
    #[deprecated(
        since = "0.1.0",
        note = "use SessionEngine::start_at_shared with an EpochSnapshot"
    )]
    pub fn start_shared(
        config: SearchConfig,
        points: Arc<Vec<Vec<f64>>>,
        query: &[f64],
        cache: Arc<SessionCache>,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        SessionEngine::start_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::Shared(points),
            query,
        )
    }

    pub(crate) fn start_inner(
        config: SearchConfig,
        drop_config: DropConfig,
        cache: Arc<SessionCache>,
        points: PointStore<'a>,
        query: &[f64],
    ) -> Result<(Self, Step), HinnError> {
        // Pre-drive work runs under its own `search.session` segment (the
        // guard closes before `drive` opens the next one, so the root path
        // merges rather than nesting): seeding can dominate session time
        // for the indexed sources, and the flight recorder's coverage
        // contract wants it under a named child span.
        let session_span = hinn_obs::span!("search.session");
        let seed_span = hinn_obs::span!("search.seed");
        validate_inputs(points.as_slice(), query)?;
        let pts = points.as_slice();
        let n = pts.len();
        let d = pts[0].len();
        let s_eff = config.effective_support(d).min(n);
        let n_minors = config.effective_minors(d);
        if hinn_obs::enabled() {
            hinn_obs::gauge("search.points", n as f64);
            hinn_obs::gauge("search.dims", d as f64);
            hinn_obs::gauge("search.threads", config.parallelism.threads() as f64);
        }
        // Content fingerprint for the session caches, skipped entirely
        // when every cache is off so that path stays hash-free. An epoch
        // store already carries its chained fingerprint — O(1) instead of
        // the O(n·d) full hash.
        let dataset_fp = (!cache.is_disabled()).then(|| match points.epoch_snapshot() {
            Some(snap) => snap.fingerprint(),
            None => Fingerprint::of_points(pts),
        });
        // The epoch pin is independent of cache policy: the consistency
        // rule must hold even for cache-disabled sessions.
        let epoch = points
            .epoch_snapshot()
            .map(|snap| (snap.epoch(), snap.fingerprint()));
        // Seed the candidate set: the full id range under the default
        // source (bit-for-bit the pre-candidate-source behavior), else the
        // source's top-`budget` ids. Runs before the first view so the
        // whole session — ranking, pruning, termination — operates on the
        // seeded subset. An approximate source that under-delivers (e.g.
        // HNSW over a heavily poisoned dataset) is replaced by the exact
        // linear seed and leaves a starved-seed rung in the log. Epoch
        // stores route through the epoch-aware seeder, which reuses the
        // snapshot's append-only graph lineage and filters tombstones.
        let (alive, seed_event) = match points.epoch_snapshot() {
            Some(snap) => {
                config
                    .candidates
                    .seed_alive_epoch(config.parallelism, snap, pts, query, s_eff)
            }
            None => config
                .candidates
                .seed_alive(config.parallelism, pts, query, s_eff),
        };
        drop(seed_span);
        drop(session_span);
        let mut engine = SessionEngine {
            config,
            drop_config,
            cache,
            points,
            query: query.to_vec(),
            n,
            d,
            s_eff,
            n_minors,
            dataset_fp,
            epoch,
            spent: Duration::ZERO,
            alive,
            p_sum: vec![0.0; n],
            transcript: Transcript::default(),
            majors_run: 0,
            prev_top: None,
            major: 0,
            stopped: false,
            cur: None,
            pending: None,
            status: EngineStatus::Active,
        };
        if let Some(event) = seed_event {
            engine.transcript.degradations.push(event);
        }
        let step = engine.drive(None)?;
        Ok((engine, step))
    }

    /// Override the steep-drop detector configuration (before any
    /// response has been submitted).
    pub fn with_drop_config(mut self, drop_config: DropConfig) -> Self {
        self.drop_config = drop_config;
        self
    }

    /// Submit the user's response to the pending view and run the engine
    /// forward to the next suspension point (or completion).
    ///
    /// # Errors
    /// [`HinnError::InvalidInput`] when no view is pending (the session
    /// already finished or failed); [`HinnError::Deadline`] when the
    /// compute budget expires; any projection-pipeline error the
    /// degradation ladder could not absorb. After an error the engine is
    /// spent: further submits report `InvalidInput`.
    pub fn submit(&mut self, response: UserResponse) -> Result<Step, HinnError> {
        if !matches!(self.status, EngineStatus::Active) || self.pending.is_none() {
            return Err(HinnError::InvalidInput {
                phase: "engine.submit",
                message: "SessionEngine: no view awaiting a response".into(),
            });
        }
        self.drive(Some(response))
    }

    /// The view currently awaiting a response (`None` once the session
    /// finished or failed).
    pub fn pending_view(&self) -> Option<&ViewRequest> {
        self.pending.as_ref().map(|p| &p.request)
    }

    /// Is the engine still suspended, waiting for a response?
    pub fn is_suspended(&self) -> bool {
        self.pending.is_some()
    }

    /// `(major, minor)` cursor of the pending view (or of the next view
    /// to compute).
    pub fn cursor(&self) -> (usize, usize) {
        (self.major, self.cur.as_ref().map_or(0, |c| c.minor))
    }

    /// Major iterations completed so far.
    pub fn majors_run(&self) -> usize {
        self.majors_run
    }

    /// Candidate points still alive.
    pub fn alive_len(&self) -> usize {
        self.alive.len()
    }

    /// Degradation-ladder rungs the session has taken so far. On
    /// completion the log moves into [`SearchOutcome`]; after a terminal
    /// error it stays here — which is exactly when a postmortem reader
    /// (the serve layer's flight recorder) needs it.
    pub fn degradations(&self) -> &crate::degrade::DegradationLog {
        &self.transcript.degradations
    }

    /// Compute time consumed so far (tracked only when a deadline is
    /// configured; [`Duration::ZERO`] otherwise).
    pub fn spent_compute(&self) -> Duration {
        self.spent
    }

    /// The session's configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The session's cache (shared with whoever started the engine).
    pub fn session_cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// The `(epoch counter, chained fingerprint)` this session pinned at
    /// open — `None` for sessions over plain slices or shared vectors.
    pub fn dataset_epoch(&self) -> Option<(u64, Fingerprint)> {
        self.epoch
    }

    /// Serialize the suspended session to a [`SessionSnapshot`] (see
    /// [`crate::snapshot`] for the format and what it guarantees). The
    /// pending view is *not* serialized — resume recomputes it, and
    /// determinism makes the recomputation bit-identical.
    ///
    /// # Errors
    /// [`HinnError::InvalidInput`] when the engine is not suspended (there
    /// is nothing between-views to capture) or when
    /// [`SearchConfig::record_profiles`] is set (recorded profiles are
    /// multi-megabyte render artifacts the text format refuses to carry).
    pub fn snapshot(&self) -> Result<SessionSnapshot, HinnError> {
        let snapshot_err = |message: String| HinnError::InvalidInput {
            phase: "session.snapshot",
            message,
        };
        if self.config.record_profiles {
            return Err(snapshot_err(
                "SessionEngine::snapshot: record_profiles sessions cannot be snapshotted"
                    .to_string(),
            ));
        }
        let (cur, pending) = match (&self.cur, &self.pending) {
            (Some(cur), Some(pending)) => (cur, pending),
            _ => {
                return Err(snapshot_err(
                    "SessionEngine::snapshot: engine is not suspended at a view".to_string(),
                ))
            }
        };
        let state = EngineState {
            n: self.n,
            d: self.d,
            config_fp: config_fingerprint(&self.config),
            query: self.query.clone(),
            dataset_fp: self.dataset_fp,
            epoch: self.epoch,
            spent_ns: self.spent.as_nanos() as u64,
            major: self.major,
            minor: cur.minor,
            majors_run: self.majors_run,
            stopped: self.stopped,
            alive: self.alive.clone(),
            p_sum: self.p_sum.clone(),
            prev_top: self.prev_top.clone(),
            counts_v: cur.counts.counts().to_vec(),
            counts_picks: cur.counts.views().to_vec(),
            ec: cur.ec.clone(),
            major_n_before: cur.major_rec.n_points_before,
            major_minors: cur.major_rec.minors.clone(),
            transcript_majors: self.transcript.majors.clone(),
            // Only events from *before* the pending view: resume recomputes
            // that view bit-identically, re-emitting its events, so carrying
            // them in the snapshot would duplicate them on every restore.
            degradations: self.transcript.degradations.events[..pending.degr_mark].to_vec(),
        };
        Ok(snapshot::render(&state))
    }

    /// Resume a snapshotted session against `data`'s *current* epoch with
    /// a fresh cache. Returns the engine re-suspended at the same view it
    /// was snapshotted at (recomputed, bit-identically).
    ///
    /// The typed consistency rule: if the handle has moved past the epoch
    /// the session pinned at open — any `append` or `delete` since — this
    /// is [`HinnError::EpochMismatch`], never a silent resume against
    /// moved data. Callers either resume onto the pinned snapshot they
    /// retained ([`SessionEngine::resume_at`]) or opt into an explicit
    /// remap with [`SessionEngine::resume_rebased`].
    ///
    /// `config` must match the loop-relevant knobs of the session that was
    /// snapshotted (guarded by a fingerprint); thread budget, cache
    /// policy, and deadline may differ — none of them change results.
    pub fn resume(
        config: SearchConfig,
        data: &DatasetHandle,
        snapshot: &SessionSnapshot,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        Self::resume_at(config, data.snapshot(), snapshot)
    }

    /// [`SessionEngine::resume`] against an explicit epoch snapshot —
    /// normally the one the session pinned at open.
    pub fn resume_at(
        config: SearchConfig,
        snap: Arc<EpochSnapshot>,
        snapshot: &SessionSnapshot,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        SessionEngine::resume_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::epoch(snap),
            snapshot,
        )
    }

    /// [`SessionEngine::resume_at`] in the serving form: shared cache,
    /// `'static` engine (see [`SessionEngine::start_at_shared`]).
    pub fn resume_at_shared(
        config: SearchConfig,
        snap: Arc<EpochSnapshot>,
        snapshot: &SessionSnapshot,
        cache: Arc<SessionCache>,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        SessionEngine::resume_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::epoch(snap),
            snapshot,
        )
    }

    /// Explicitly rebase a snapshotted epoch session onto a *newer* epoch
    /// of the same handle — the opt-in escape hatch from
    /// [`HinnError::EpochMismatch`].
    ///
    /// `from` must be the epoch the session pinned at open (fingerprint
    /// checked); `onto` must be a later snapshot of the same handle's
    /// lineage. The session's per-point state is remapped by *global* row
    /// id: rows deleted since the pin drop out of the alive set,
    /// probability mass, and preference counts; rows appended since join
    /// with zero mass (they compete from the next major iteration on).
    /// The rebase is therefore *not* bit-identical to having run on
    /// `onto` from the start — it is an explicit, documented
    /// approximation, which is why it never happens implicitly.
    ///
    /// # Errors
    /// [`HinnError::EpochMismatch`] when `from` is not the pinned epoch;
    /// [`HinnError::InvalidInput`] when the snapshot carries no epoch pin,
    /// the shapes are incompatible, or fewer than two of the session's
    /// alive points survive on `onto`.
    pub fn resume_rebased(
        config: SearchConfig,
        from: Arc<EpochSnapshot>,
        onto: Arc<EpochSnapshot>,
        snapshot: &SessionSnapshot,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        Self::resume_rebased_shared(config, from, onto, snapshot, cache)
    }

    /// [`SessionEngine::resume_rebased`] with a shared cache (the serving
    /// form).
    pub fn resume_rebased_shared(
        config: SearchConfig,
        from: Arc<EpochSnapshot>,
        onto: Arc<EpochSnapshot>,
        snapshot: &SessionSnapshot,
        cache: Arc<SessionCache>,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        let rebase_err = |message: String| HinnError::InvalidInput {
            phase: "session.rebase",
            message: format!("SessionEngine::resume_rebased: {message}"),
        };
        config.try_validate()?;
        let state = snapshot::parse(snapshot).map_err(&rebase_err)?;
        let Some((pinned_num, pinned_fp)) = state.epoch else {
            return Err(rebase_err(
                "snapshot carries no epoch pin; only epoch sessions can be rebased".into(),
            ));
        };
        if pinned_fp != from.fingerprint() {
            return Err(HinnError::EpochMismatch {
                pinned: pinned_num,
                offered: from.epoch(),
            });
        }
        if onto.dim() != from.dim() {
            return Err(rebase_err(format!(
                "target epoch dimensionality {} differs from the pinned epoch's {}",
                onto.dim(),
                from.dim()
            )));
        }
        if onto.appended_len() < from.appended_len() {
            return Err(rebase_err(
                "target epoch is not a descendant of the pinned epoch \
                 (fewer rows were ever appended)"
                    .into(),
            ));
        }
        // Remap dense indices through global row ids: pinned-dense →
        // global → target-dense. `dense_index_of` is `None` exactly for
        // rows deleted since the pin.
        let from_ids = from.alive_ids();
        let remap = |dense: usize| -> Option<usize> {
            from_ids
                .get(dense)
                .and_then(|&gid| onto.dense_index_of(gid))
        };
        let alive: Vec<usize> = state.alive.iter().filter_map(|&i| remap(i)).collect();
        if alive.len() < 2 {
            return Err(rebase_err(
                "fewer than two of the session's alive points survive on the target epoch".into(),
            ));
        }
        let n_new = onto.len();
        let mut p_sum = vec![0.0; n_new];
        let mut counts_v = vec![0.0; n_new];
        for (old_dense, (&p, &c)) in state.p_sum.iter().zip(&state.counts_v).enumerate() {
            if let Some(new_dense) = remap(old_dense) {
                p_sum[new_dense] = p;
                counts_v[new_dense] = c;
            }
        }
        let prev_top = state
            .prev_top
            .as_ref()
            .map(|top| top.iter().filter_map(|&i| remap(i)).collect());
        let rebased = EngineState {
            n: n_new,
            d: state.d,
            config_fp: state.config_fp,
            query: state.query,
            dataset_fp: Some(onto.fingerprint()),
            epoch: Some((onto.epoch(), onto.fingerprint())),
            spent_ns: state.spent_ns,
            major: state.major,
            minor: state.minor,
            majors_run: state.majors_run,
            stopped: state.stopped,
            alive,
            p_sum,
            prev_top,
            counts_v,
            counts_picks: state.counts_picks,
            ec: state.ec,
            major_n_before: state.major_n_before,
            major_minors: state.major_minors,
            transcript_majors: state.transcript_majors,
            degradations: state.degradations,
        };
        let rebased_snapshot = snapshot::render(&rebased);
        SessionEngine::resume_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::epoch(onto),
            &rebased_snapshot,
        )
    }

    /// Resume a snapshotted session over borrowed `points` with a fresh
    /// cache — the pre-epoch shim matching [`SessionEngine::start_slice`].
    #[deprecated(
        since = "0.1.0",
        note = "use SessionEngine::resume with a DatasetHandle (or resume_at with an EpochSnapshot)"
    )]
    pub fn resume_slice(
        config: SearchConfig,
        points: &'a [Vec<f64>],
        snapshot: &SessionSnapshot,
    ) -> Result<(Self, Step), HinnError> {
        config.try_validate()?;
        let cache = Arc::new(SessionCache::new(config.cache));
        Self::resume_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::Borrowed(points),
            snapshot,
        )
    }

    /// The pre-epoch serving resume: shared data set and cache, `'static`
    /// engine (see [`SessionEngine::start_shared`]).
    #[deprecated(
        since = "0.1.0",
        note = "use SessionEngine::resume_at_shared with an EpochSnapshot"
    )]
    pub fn resume_shared(
        config: SearchConfig,
        points: Arc<Vec<Vec<f64>>>,
        snapshot: &SessionSnapshot,
        cache: Arc<SessionCache>,
    ) -> Result<(OwnedSessionEngine, Step), HinnError> {
        config.try_validate()?;
        SessionEngine::resume_inner(
            config,
            DropConfig::default(),
            cache,
            PointStore::Shared(points),
            snapshot,
        )
    }

    pub(crate) fn resume_inner(
        config: SearchConfig,
        drop_config: DropConfig,
        cache: Arc<SessionCache>,
        points: PointStore<'a>,
        snap: &SessionSnapshot,
    ) -> Result<(Self, Step), HinnError> {
        let resume_err = |message: String| HinnError::InvalidInput {
            phase: "session.resume",
            message: format!("SessionEngine::resume: {message}"),
        };
        let state = snapshot::parse(snap).map_err(&resume_err)?;
        validate_inputs(points.as_slice(), &state.query)?;
        // Epoch consistency is checked before shape: a handle that moved
        // past the pinned epoch usually changes n as well, and the typed
        // refusal must win over a bare shape error.
        match (points.epoch_snapshot(), state.epoch) {
            (Some(snap_now), Some((pinned_num, pinned_fp)))
                if pinned_fp != snap_now.fingerprint() =>
            {
                return Err(HinnError::EpochMismatch {
                    pinned: pinned_num,
                    offered: snap_now.epoch(),
                });
            }
            (None, Some((pinned, _))) => {
                return Err(resume_err(format!(
                    "snapshot pinned dataset epoch {pinned}; resume it over an epoch \
                     snapshot (SessionEngine::resume / resume_at) or rebase explicitly"
                )));
            }
            _ => {}
        }
        let pts = points.as_slice();
        let n = pts.len();
        let d = pts[0].len();
        if n != state.n || d != state.d {
            return Err(resume_err(format!(
                "data set shape {n}x{d} does not match snapshot {}x{}",
                state.n, state.d
            )));
        }
        if config_fingerprint(&config) != state.config_fp {
            return Err(resume_err(
                "configuration differs from the snapshotted session's".to_string(),
            ));
        }
        let dataset_fp = (!cache.is_disabled()).then(|| match points.epoch_snapshot() {
            // The chained epoch fingerprint is O(1) and already covers
            // content; re-hashing the dense rows would key caches
            // differently from the open path.
            Some(s) => s.fingerprint(),
            None => Fingerprint::of_points(pts),
        });
        if let (Some(now), Some(then)) = (dataset_fp, state.dataset_fp) {
            if now != then {
                return Err(resume_err(
                    "data set content differs from the snapshotted session's".to_string(),
                ));
            }
        }
        let s_eff = config.effective_support(d).min(n);
        let n_minors = config.effective_minors(d);
        if state.alive.len() < 2 || state.alive.iter().any(|&i| i >= n) {
            return Err(resume_err("alive set is out of range".to_string()));
        }
        if state.p_sum.len() != n || state.counts_v.len() != n {
            return Err(resume_err(
                "per-point vectors have the wrong length".to_string(),
            ));
        }
        if state.minor >= n_minors
            || state.major >= config.max_major_iterations
            || state.ec.ambient_dim() != d
        {
            return Err(resume_err(
                "cursor is outside the session's bounds".to_string(),
            ));
        }
        let alive_points: Vec<Vec<f64>> = state.alive.iter().map(|&i| pts[i].clone()).collect();
        let alive_fp = dataset_fp.map(|fp| SessionCache::alive_key(fp, &state.alive));
        let spent_at_snapshot = Duration::from_nanos(state.spent_ns);
        let mut engine = SessionEngine {
            config,
            drop_config,
            cache,
            points,
            query: state.query,
            n,
            d,
            s_eff,
            n_minors,
            dataset_fp,
            epoch: state.epoch,
            spent: spent_at_snapshot,
            alive: state.alive,
            p_sum: state.p_sum,
            transcript: Transcript {
                majors: state.transcript_majors,
                degradations: DegradationLog {
                    events: state.degradations,
                },
            },
            majors_run: state.majors_run,
            prev_top: state.prev_top,
            major: state.major,
            stopped: state.stopped,
            cur: Some(MajorCtx {
                alive_points,
                alive_fp,
                counts: PreferenceCounts::from_parts(state.counts_v, state.counts_picks),
                ec: state.ec,
                major_rec: MajorRecord {
                    minors: state.major_minors,
                    n_points_before: state.major_n_before,
                    ..MajorRecord::default()
                },
                minor: state.minor,
            }),
            pending: None,
            status: EngineStatus::Active,
        };
        // Recompute the view that was pending at suspension time: a pure
        // function of the restored state, so it comes out bit-identical.
        let step = engine.drive(None)?;
        // The recomputation re-does work the original session already paid
        // for (the view's compute was metered before the snapshot), so it
        // must not be charged again: a session bounced between residency
        // tiers would otherwise burn its deadline budget on eviction
        // pressure alone, without any user-visible progress.
        engine.spent = spent_at_snapshot;
        Ok((engine, step))
    }

    /// One driver segment: apply a response if one was submitted, then run
    /// until the next suspension point, completion, or error. All compute
    /// of the session happens inside these segments.
    fn drive(&mut self, response: Option<UserResponse>) -> Result<Step, HinnError> {
        let _session_span = hinn_obs::span!("search.session");
        // The segment clock exists only when a deadline is configured: the
        // default path stays clock-free outside instrumentation, which the
        // obs-invariance suite relies on.
        let seg_start = self.config.deadline.map(|_| Instant::now());
        let out = self.drive_inner(response, seg_start);
        if let Some(t0) = seg_start {
            self.spent += t0.elapsed();
        }
        match &out {
            Ok(Step::Done(_)) => self.status = EngineStatus::Finished,
            Ok(Step::NeedResponse(_)) => {}
            Err(_) => self.status = EngineStatus::Failed,
        }
        out
    }

    fn drive_inner(
        &mut self,
        response: Option<UserResponse>,
        seg_start: Option<Instant>,
    ) -> Result<Step, HinnError> {
        if let Some(r) = response {
            // The apply half of the suspended minor iteration runs under
            // the same span path as its compute half, so density
            // connection (`kde.connect`) keeps its place in the span tree.
            let _major_span = hinn_obs::span!("search.major");
            let _minor_span = hinn_obs::span!("search.minor");
            self.apply_response(r);
        }
        loop {
            if self.cur.is_some() {
                let _major_span = hinn_obs::span!("search.major");
                if let Some(request) = self.compute_minors(seg_start)? {
                    return Ok(Step::NeedResponse(request));
                }
                // Minor loop exhausted: close out the major iteration
                // (still inside the major span — `meaning.update` nests
                // under it, as in the callback loop).
                self.finish_major();
            } else if self.stopped
                || self.major >= self.config.max_major_iterations
                || self.alive.len() < 2
            {
                // Final ranking and diagnosis get their own child span so
                // the session root stays fully accounted for in the
                // flight-recorder timeline.
                let _finish_span = hinn_obs::span!("search.finish");
                return Ok(Step::Done(Box::new(self.finish_session())));
            } else {
                self.begin_major();
            }
        }
    }

    /// Set up the next major iteration (Fig. 2's outer loop head).
    fn begin_major(&mut self) {
        let _major_span = hinn_obs::span!("search.major");
        // Candidate-set size entering this major iteration.
        hinn_obs::observe("search.candidates", self.alive.len() as f64);
        let pts = self.points.as_slice();
        let alive_points: Vec<Vec<f64>> = self.alive.iter().map(|&i| pts[i].clone()).collect();
        // Every cache key below derives from this fingerprint, so a stale
        // entry is unreachable by construction: shrinking the alive set
        // changes the key instead of invalidating anything.
        let alive_fp = self
            .dataset_fp
            .map(|fp| SessionCache::alive_key(fp, &self.alive));
        self.cur = Some(MajorCtx {
            alive_points,
            alive_fp,
            counts: PreferenceCounts::new(self.n),
            ec: Subspace::full(self.d),
            major_rec: MajorRecord {
                n_points_before: self.alive.len(),
                ..MajorRecord::default()
            },
            minor: 0,
        });
    }

    /// Run minor iterations of the current major until one suspends
    /// (`Some(view)`) or the minor loop is exhausted (`None`).
    fn compute_minors(
        &mut self,
        seg_start: Option<Instant>,
    ) -> Result<Option<ViewRequest>, HinnError> {
        loop {
            {
                let cur = match &self.cur {
                    Some(c) => c,
                    None => return Ok(None),
                };
                if cur.minor >= self.n_minors || cur.ec.dim() < 2 {
                    return Ok(None);
                }
            }
            // Deterministic fault point: a forced in-session panic, for
            // proving that the batch boundary contains it.
            if hinn_fault::point("search.panic") {
                panic!("forced in-session panic (fault point search.panic)");
            }
            // Cooperative deadline check at the view boundary — the
            // overshoot is at most one view's work. The fault point is
            // consulted first so forced expiry fires deterministically
            // regardless of machine speed.
            if let Some(budget) = self.config.deadline {
                let elapsed = self.spent + seg_start.map(|t| t.elapsed()).unwrap_or_default();
                if hinn_fault::point("search.deadline") || elapsed > budget {
                    return Err(HinnError::Deadline {
                        phase: "search.minor",
                        elapsed,
                        budget,
                    });
                }
            }
            let _minor_span = hinn_obs::span!("search.minor");
            if let Some(request) = self.compute_view()? {
                return Ok(Some(request));
            }
            // View skipped (SkippedMinorView rung): the minor index was
            // consumed; try the next one in the remaining subspace.
        }
    }

    /// Compute one view (Figs. 3–5). Returns the suspension request, or
    /// `None` when the view was skipped via the degradation ladder.
    fn compute_view(&mut self) -> Result<Option<ViewRequest>, HinnError> {
        let par = self.config.parallelism;
        let cur = match self.cur.as_mut() {
            Some(c) => c,
            None => return Ok(None),
        };
        let minor = cur.minor;
        let major = self.major;
        // Phase wall-clocks for the transcript; only read while a recorder
        // is installed so the disabled path stays free of clock calls (and
        // the invariance tests compare fields that exist on both paths).
        let timing = hinn_obs::enabled();
        let t_start = timing.then(Instant::now);
        // L1: the whole Fig. 3 projection search, memoized with its
        // degradation events (replayed on a hit so warm transcripts match
        // cold ones). Errors are never cached.
        let proj_pair: Arc<(ProjectionResult, Vec<DegradationEvent>)> = match cur.alive_fp {
            Some(afp) => {
                let cache_ctx = ProjectionCacheCtx {
                    alive_fp: afp,
                    cache: &self.cache,
                };
                let key = SessionCache::projection_key(
                    afp,
                    &self.query,
                    &cur.ec,
                    self.s_eff,
                    self.config.projection_mode,
                );
                self.cache.projection.get_or_try_insert_with(key, || {
                    try_find_query_centered_projection_ctx(
                        par,
                        &cur.alive_points,
                        &self.query,
                        &cur.ec,
                        self.s_eff,
                        self.config.projection_mode,
                        Some(&cache_ctx),
                    )
                })?
            }
            None => Arc::new(try_find_query_centered_projection_ctx(
                par,
                &cur.alive_points,
                &self.query,
                &cur.ec,
                self.s_eff,
                self.config.projection_mode,
                None,
            )?),
        };
        let proj = &proj_pair.0;
        let degr_mark = self.transcript.degradations.len();
        self.transcript
            .degradations
            .absorb(proj_pair.1.clone(), major, minor);
        let t_proj = timing.then(Instant::now);
        // L2: projected 2-D coordinates plus the grid KDE. The projection
        // step above is part of the memoized value, so a hit skips both
        // the O(n·d) projection and the O(n·p²) density estimation.
        let build_profile = || {
            let mut pts2d: Vec<[f64; 2]> = vec![[0.0; 2]; cur.alive_points.len()];
            hinn_par::fill_chunks(par, &mut pts2d, |start, slice| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    let c = proj.projection.project(&cur.alive_points[start + off]);
                    *slot = [c[0], c[1]];
                }
            });
            let qc = proj.projection.project(&self.query);
            match self.config.bandwidth_mode {
                BandwidthMode::Fixed => VisualProfile::try_build_with(
                    par,
                    pts2d,
                    [qc[0], qc[1]],
                    self.config.grid_n,
                    self.config.bandwidth_scale,
                ),
                BandwidthMode::Adaptive { alpha } => VisualProfile::try_build_adaptive_with(
                    par,
                    pts2d,
                    [qc[0], qc[1]],
                    self.config.grid_n,
                    self.config.bandwidth_scale,
                    alpha,
                ),
            }
        };
        let built: Result<Arc<(VisualProfile, ProfileNotes)>, _> = match cur.alive_fp {
            Some(afp) => {
                let key = SessionCache::profile_key(
                    afp,
                    &self.query,
                    &proj.projection,
                    self.config.grid_n,
                    self.config.bandwidth_scale,
                    self.config.bandwidth_mode,
                );
                self.cache
                    .profile
                    .get_or_try_insert_with(key, build_profile)
            }
            None => build_profile().map(Arc::new),
        };
        let profile_pair = match built {
            Ok(p) => p,
            Err(e) => {
                // An unusable view is skipped, not fatal: record the skip
                // and continue the session in the remaining subspace
                // (ladder rung: SkippedMinorView).
                self.transcript.degradations.push(DegradationEvent {
                    major: Some(major),
                    minor: Some(minor),
                    kind: DegradationKind::SkippedMinorView,
                    detail: format!("visual profile unavailable ({e}); view skipped"),
                });
                cur.ec = proj.remainder.clone();
                cur.minor += 1;
                return Ok(None);
            }
        };
        if profile_pair.1.bandwidth_floored {
            self.transcript.degradations.push(DegradationEvent {
                major: Some(major),
                minor: Some(minor),
                kind: DegradationKind::BandwidthFloored,
                detail: "zero-spread projection; KDE bandwidth floored".into(),
            });
        }
        let t_profile = timing.then(Instant::now);
        let context = ViewContext {
            major,
            minor,
            original_ids: self.alive.clone(),
            total_n: self.n,
        };
        let (projection_ns, profile_ns) = match (t_start, t_proj, t_profile) {
            (Some(a), Some(b), Some(c)) => ((b - a).as_nanos() as u64, (c - b).as_nanos() as u64),
            _ => (0, 0),
        };
        let request = ViewRequest {
            profile: profile_pair.clone(),
            context,
        };
        self.pending = Some(PendingView {
            request: request.clone(),
            proj: proj_pair,
            projection_ns,
            profile_ns,
            t_profile,
            degr_mark,
        });
        Ok(Some(request))
    }

    /// Fold the user's response into the session (Figs. 6–7): selection,
    /// preference counts, transcript record, subspace advance.
    fn apply_response(&mut self, response: UserResponse) {
        let pending = match self.pending.take() {
            Some(p) => p,
            None => return,
        };
        let cur = match self.cur.as_mut() {
            Some(c) => c,
            None => return,
        };
        let profile = &pending.request.profile.0;
        let minor = pending.request.context.minor;
        let major = pending.request.context.major;
        let picked_rows: Vec<usize> = match &response {
            UserResponse::Threshold(tau) => profile.select(*tau, self.config.corner_rule),
            UserResponse::Polygon(lines) => profile.select_polygon(lines),
            UserResponse::Discard => Vec::new(),
        };
        let w = self.config.weight(minor);
        if picked_rows.is_empty() {
            cur.counts.record_discard(w);
        } else {
            let picked_ids: Vec<usize> = picked_rows.iter().map(|&r| self.alive[r]).collect();
            cur.counts.record_view(&picked_ids, w);
        }
        let query_peak_ratio = if profile.max_density() > 0.0 {
            profile.query_density() / profile.max_density()
        } else {
            0.0
        };
        let phases = pending.t_profile.map(|c| MinorPhases {
            projection_ns: pending.projection_ns,
            profile_ns: pending.profile_ns,
            select_ns: c.elapsed().as_nanos() as u64,
        });
        if let Some(p) = &phases {
            hinn_obs::observe("search.picked", picked_rows.len() as f64);
            hinn_obs::observe("search.minor_ms", p.total_ns() as f64 / 1e6);
        }
        cur.major_rec.minors.push(MinorRecord {
            major,
            minor,
            projection: pending.proj.0.projection.clone(),
            variance_ratios: pending.proj.0.variance_ratios.clone(),
            response,
            n_picked: picked_rows.len(),
            query_peak_ratio,
            profile: if self.config.record_profiles {
                Some(profile.clone())
            } else {
                None
            },
            phases,
        });
        cur.ec = pending.proj.0.remainder.clone();
        cur.minor += 1;
    }

    /// Close out the current major iteration (Figs. 2 & 8): probabilities,
    /// stability check, survivor filter.
    fn finish_major(&mut self) {
        let mut cur = match self.cur.take() {
            Some(c) => c,
            None => return,
        };
        // Fig. 8: convert counts to per-iteration probabilities.
        let probs = iteration_probabilities(&cur.counts, &self.alive);
        for (k, &id) in self.alive.iter().enumerate() {
            self.p_sum[id] += probs[k];
        }
        self.majors_run += 1;

        // Termination check on the stability of the top-s set.
        let current_probs: Vec<f64> = self
            .p_sum
            .iter()
            .map(|p| p / self.majors_run as f64)
            .collect();
        let top = rank_neighbors(
            &current_probs,
            self.points.as_slice(),
            &self.query,
            self.s_eff,
        );
        let overlap = self.prev_top.as_ref().map(|prev| {
            let prev_set: std::collections::HashSet<usize> = prev.iter().copied().collect();
            top.iter().filter(|i| prev_set.contains(i)).count() as f64 / self.s_eff.max(1) as f64
        });
        cur.major_rec.overlap_with_previous = overlap;

        // Fig. 2: drop points never picked this iteration.
        let survivors = cur.counts.survivors(&self.alive);
        if survivors.len() >= 2 {
            self.alive = survivors;
        }
        cur.major_rec.n_points_after = self.alive.len();
        self.transcript.majors.push(cur.major_rec);
        self.prev_top = Some(top);

        let stable = overlap
            .map(|o| o >= self.config.overlap_threshold)
            .unwrap_or(false);
        if self.majors_run >= self.config.min_major_iterations && stable {
            self.stopped = true;
        }
        self.major += 1;
    }

    /// Final probabilities, ranking and diagnosis (§4.1–4.2).
    fn finish_session(&mut self) -> SearchOutcome {
        let probabilities: Vec<f64> = if self.majors_run > 0 {
            self.p_sum
                .iter()
                .map(|p| p / self.majors_run as f64)
                .collect()
        } else {
            std::mem::take(&mut self.p_sum)
        };
        let neighbors = rank_neighbors(
            &probabilities,
            self.points.as_slice(),
            &self.query,
            self.s_eff,
        );
        let transcript = std::mem::take(&mut self.transcript);
        let diagnosis = SearchDiagnosis::derive(&probabilities, &transcript, &self.drop_config);
        SearchOutcome {
            neighbors,
            probabilities,
            transcript,
            diagnosis,
            majors_run: self.majors_run,
            effective_support: self.s_eff,
        }
    }
}

/// Input validation shared by every entry point (identical messages to the
/// legacy `try_run` so `should_panic` callers keep matching).
fn validate_inputs(points: &[Vec<f64>], query: &[f64]) -> Result<(), HinnError> {
    let invalid = |message: String| {
        Err(HinnError::InvalidInput {
            phase: "search.validate",
            message,
        })
    };
    if points.is_empty() {
        return invalid("InteractiveSearch: empty data set".into());
    }
    let d = points[0].len();
    if d < 2 {
        return invalid("InteractiveSearch: need at least 2 dimensions".into());
    }
    if query.len() != d {
        return invalid(format!(
            "InteractiveSearch: query dimensionality {} does not match data dimensionality {d}",
            query.len()
        ));
    }
    if !query.iter().all(|v| v.is_finite()) {
        return invalid("InteractiveSearch: query contains non-finite coordinates".into());
    }
    for (i, p) in points.iter().enumerate() {
        if p.len() != d {
            return invalid(format!(
                "InteractiveSearch: ragged point {i} (length {}, expected {d})",
                p.len()
            ));
        }
        if !p.iter().all(|v| v.is_finite()) {
            return invalid(format!(
                "InteractiveSearch: point {i} contains non-finite coordinates"
            ));
        }
    }
    Ok(())
}

/// Fingerprint of the loop-relevant configuration knobs — the ones that
/// change what a session computes, used to guard snapshot resume. Thread
/// budget, cache policy, and deadline are deliberately excluded: results
/// are invariant to all three, so a session may be resumed under a
/// different budget, cache, or remaining time allowance.
fn config_fingerprint(config: &SearchConfig) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write_usize(config.support);
    h.write_usize(config.grid_n);
    h.write_f64(config.bandwidth_scale);
    h.write_str(&format!("{:?}", config.bandwidth_mode));
    h.write_str(&format!("{:?}", config.projection_mode));
    h.write_str(&format!("{:?}", config.corner_rule));
    h.write_f64(config.overlap_threshold);
    h.write_usize(config.min_major_iterations);
    h.write_usize(config.max_major_iterations);
    h.write_f64s(&config.projection_weights);
    h.write_u8(u8::from(config.record_profiles));
    // The minors cap changes how many views each major runs, so capped
    // (load-shed) sessions resume only under the same cap.
    h.write_str(&format!("{:?}", config.max_minors));
    // The candidate source changes which points a session ever considers;
    // its `Debug` form is exact (integer fields only).
    h.write_str(&format!("{:?}", config.candidates));
    h.finish()
}

/// Rank original indices by probability (descending), breaking ties by
/// full-space Euclidean distance to the query (ascending), then index.
/// Probabilities and squared distances are non-negative, so `total_cmp`
/// coincides with the old partial order while staying total on poisoned
/// (NaN) values.
pub(crate) fn rank_neighbors(
    probabilities: &[f64],
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..probabilities.len()).collect();
    order.sort_by(|&a, &b| {
        probabilities[b]
            .total_cmp(&probabilities[a])
            .then_with(|| {
                let da = hinn_linalg::vector::dist_sq(&points[a], query);
                let db = hinn_linalg::vector::dist_sq(&points[b], query);
                da.total_cmp(&db)
            })
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProjectionMode;
    use hinn_data::EpochError;
    use hinn_user::{HeuristicUser, UserModel};

    fn planted() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 0xDA3E39CB94B95BDBu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for _ in 0..30 {
            let mut p: Vec<f64> = (0..8).map(|_| unif() * 100.0).collect();
            for coord in p.iter_mut().take(3) {
                *coord = 50.0 + (unif() - 0.5) * 3.0;
            }
            pts.push(p);
        }
        for _ in 0..170 {
            pts.push((0..8).map(|_| unif() * 100.0).collect());
        }
        (pts, vec![50.0; 8])
    }

    fn config() -> SearchConfig {
        SearchConfig::default()
            .with_support(30)
            .with_mode(ProjectionMode::AxisParallel)
    }

    fn handle(pts: &[Vec<f64>]) -> DatasetHandle {
        DatasetHandle::new(pts).expect("epoch handle")
    }

    /// Drive an engine to completion with a user model (the inverted
    /// control flow done by hand).
    fn drive_to_done(
        mut engine: SessionEngine<'_>,
        mut step: Step,
        user: &mut dyn UserModel,
    ) -> SearchOutcome {
        loop {
            match step {
                Step::Done(outcome) => return *outcome,
                Step::NeedResponse(req) => {
                    let r = user.respond(req.profile(), req.context());
                    step = engine.submit(r).expect("engine.submit");
                }
            }
        }
    }

    #[test]
    fn engine_matches_callback_loop_bit_for_bit() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let mut user = HeuristicUser::default();
        let callback = crate::InteractiveSearch::new(config())
            .run_with(&dh, &q, &mut user, crate::search::RunOptions::default())
            .expect("callback loop")
            .outcome;
        let (engine, step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let outcome = drive_to_done(engine, step, &mut HeuristicUser::default());
        assert_eq!(outcome.neighbors, callback.neighbors);
        assert_eq!(outcome.majors_run, callback.majors_run);
        for (a, b) in outcome.probabilities.iter().zip(&callback.probabilities) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn submit_after_done_is_a_typed_error() {
        let (pts, q) = planted();
        let (mut engine, step) = SessionEngine::start(config(), &handle(&pts), &q).expect("start");
        let mut step = step;
        loop {
            match step {
                Step::Done(_) => break,
                Step::NeedResponse(req) => {
                    let r = HeuristicUser::default().respond(req.profile(), req.context());
                    step = engine.submit(r).expect("submit");
                }
            }
        }
        assert!(!engine.is_suspended());
        let err = engine
            .submit(UserResponse::Discard)
            .expect_err("spent engine");
        assert!(err.is_invalid_input());
    }

    #[test]
    fn start_validates_inputs_like_the_legacy_loop() {
        let empty = DatasetHandle::empty(2).expect("empty handle");
        let err = SessionEngine::start(SearchConfig::default(), &empty, &[0.0, 0.0])
            .err()
            .expect("empty data");
        assert!(err.to_string().contains("empty data set"));
        // Ragged rows never reach an epoch engine: the handle refuses
        // them at append time.
        assert!(matches!(
            DatasetHandle::new(&[vec![0.0, 0.0], vec![1.0, 1.0, 2.0]]),
            Err(EpochError::DimMismatch { .. })
        ));
        // The deprecated slice shim still validates like the legacy loop.
        #[allow(deprecated)]
        let err = SessionEngine::start_slice(
            SearchConfig::default(),
            &[vec![0.0, 0.0], vec![1.0, 1.0, 2.0]],
            &[0.0, 0.0],
        )
        .err()
        .expect("ragged point");
        assert!(err.to_string().contains("ragged point 1"));
    }

    #[test]
    fn pending_view_and_cursor_expose_the_suspension() {
        let (pts, q) = planted();
        let (engine, step) = SessionEngine::start(config(), &handle(&pts), &q).expect("start");
        let view = step.view().expect("first view");
        assert_eq!(view.context().major, 0);
        assert_eq!(view.context().minor, 0);
        assert_eq!(view.context().total_n, pts.len());
        assert!(engine.is_suspended());
        assert_eq!(engine.cursor(), (0, 0));
        assert_eq!(engine.alive_len(), pts.len());
        assert_eq!(engine.majors_run(), 0);
        let from_engine = engine.pending_view().expect("pending");
        assert_eq!(from_engine.context().minor, view.context().minor);
    }

    #[test]
    fn snapshot_resume_midway_is_bit_identical() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        // Uninterrupted reference run.
        let (engine, step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let reference = drive_to_done(engine, step, &mut HeuristicUser::default());

        // Same session, suspended after 3 responses, serialized, resumed
        // in a fresh engine, finished.
        let mut user = HeuristicUser::default();
        let (mut engine, mut step) = SessionEngine::start(config(), &dh, &q).expect("start");
        for _ in 0..3 {
            let req = step.view().expect("view available").clone();
            let r = user.respond(req.profile(), req.context());
            step = engine.submit(r).expect("submit");
        }
        let snap = engine.snapshot().expect("suspended engine snapshots");
        drop(engine);
        let (resumed, step2) = SessionEngine::resume(config(), &dh, &snap).expect("resume");
        // The recomputed pending view matches where we left off.
        assert_eq!(
            step2.view().expect("resumed at a view").context().minor,
            step.view().expect("original pending view").context().minor
        );
        let outcome = drive_to_done(resumed, step2, &mut user);
        assert_eq!(outcome.neighbors, reference.neighbors);
        assert_eq!(outcome.majors_run, reference.majors_run);
        for (a, b) in outcome.probabilities.iter().zip(&reference.probabilities) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_resume_does_not_duplicate_degradation_events() {
        // Planted data plus one constant coordinate: with axis-parallel
        // candidates the zero-variance axis is dropped — and recorded —
        // on every single view, unlike the healthy planted fixture.
        let (mut pts, mut q) = planted();
        for p in pts.iter_mut() {
            p.push(7.5);
        }
        q.push(7.5);
        let cfg = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            ..config()
        };
        let dh = handle(&pts);
        let (engine, step) = SessionEngine::start(cfg.clone(), &dh, &q).expect("start");
        let reference = drive_to_done(engine, step, &mut HeuristicUser::default());
        assert!(
            !reference.transcript.degradations.is_empty(),
            "fixture must exercise the degradation ladder"
        );

        // The same session, snapshotted and resumed at *every* suspension
        // point — each cycle recomputes the pending view, which re-emits
        // that view's degradation events; they must not also come back in
        // via the snapshot.
        let mut user = HeuristicUser::default();
        let (mut engine, mut step) = SessionEngine::start(cfg.clone(), &dh, &q).expect("start");
        while let Step::NeedResponse(req) = step {
            let snap = engine.snapshot().expect("snapshot");
            let (resumed, _) = SessionEngine::resume(cfg.clone(), &dh, &snap).expect("resume");
            engine = resumed;
            let r = user.respond(req.profile(), req.context());
            step = engine.submit(r).expect("submit");
        }
        let outcome = step.into_outcome().expect("done");
        let (a, b) = (
            &reference.transcript.degradations.events,
            &outcome.transcript.degradations.events,
        );
        assert_eq!(
            a.len(),
            b.len(),
            "degradation events duplicated across snapshot/resume"
        );
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!((x.major, x.minor), (y.major, y.minor));
            assert_eq!(x.detail, y.detail);
        }
        for (x, y) in outcome.probabilities.iter().zip(&reference.probabilities) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn resume_does_not_recharge_the_restored_views_compute() {
        let (pts, q) = planted();
        let cfg = SearchConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..config()
        };
        let dh = handle(&pts);
        let (mut engine, step) = SessionEngine::start(cfg.clone(), &dh, &q).expect("start");
        let mut user = HeuristicUser::default();
        let req = step.view().expect("view").clone();
        let r = user.respond(req.profile(), req.context());
        engine.submit(r).expect("submit");
        let spent = engine.spent_compute();
        assert!(spent > Duration::ZERO, "deadline sessions meter compute");
        // Bounce the session through snapshot/resume repeatedly: the spent
        // figure must stay exactly what the snapshot recorded, or eviction
        // pressure alone could drain a served session's budget.
        let mut snap = engine.snapshot().expect("snapshot");
        for _ in 0..3 {
            let (resumed, _step) = SessionEngine::resume(cfg.clone(), &dh, &snap).expect("resume");
            assert_eq!(
                resumed.spent_compute(),
                spent,
                "restore recomputation was charged against the deadline"
            );
            snap = resumed.snapshot().expect("re-snapshot");
        }
    }

    #[test]
    fn resume_rejects_mismatched_config_and_data() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let (engine, _step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let snap = engine.snapshot().expect("snapshot");
        // Different loop-relevant knob → fingerprint mismatch.
        let err = SessionEngine::resume(config().with_support(31), &dh, &snap)
            .err()
            .expect("different support");
        assert!(err.to_string().contains("configuration differs"), "{err}");
        // A handle with different content is a different epoch chain: the
        // typed epoch refusal fires before any content or shape check.
        let mut other = pts.clone();
        other[0][0] += 1.0;
        let err = SessionEngine::resume(config(), &handle(&other), &snap)
            .err()
            .expect("different data");
        assert!(matches!(err, HinnError::EpochMismatch { .. }), "{err}");
        // An epoch-pinned snapshot refuses to resume over a bare slice.
        #[allow(deprecated)]
        let err = SessionEngine::resume_slice(config(), &pts, &snap)
            .err()
            .expect("slice store");
        assert!(err.to_string().contains("pinned dataset epoch"), "{err}");
        // Slice sessions still get the legacy shape check.
        #[allow(deprecated)]
        let (engine, _step) = SessionEngine::start_slice(config(), &pts, &q).expect("start");
        let snap = engine.snapshot().expect("snapshot");
        #[allow(deprecated)]
        let err = SessionEngine::resume_slice(config(), &pts[..100], &snap)
            .err()
            .expect("different shape");
        assert!(err.to_string().contains("shape"), "{err}");
    }

    #[test]
    fn snapshot_requires_a_suspended_engine() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let (mut engine, mut step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let mut user = HeuristicUser::default();
        while let Step::NeedResponse(req) = step {
            let r = user.respond(req.profile(), req.context());
            step = engine.submit(r).expect("submit");
        }
        let err = engine.snapshot().expect_err("finished engine");
        assert!(err.to_string().contains("not suspended"), "{err}");
        // record_profiles sessions refuse to snapshot.
        let cfg = SearchConfig {
            record_profiles: true,
            ..config()
        };
        let (engine, _step) = SessionEngine::start(cfg, &dh, &q).expect("start");
        let err = engine.snapshot().expect_err("record_profiles");
        assert!(err.to_string().contains("record_profiles"), "{err}");
    }

    #[test]
    fn shared_engine_is_static_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let (pts, q) = planted();
        let cache = Arc::new(SessionCache::new(hinn_cache::CachePolicy::default()));
        let (engine, step) =
            SessionEngine::start_at_shared(config(), handle(&pts).snapshot(), &q, cache)
                .expect("start");
        assert_send(&engine);
        // Move the suspended engine to another thread and finish there.
        let worker = std::thread::spawn(move || {
            let mut user = HeuristicUser::default();
            drive_to_done(engine, step, &mut user).majors_run
        });
        assert!(worker.join().expect("thread") >= 1);
    }

    #[test]
    fn epoch_pin_is_visible_and_slice_sessions_have_none() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let (engine, _step) = SessionEngine::start(config(), &dh, &q).expect("start");
        assert_eq!(
            engine.dataset_epoch(),
            Some((dh.epoch(), dh.snapshot().fingerprint()))
        );
        #[allow(deprecated)]
        let (engine, _step) = SessionEngine::start_slice(config(), &pts, &q).expect("start");
        assert_eq!(engine.dataset_epoch(), None);
    }

    #[test]
    fn resume_after_ingest_is_a_typed_epoch_mismatch() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let pinned_snap = dh.snapshot();
        let (engine, _step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let snap = engine.snapshot().expect("snapshot");
        drop(engine);
        // The handle moves on while the session is suspended.
        dh.append(&[vec![1.0; 8], vec![2.0; 8]]).expect("append");
        let err = SessionEngine::resume(config(), &dh, &snap)
            .err()
            .expect("moved epoch");
        match err {
            HinnError::EpochMismatch { pinned, offered } => {
                assert_eq!(pinned, pinned_snap.epoch());
                assert_eq!(offered, dh.epoch());
            }
            other => panic!("expected EpochMismatch, got {other}"),
        }
        // The retained pinned snapshot still resumes — the refusal is
        // about the handle having moved, not about resumability.
        let (resumed, _step) =
            SessionEngine::resume_at(config(), pinned_snap, &snap).expect("resume at pin");
        assert!(resumed.is_suspended());
    }

    #[test]
    fn explicit_rebase_carries_a_session_onto_a_newer_epoch() {
        let (pts, q) = planted();
        let dh = handle(&pts);
        let from = dh.snapshot();
        let (mut engine, mut step) = SessionEngine::start(config(), &dh, &q).expect("start");
        let mut user = HeuristicUser::default();
        for _ in 0..3 {
            let req = step.view().expect("view").clone();
            let r = user.respond(req.profile(), req.context());
            step = engine.submit(r).expect("submit");
        }
        let snap = engine.snapshot().expect("snapshot");
        drop(engine);
        // Stream in new rows and delete a handful of background rows.
        dh.append(&[vec![60.0; 8], vec![40.0; 8]]).expect("append");
        dh.delete(&[100, 101, 102]).expect("delete");
        let onto = dh.snapshot();

        // Implicit resume refuses; the explicit rebase carries the
        // session over and finishes on the new epoch.
        assert!(matches!(
            SessionEngine::resume(config(), &dh, &snap),
            Err(HinnError::EpochMismatch { .. })
        ));
        let (rebased, step) =
            SessionEngine::resume_rebased(config(), from.clone(), onto.clone(), &snap)
                .expect("rebase");
        assert_eq!(
            rebased.dataset_epoch(),
            Some((onto.epoch(), onto.fingerprint()))
        );
        let outcome = drive_to_done(rebased, step, &mut user);
        assert!(!outcome.neighbors.is_empty());
        assert!(outcome.neighbors.iter().all(|&i| i < onto.len()));

        // Rebasing from the wrong pinned epoch is itself the typed error.
        assert!(matches!(
            SessionEngine::resume_rebased(config(), onto, from, &snap),
            Err(HinnError::EpochMismatch { .. })
        ));
    }
}
