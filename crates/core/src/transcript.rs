//! Session transcripts: everything that happened across the interactive
//! loop, for experiments, figures, and auditability.

use hinn_kde::VisualProfile;
use hinn_linalg::Subspace;
use hinn_user::UserResponse;

/// Wall-clock split of one minor iteration's pipeline phases, recorded
/// only while a `hinn-obs` recorder is installed (`None` otherwise —
/// timings are machine-dependent, so the invariance tests compare the
/// *numeric* transcript fields and results, never these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinorPhases {
    /// Projection search plus the 2-D coordinate fill (Figs. 3–4).
    pub projection_ns: u64,
    /// Visual-profile construction: the grid KDE (Fig. 5).
    pub profile_ns: u64,
    /// User response, density-connection selection, count update (Fig. 7).
    pub select_ns: u64,
}

impl MinorPhases {
    /// Total wall time of the minor iteration's measured phases.
    pub fn total_ns(&self) -> u64 {
        self.projection_ns + self.profile_ns + self.select_ns
    }
}

/// Record of one minor iteration (one view shown to the user).
#[derive(Clone, Debug)]
pub struct MinorRecord {
    /// Major iteration index (0-based).
    pub major: usize,
    /// Minor iteration index (0-based).
    pub minor: usize,
    /// The 2-D projection that was shown (ambient coordinates).
    pub projection: Subspace,
    /// Variance ratios of the projection's directions (grading diagnostic —
    /// §4.1's "graded quality of the projections").
    pub variance_ratios: Vec<f64>,
    /// The user's response.
    pub response: UserResponse,
    /// How many points the response selected.
    pub n_picked: usize,
    /// Query density / peak density in the view (how query-centered the
    /// view looked).
    pub query_peak_ratio: f64,
    /// The full visual profile (present when profile recording is on).
    pub profile: Option<VisualProfile>,
    /// Per-phase wall times (present while a `hinn-obs` recorder is
    /// installed).
    pub phases: Option<MinorPhases>,
}

impl MinorRecord {
    /// Was the view dismissed (explicitly or by picking nothing)?
    pub fn dismissed(&self) -> bool {
        matches!(self.response, UserResponse::Discard) || self.n_picked == 0
    }
}

/// Record of one major iteration.
#[derive(Clone, Debug, Default)]
pub struct MajorRecord {
    /// The views of this major iteration.
    pub minors: Vec<MinorRecord>,
    /// Data-set size at the start of the iteration.
    pub n_points_before: usize,
    /// Data-set size after the `v(i) = 0` removal.
    pub n_points_after: usize,
    /// Top-`s` overlap with the previous iteration (None for the first).
    pub overlap_with_previous: Option<f64>,
}

/// Complete session transcript.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    /// One record per major iteration, in order.
    pub majors: Vec<MajorRecord>,
    /// Every degradation-ladder rung the session took, in firing order
    /// (empty on a fully healthy run). See [`crate::degrade`].
    pub degradations: crate::degrade::DegradationLog,
}

impl Transcript {
    /// Total number of views shown across the session.
    pub fn total_views(&self) -> usize {
        self.majors.iter().map(|m| m.minors.len()).sum()
    }

    /// Total number of dismissed views.
    pub fn total_dismissed(&self) -> usize {
        self.majors
            .iter()
            .flat_map(|m| &m.minors)
            .filter(|r| r.dismissed())
            .count()
    }

    /// Iterate over all minor records in display order.
    pub fn iter_minors(&self) -> impl Iterator<Item = &MinorRecord> {
        self.majors.iter().flat_map(|m| m.minors.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(major: usize, minor: usize, response: UserResponse, n: usize) -> MinorRecord {
        MinorRecord {
            major,
            minor,
            projection: Subspace::full(2),
            variance_ratios: vec![0.1, 0.2],
            response,
            n_picked: n,
            query_peak_ratio: 0.5,
            profile: None,
            phases: None,
        }
    }

    #[test]
    fn phases_total() {
        let p = MinorPhases {
            projection_ns: 1,
            profile_ns: 2,
            select_ns: 3,
        };
        assert_eq!(p.total_ns(), 6);
        assert_eq!(MinorPhases::default().total_ns(), 0);
    }

    #[test]
    fn dismissal_logic() {
        assert!(record(0, 0, UserResponse::Discard, 0).dismissed());
        assert!(record(0, 0, UserResponse::Threshold(0.5), 0).dismissed());
        assert!(!record(0, 0, UserResponse::Threshold(0.5), 3).dismissed());
    }

    #[test]
    fn transcript_aggregates() {
        let t = Transcript {
            majors: vec![
                MajorRecord {
                    minors: vec![
                        record(0, 0, UserResponse::Threshold(0.2), 5),
                        record(0, 1, UserResponse::Discard, 0),
                    ],
                    n_points_before: 100,
                    n_points_after: 40,
                    overlap_with_previous: None,
                },
                MajorRecord {
                    minors: vec![record(1, 0, UserResponse::Threshold(0.3), 7)],
                    n_points_before: 40,
                    n_points_after: 30,
                    overlap_with_previous: Some(0.9),
                },
            ],
            ..Transcript::default()
        };
        assert_eq!(t.total_views(), 3);
        assert_eq!(t.total_dismissed(), 1);
        assert_eq!(t.iter_minors().count(), 3);
    }
}
