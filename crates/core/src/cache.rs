//! Session-level memoization: the batch-serving fast path.
//!
//! A [`SessionCache`] holds the engine's four LRU caches, each memoizing
//! one *pure* stage of the minor-iteration pipeline by a content
//! fingerprint of that stage's full input:
//!
//! | cache        | stage                                   | key over |
//! |--------------|-----------------------------------------|----------|
//! | `projection` | the Fig. 3 halving pipeline (plus its degradation events) | alive set, query, search subspace, support, mode |
//! | `profile`    | projected 2-D coordinates + grid KDE (Fig. 5) | alive set, query, 2-D projection, grid/bandwidth settings |
//! | `coords`     | whole-data coordinates inside a search subspace | alive set, subspace |
//! | `gamma`      | data variance `γ` along one candidate direction | alive set, subspace, direction |
//!
//! Because every cached value is the exact (bit-for-bit) output the
//! engine would otherwise recompute — never an algebraic shortcut — a
//! warm run is bit-identical to a cold run, and both are bit-identical to
//! a run with caching disabled ([`hinn_cache::CachePolicy::disabled`]).
//! `tests/cache_equivalence.rs` proves this across thread budgets.
//!
//! The cache is per-engine by default and *shared* across the sessions of
//! a [`crate::BatchRunner`], which is where it earns its keep: repeated
//! (or near-repeated) queries against one dataset skip the projection
//! search and KDE rendering wholesale, and even a cold session reuses the
//! subspace coordinates across the pipeline's support restarts.

use crate::config::{BandwidthMode, ProjectionMode};
use crate::degrade::DegradationEvent;
use crate::projection::ProjectionResult;
use hinn_cache::{CachePolicy, Fingerprint, Fnv128, LruCache};
use hinn_kde::{ProfileNotes, VisualProfile};
use hinn_linalg::Subspace;

/// The engine's session-level caches (see module docs).
pub struct SessionCache {
    policy: CachePolicy,
    /// Per-view projection results with their degradation events.
    pub(crate) projection: LruCache<(ProjectionResult, Vec<DegradationEvent>)>,
    /// Rendered visual profiles with their build notes.
    pub(crate) profile: LruCache<(VisualProfile, ProfileNotes)>,
    /// Data variances along candidate directions.
    pub(crate) gamma: LruCache<f64>,
    /// Whole-data coordinates inside a search subspace.
    pub(crate) coords: LruCache<Vec<Vec<f64>>>,
}

impl SessionCache {
    /// Fresh caches sized by `policy`.
    pub fn new(policy: CachePolicy) -> Self {
        Self {
            policy,
            projection: LruCache::new(policy.projection_capacity),
            profile: LruCache::new(policy.profile_capacity),
            gamma: LruCache::new(policy.gamma_capacity),
            coords: LruCache::new(policy.coords_capacity),
        }
    }

    /// The policy the caches were sized by.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Is every cache off (the compute-always reference configuration)?
    pub fn is_disabled(&self) -> bool {
        self.policy.is_disabled()
    }

    /// Total resident entries across all four caches.
    pub fn len(&self) -> usize {
        self.projection.len() + self.profile.len() + self.gamma.len() + self.coords.len()
    }

    /// Are all caches empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident entry (the policy is kept).
    pub fn clear(&self) {
        self.projection.clear();
        self.profile.clear();
        self.gamma.clear();
        self.coords.clear();
    }

    /// Fingerprint of the candidate set alive this major iteration:
    /// the dataset's content fingerprint plus the surviving original ids.
    pub fn alive_key(dataset: Fingerprint, alive: &[usize]) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_str("alive");
        h.write_fingerprint(dataset);
        h.write_usize(alive.len());
        for &id in alive {
            h.write_usize(id);
        }
        h.finish()
    }

    /// Key of one Fig. 3 projection search.
    pub fn projection_key(
        alive: Fingerprint,
        query: &[f64],
        search_subspace: &Subspace,
        support: usize,
        mode: ProjectionMode,
    ) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_str("projection");
        h.write_fingerprint(alive);
        h.write_usize(query.len());
        h.write_f64s(query);
        write_subspace(&mut h, search_subspace);
        h.write_usize(support);
        h.write_u8(mode_tag(mode));
        h.finish()
    }

    /// Key of whole-data coordinates inside one search subspace.
    pub fn coords_key(alive: Fingerprint, subspace: &Subspace) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_str("coords");
        h.write_fingerprint(alive);
        write_subspace(&mut h, subspace);
        h.finish()
    }

    /// Key of the data variance along one candidate direction (expressed
    /// in `subspace` coordinates).
    pub fn gamma_key(alive: Fingerprint, subspace: &Subspace, direction: &[f64]) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_str("gamma");
        h.write_fingerprint(alive);
        write_subspace(&mut h, subspace);
        h.write_usize(direction.len());
        h.write_f64s(direction);
        h.finish()
    }

    /// Key of one rendered visual profile.
    #[allow(clippy::too_many_arguments)] // mirrors the profile's full input
    pub fn profile_key(
        alive: Fingerprint,
        query: &[f64],
        projection: &Subspace,
        grid_n: usize,
        bandwidth_scale: f64,
        bandwidth_mode: BandwidthMode,
    ) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_str("profile");
        h.write_fingerprint(alive);
        h.write_usize(query.len());
        h.write_f64s(query);
        write_subspace(&mut h, projection);
        h.write_usize(grid_n);
        h.write_f64(bandwidth_scale);
        match bandwidth_mode {
            BandwidthMode::Fixed => h.write_u8(0),
            BandwidthMode::Adaptive { alpha } => {
                h.write_u8(1);
                h.write_f64(alpha);
            }
        }
        h.finish()
    }
}

impl std::fmt::Debug for SessionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCache")
            .field("policy", &self.policy)
            .field("projection_len", &self.projection.len())
            .field("profile_len", &self.profile.len())
            .field("gamma_len", &self.gamma.len())
            .field("coords_len", &self.coords.len())
            .finish()
    }
}

/// Mode discriminant for key composition.
fn mode_tag(mode: ProjectionMode) -> u8 {
    match mode {
        ProjectionMode::Arbitrary => 0,
        ProjectionMode::AxisParallel => 1,
    }
}

/// Absorb a subspace's exact content: ambient dimension plus every basis
/// vector's bit patterns.
fn write_subspace(h: &mut Fnv128, s: &Subspace) {
    h.write_usize(s.ambient_dim());
    h.write_usize(s.dim());
    for b in s.basis() {
        h.write_f64s(b);
    }
}

/// Everything the projection pipeline needs to consult the session's
/// inner caches (coordinates and gammas) while computing a view.
pub(crate) struct ProjectionCacheCtx<'a> {
    /// Fingerprint of the candidate set the pipeline runs over.
    pub alive_fp: Fingerprint,
    /// The session's caches.
    pub cache: &'a SessionCache,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(d: usize) -> Subspace {
        let mut e0 = vec![0.0; d];
        e0[0] = 1.0;
        let mut e1 = vec![0.0; d];
        e1[1] = 1.0;
        Subspace::from_vectors(d, &[e0, e1])
    }

    #[test]
    fn keys_depend_on_every_component() {
        let alive = Fingerprint(7);
        let q = vec![1.0, 2.0, 3.0];
        let s = plane(3);
        let base = SessionCache::projection_key(alive, &q, &s, 8, ProjectionMode::Arbitrary);
        assert_ne!(
            base,
            SessionCache::projection_key(Fingerprint(8), &q, &s, 8, ProjectionMode::Arbitrary)
        );
        assert_ne!(
            base,
            SessionCache::projection_key(alive, &[1.0, 2.0, 4.0], &s, 8, ProjectionMode::Arbitrary)
        );
        assert_ne!(
            base,
            SessionCache::projection_key(alive, &q, &s, 9, ProjectionMode::Arbitrary)
        );
        assert_ne!(
            base,
            SessionCache::projection_key(alive, &q, &s, 8, ProjectionMode::AxisParallel)
        );
        assert_ne!(
            base,
            SessionCache::projection_key(
                alive,
                &q,
                &Subspace::full(3),
                8,
                ProjectionMode::Arbitrary
            )
        );
    }

    #[test]
    fn alive_key_distinguishes_id_sets() {
        let d = Fingerprint(1);
        assert_ne!(
            SessionCache::alive_key(d, &[0, 1, 2]),
            SessionCache::alive_key(d, &[0, 1, 3])
        );
        assert_ne!(
            SessionCache::alive_key(d, &[0, 1]),
            SessionCache::alive_key(d, &[0, 1, 2])
        );
        assert_eq!(
            SessionCache::alive_key(d, &[0, 1, 2]),
            SessionCache::alive_key(d, &[0, 1, 2])
        );
    }

    #[test]
    fn profile_key_distinguishes_bandwidth_modes() {
        let alive = Fingerprint(3);
        let q = vec![0.5, 0.5];
        let s = plane(4);
        let fixed = SessionCache::profile_key(alive, &q, &s, 40, 0.3, BandwidthMode::Fixed);
        let adaptive = SessionCache::profile_key(
            alive,
            &q,
            &s,
            40,
            0.3,
            BandwidthMode::Adaptive { alpha: 0.5 },
        );
        let adaptive2 = SessionCache::profile_key(
            alive,
            &q,
            &s,
            40,
            0.3,
            BandwidthMode::Adaptive { alpha: 0.25 },
        );
        assert_ne!(fixed, adaptive);
        assert_ne!(adaptive, adaptive2);
        assert_ne!(
            fixed,
            SessionCache::profile_key(alive, &q, &s, 41, 0.3, BandwidthMode::Fixed)
        );
        assert_ne!(
            fixed,
            SessionCache::profile_key(alive, &q, &s, 40, 0.31, BandwidthMode::Fixed)
        );
    }

    #[test]
    fn disabled_policy_disables_every_cache() {
        let c = SessionCache::new(CachePolicy::disabled());
        assert!(c.is_disabled());
        assert!(c.is_empty());
        let v = c.gamma.get_or_insert_with(Fingerprint(1), || 2.5);
        assert_eq!(*v, 2.5);
        assert_eq!(c.len(), 0, "disabled caches store nothing");
    }

    #[test]
    fn clear_empties_but_keeps_policy() {
        let c = SessionCache::new(CachePolicy::default());
        let _ = c.gamma.get_or_insert_with(Fingerprint(1), || 1.0);
        let _ = c
            .coords
            .get_or_insert_with(Fingerprint(2), || vec![vec![1.0]]);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.policy(), CachePolicy::default());
    }
}
