//! Meaningfulness quantification (Fig. 8 / §3 of the paper).
//!
//! Under the null hypothesis that the user's picks across the `d/2`
//! orthogonal views of a major iteration are *uncorrelated* (what noisy,
//! pattern-free data would produce), the total preference
//! `Y_j = Σᵢ wᵢ·Xᵢⱼ` of point `j` has
//!
//! ```text
//! E[Y_j]   = Σᵢ wᵢ · nᵢ/N
//! var(Y_j) = Σᵢ wᵢ² · (nᵢ/N)(1 − nᵢ/N)        (Eqs. 4–5)
//! ```
//!
//! where `nᵢ` is how many points the user picked in view `i` and `N` the
//! current data size. The *meaningfulness coefficient*
//! `M(j) = (v(j) − E[Y_j]) / √var(Y_j)` (Eq. 6) is approximately standard
//! normal for large `d`, giving the *meaningfulness probability*
//! `P(j) = max(2Φ(M(j)) − 1, 0)` (Eq. 7) — the confidence that `j` is
//! coherently closer to the query than chance across independent views.

use crate::counts::PreferenceCounts;
use hinn_metrics::normal::meaningfulness_probability;

/// Null-model moments of one major iteration's views.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NullMoments {
    /// `E[Y_j]` — identical for every point.
    pub expected: f64,
    /// `var(Y_j)` — identical for every point.
    pub variance: f64,
}

/// Compute the null moments from the recorded views (Eqs. 4–5).
///
/// # Panics
/// Panics if `n_current == 0`.
pub fn null_moments(counts: &PreferenceCounts, n_current: usize) -> NullMoments {
    assert!(n_current > 0, "null_moments: empty data set");
    let n = n_current as f64;
    let mut expected = 0.0;
    let mut variance = 0.0;
    for &(n_i, w_i) in counts.views() {
        let p = n_i as f64 / n;
        expected += w_i * p;
        variance += w_i * w_i * p * (1.0 - p);
    }
    NullMoments { expected, variance }
}

/// The meaningfulness coefficient `M(j)` (Eq. 6) for a point with weighted
/// count `v`.
///
/// When `var(Y_j) = 0` the null distribution is a point mass at `E[Y_j]`
/// (every view picked nothing or everything): a count above the
/// expectation is then *infinitely* surprising under the null, a count
/// below it infinitely unsurprising, and a count at the expectation
/// carries no signal. The coefficient is `+∞`, `−∞`, or `0` accordingly,
/// which [`meaningfulness_probability`] maps to `P(j)` exactly 1 or 0 —
/// no NaN from `0/0` can leak into the cross-iteration average. (An
/// earlier guard returned 0 for any variance below `1e-15`, silently
/// zeroing sessions with tiny but genuine view weights.)
pub fn meaningfulness_coefficient(v: f64, moments: NullMoments) -> f64 {
    if moments.variance <= 0.0 {
        let deviation = v - moments.expected;
        if deviation > 0.0 {
            f64::INFINITY
        } else if deviation < 0.0 {
            f64::NEG_INFINITY
        } else {
            0.0
        }
    } else {
        (v - moments.expected) / moments.variance.sqrt()
    }
}

/// The meaningfulness probabilities of one major iteration for the listed
/// `alive` original ids (Fig. 8's loop body). Output is aligned with
/// `alive`.
pub fn iteration_probabilities(counts: &PreferenceCounts, alive: &[usize]) -> Vec<f64> {
    let _span = hinn_obs::span!("meaning.update");
    hinn_obs::counter("meaning.points", alive.len() as u64);
    let moments = null_moments(counts, alive.len());
    alive
        .iter()
        .map(|&id| {
            meaningfulness_probability(meaningfulness_coefficient(counts.count(id), moments))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_hand_computation() {
        let mut c = PreferenceCounts::new(10);
        c.record_view(&[0, 1], 1.0); // n=2 of N=10 → p=0.2
        c.record_view(&[0, 1, 2, 3, 4], 1.0); // p=0.5
        let m = null_moments(&c, 10);
        assert!((m.expected - 0.7).abs() < 1e-12);
        assert!((m.variance - (0.2 * 0.8 + 0.5 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn weights_enter_linearly_and_quadratically() {
        let mut c = PreferenceCounts::new(4);
        c.record_view(&[0], 2.0); // p=0.25, w=2
        let m = null_moments(&c, 4);
        assert!((m.expected - 0.5).abs() < 1e-12);
        assert!((m.variance - 4.0 * 0.25 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn coherent_point_gets_high_probability() {
        let mut c = PreferenceCounts::new(100);
        // Point 0 picked in all 10 views of ~10 points each.
        for _ in 0..10 {
            let ids: Vec<usize> = (0..10).collect();
            c.record_view(&ids, 1.0);
        }
        let probs = iteration_probabilities(&c, &(0..100).collect::<Vec<_>>());
        assert!(
            probs[0] > 0.99,
            "coherent point must be near 1: {}",
            probs[0]
        );
        assert_eq!(probs[50], 0.0, "never-picked point must be 0");
    }

    #[test]
    fn point_at_expectation_gets_zero() {
        let mut c = PreferenceCounts::new(10);
        // Every view picks half the data; a point picked in exactly half
        // the views sits at the expectation.
        c.record_view(&[0, 1, 2, 3, 4], 1.0);
        c.record_view(&[5, 6, 7, 8, 9], 1.0);
        let m = null_moments(&c, 10);
        let coeff = meaningfulness_coefficient(1.0, m);
        assert!(coeff.abs() < 1e-12);
        let probs = iteration_probabilities(&c, &(0..10).collect::<Vec<_>>());
        for p in probs {
            assert!(p < 1e-6, "all points at expectation: {p}");
        }
    }

    #[test]
    fn degenerate_variance_at_expectation_yields_zero() {
        let mut c = PreferenceCounts::new(5);
        c.record_discard(1.0); // n=0 → contributes nothing
        let m = null_moments(&c, 5);
        assert_eq!(m.variance, 0.0);
        assert_eq!(m.expected, 0.0);
        // Count at the (degenerate) expectation: no signal, P = 0 exactly.
        assert_eq!(meaningfulness_coefficient(0.0, m), 0.0);
        let probs = iteration_probabilities(&c, &(0..5).collect::<Vec<_>>());
        assert!(probs.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn zero_variance_above_expectation_yields_exactly_one() {
        // Regression (Eq. 6 edge case): a count above E[Y] under a
        // zero-variance null must give P = 1 exactly — not NaN from 0/0,
        // and not 0 from a blanket degenerate-variance guard.
        let m = NullMoments {
            expected: 1.0,
            variance: 0.0,
        };
        let coeff = meaningfulness_coefficient(3.0, m);
        assert_eq!(coeff, f64::INFINITY);
        assert_eq!(meaningfulness_probability(coeff), 1.0);
    }

    #[test]
    fn zero_variance_below_expectation_yields_exactly_zero() {
        // The mirror edge case: below the expectation the coefficient is
        // −∞ and the probability clamps to 0 exactly.
        let m = NullMoments {
            expected: 2.0,
            variance: 0.0,
        };
        let coeff = meaningfulness_coefficient(0.5, m);
        assert_eq!(coeff, f64::NEG_INFINITY);
        assert_eq!(meaningfulness_probability(coeff), 0.0);
        // And no NaN leaks through the full per-iteration path: every view
        // picks everything → p = 1, variance 0, every count at E[Y].
        let mut c = PreferenceCounts::new(3);
        c.record_view(&[0, 1, 2], 1.0);
        c.record_view(&[0, 1, 2], 1.0);
        let probs = iteration_probabilities(&c, &[0, 1, 2]);
        assert!(probs.iter().all(|p| !p.is_nan()));
        assert!(probs.iter().all(|&p| p == 0.0), "no discrimination → 0");
    }

    #[test]
    fn tiny_positive_variance_is_not_flattened_to_zero() {
        // Regression: the old `<= 1e-15` guard zeroed sessions whose view
        // weights were tiny but genuine (w ≈ 1e-8 → var ≈ 1e-17).
        let w = 1e-8;
        let mut c = PreferenceCounts::new(10);
        c.record_view(&[0, 1], w);
        let m = null_moments(&c, 10);
        assert!(m.variance > 0.0 && m.variance < 1e-15);
        let coeff = meaningfulness_coefficient(w, m);
        assert!(
            coeff.is_finite() && coeff > 0.0,
            "picked point must score above the null: {coeff}"
        );
    }

    #[test]
    fn below_expectation_clamps_to_zero() {
        let mut c = PreferenceCounts::new(4);
        c.record_view(&[0, 1, 2], 1.0);
        c.record_view(&[0, 1, 2], 1.0);
        let probs = iteration_probabilities(&c, &[0, 1, 2, 3]);
        assert_eq!(probs[3], 0.0);
        assert!(probs[0] > 0.0);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let mut c = PreferenceCounts::new(20);
        c.record_view(&(0..7).collect::<Vec<_>>(), 1.0);
        c.record_view(&(3..12).collect::<Vec<_>>(), 0.5);
        c.record_discard(1.0);
        for p in iteration_probabilities(&c, &(0..20).collect::<Vec<_>>()) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
