//! Property-based tests for the search core's statistics and subspace
//! machinery.

use hinn_core::counts::PreferenceCounts;
use hinn_core::meaning::{iteration_probabilities, meaningfulness_coefficient, null_moments};
use hinn_core::projection::query_cluster_subspace_mode;
use hinn_core::ProjectionMode;
use hinn_linalg::Subspace;
use proptest::prelude::*;

/// Strategy: a set of views over `n` points — each view picks a random
/// subset.
fn views(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0..n, 0..n), 1..6).prop_map(|vs| {
        vs.into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probabilities_always_in_unit_interval(picks in views(25)) {
        let mut counts = PreferenceCounts::new(25);
        for v in &picks {
            if v.is_empty() {
                counts.record_discard(1.0);
            } else {
                counts.record_view(v, 1.0);
            }
        }
        let alive: Vec<usize> = (0..25).collect();
        for p in iteration_probabilities(&counts, &alive) {
            prop_assert!((0.0..=1.0).contains(&p), "P out of range: {p}");
        }
    }

    #[test]
    fn never_picked_points_get_zero(picks in views(25)) {
        let mut counts = PreferenceCounts::new(25);
        let mut ever = std::collections::HashSet::new();
        for v in &picks {
            if v.is_empty() {
                counts.record_discard(1.0);
            } else {
                counts.record_view(v, 1.0);
                ever.extend(v.iter().copied());
            }
        }
        let alive: Vec<usize> = (0..25).collect();
        let probs = iteration_probabilities(&counts, &alive);
        for (i, p) in probs.iter().enumerate() {
            if !ever.contains(&i) {
                prop_assert_eq!(*p, 0.0, "unpicked point {} has P {}", i, p);
            }
        }
    }

    #[test]
    fn probability_is_monotone_in_count(picks in views(25)) {
        let mut counts = PreferenceCounts::new(25);
        for v in &picks {
            if v.is_empty() {
                counts.record_discard(1.0);
            } else {
                counts.record_view(v, 1.0);
            }
        }
        let moments = null_moments(&counts, 25);
        // More picks → no smaller coefficient.
        let mut prev = f64::NEG_INFINITY;
        for v in 0..=picks.len() {
            let m = meaningfulness_coefficient(v as f64, moments);
            prop_assert!(m >= prev - 1e-12);
            prev = m;
        }
    }

    #[test]
    fn moments_match_direct_formula(picks in views(40)) {
        let n = 40.0;
        let mut counts = PreferenceCounts::new(40);
        let mut expected = 0.0;
        let mut variance = 0.0;
        for v in &picks {
            if v.is_empty() {
                counts.record_discard(1.0);
            } else {
                counts.record_view(v, 1.0);
            }
            let p = v.len() as f64 / n;
            expected += p;
            variance += p * (1.0 - p);
        }
        let m = null_moments(&counts, 40);
        prop_assert!((m.expected - expected).abs() < 1e-12);
        prop_assert!((m.variance - variance).abs() < 1e-12);
    }

    #[test]
    fn query_cluster_subspace_dim_and_orthonormality(
        cluster in proptest::collection::vec(proptest::collection::vec(-10.0..10.0f64, 5), 6..30),
        data in proptest::collection::vec(proptest::collection::vec(-10.0..10.0f64, 5), 6..30),
        l in 1usize..5,
    ) {
        let full = Subspace::full(5);
        for mode in [ProjectionMode::AxisParallel, ProjectionMode::Arbitrary] {
            let (sub, ratios) = query_cluster_subspace_mode(&full, &cluster, &data, l, mode);
            prop_assert!(sub.dim() <= l);
            prop_assert!(sub.is_orthonormal(1e-8));
            prop_assert_eq!(ratios.len(), sub.dim());
            for r in &ratios {
                prop_assert!(*r >= -1e-9, "negative variance ratio {r}");
            }
            // Ratios ascend.
            for w in ratios.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }

    #[test]
    fn survivors_are_exactly_positive_counts(picks in views(30)) {
        let mut counts = PreferenceCounts::new(30);
        for v in &picks {
            if v.is_empty() {
                counts.record_discard(1.0);
            } else {
                counts.record_view(v, 1.0);
            }
        }
        let alive: Vec<usize> = (0..30).collect();
        let survivors = counts.survivors(&alive);
        for &id in &survivors {
            prop_assert!(counts.count(id) > 0.0);
        }
        for id in 0..30 {
            if counts.count(id) > 0.0 {
                prop_assert!(survivors.contains(&id));
            }
        }
    }
}
