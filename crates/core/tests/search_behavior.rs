//! Behavioral tests of the search loop beyond the happy path: weight
//! handling, termination, and degenerate inputs.

use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_user::{HeuristicUser, ScriptedUser, UserResponse};

/// 6-D data with a 25-point cluster tight in dims 0..3 around 50 and 75
/// uniform background points; returns (points, members).
fn planted() -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut state = 0x12345678ABCDEFu64;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = Vec::new();
    for _ in 0..25 {
        let mut p: Vec<f64> = (0..6).map(|_| unif() * 100.0).collect();
        for coord in p.iter_mut().take(3) {
            *coord = 50.0 + (unif() - 0.5) * 2.0;
        }
        pts.push(p);
    }
    for _ in 0..75 {
        pts.push((0..6).map(|_| unif() * 100.0).collect());
    }
    (pts, (0..25).collect())
}

#[test]
fn weights_change_the_probabilities() {
    // A cluster tight in *all* dimensions: every view of a major iteration
    // shows it, so every view is accepted and the per-view weights matter.
    let mut state = 0xFEEDFACEu64;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..25 {
        pts.push((0..6).map(|_| 50.0 + (unif() - 0.5) * 2.0).collect());
    }
    for _ in 0..75 {
        pts.push((0..6).map(|_| unif() * 100.0).collect());
    }
    let query = vec![50.0, 50.0, 50.0, 50.0, 50.0, 50.0];
    let base = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(10)
            .with_mode(ProjectionMode::AxisParallel)
    };

    let run = |weights: Vec<f64>| {
        let config = SearchConfig {
            projection_weights: weights,
            ..base.clone()
        };
        let mut user = HeuristicUser::default();
        InteractiveSearch::new(config)
            .run_with(
                &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
                &query,
                &mut user,
                hinn_core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome()
            .probabilities
    };
    let uniform = run(Vec::new());
    // Down-weight every view after the first.
    let skewed = run(vec![1.0, 0.1, 0.1]);
    assert_ne!(
        uniform, skewed,
        "weights must influence the meaningfulness probabilities"
    );
}

#[test]
fn termination_stops_at_min_major_when_ranking_is_stable() {
    let (pts, _) = planted();
    let query = vec![50.0; 6];
    // A user whose picks never change: same threshold forever.
    let config = SearchConfig {
        min_major_iterations: 2,
        max_major_iterations: 6,
        overlap_threshold: 0.5,
        ..SearchConfig::default()
            .with_support(10)
            .with_mode(ProjectionMode::AxisParallel)
    };
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            &query,
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert!(
        outcome.majors_run < 6,
        "a stable session must terminate early, ran {}",
        outcome.majors_run
    );
    assert!(outcome.majors_run >= 2, "min_major_iterations respected");
}

#[test]
fn max_major_is_a_hard_cap_when_overlap_never_stabilizes() {
    let (pts, _) = planted();
    let query = vec![50.0; 6];
    let config = SearchConfig {
        min_major_iterations: 1,
        max_major_iterations: 3,
        overlap_threshold: 1.1_f64.min(1.0), // always-unreachable overlap
        ..SearchConfig::default().with_support(10)
    };
    // overlap_threshold 1.0 is reachable when rankings are identical, so
    // force churn with a user that alternates picks.
    let responses = (0..100).map(|i| {
        if i % 2 == 0 {
            UserResponse::Discard
        } else {
            UserResponse::Threshold(1e-9)
        }
    });
    let mut user = ScriptedUser::new(responses);
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            &query,
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert!(outcome.majors_run <= 3);
}

#[test]
fn two_dimensional_data_runs_a_single_minor_iteration() {
    let pts: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![(i % 7) as f64, (i / 7) as f64])
        .collect();
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(5)
    };
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            &[3.0, 3.0],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert_eq!(
        outcome.transcript.majors[0].minors.len(),
        1,
        "d=2 → one view"
    );
}

#[test]
fn duplicate_points_are_handled() {
    // 40 identical points + 10 others: degenerate covariance everywhere.
    let mut pts = vec![vec![5.0, 5.0, 5.0, 5.0]; 40];
    for i in 0..10 {
        pts.push(vec![i as f64, 100.0 - i as f64, 2.0 * i as f64, 50.0]);
    }
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(5)
    };
    let mut user = HeuristicUser::default();
    // Must not panic; NaN-free probabilities.
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            &[5.0; 4],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert!(outcome.probabilities.iter().all(|p| p.is_finite()));
}

#[test]
fn odd_dimensionality_gets_floor_of_d_over_2_views() {
    let (pts, _) = planted();
    // Truncate to 5 dims (odd).
    let pts5: Vec<Vec<f64>> = pts.iter().map(|p| p[..5].to_vec()).collect();
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(8)
    };
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_data::DatasetHandle::new(&pts5).expect("epoch handle"),
            &[50.0; 5],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    // d = 5 → floor(5/2) = 2 views.
    assert_eq!(outcome.transcript.majors[0].minors.len(), 2);
}

#[test]
#[should_panic(expected = "non-finite")]
#[allow(deprecated)]
fn nan_data_fails_fast() {
    // Epoch handles refuse non-finite rows at append; the slice shim
    // keeps the legacy fail-fast behavior inside the engine.
    let pts = vec![vec![0.0, 1.0], vec![f64::NAN, 2.0]];
    let mut user = HeuristicUser::default();
    let _ = InteractiveSearch::new(SearchConfig::default().with_support(1))
        .run_with_slice(
            &pts,
            &[0.0, 0.0],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
}

#[test]
#[should_panic(expected = "ragged")]
#[allow(deprecated)]
fn ragged_data_fails_fast() {
    let pts = vec![vec![0.0, 1.0], vec![1.0]];
    let mut user = HeuristicUser::default();
    let _ = InteractiveSearch::new(SearchConfig::default().with_support(1))
        .run_with_slice(
            &pts,
            &[0.0, 0.0],
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
}
