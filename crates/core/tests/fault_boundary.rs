//! Fault drills against the `BatchRunner` isolation boundary.
//!
//! These tests force faults on *batch worker threads*, so they must
//! install a process-global fault plan (`hinn_fault::install`) rather
//! than a thread-local one. Global plans are visible to every thread in
//! the binary — which is exactly why these tests live in their own
//! integration binary: every test here installs a plan, the install
//! guard holds the global install lock, and the tests therefore
//! serialize instead of leaking faults into each other.

use hinn_core::{BatchRunner, HinnError, QueryReport, SearchConfig};
use hinn_user::HeuristicUser;
use std::sync::Arc;
use std::time::Duration;

/// 6-D data, full-space cluster at 50 plus background (mirrors the
/// `batch` unit-test workload).
fn workload() -> Vec<Vec<f64>> {
    let mut state = 0xC0FFEEu64;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pts.push((0..6).map(|_| 50.0 + (unif() - 0.5) * 2.0).collect());
    }
    for _ in 0..90 {
        pts.push((0..6).map(|_| unif() * 100.0).collect());
    }
    pts
}

fn config() -> SearchConfig {
    SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(10)
    }
}

#[test]
fn forced_panic_is_contained_and_retried() {
    // `search.panic` fires once: the first session dies, the degraded
    // retry completes. The panic must not escape `run`.
    let pts = workload();
    let queries = vec![pts[0].clone()];
    let plan =
        Arc::new(hinn_fault::FaultPlan::new().with("search.panic", hinn_fault::FaultMode::Once));
    let reports = {
        let _g = hinn_fault::install(plan.clone());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let reports = BatchRunner::new(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            config(),
        )
        .with_threads(1)
        .run(&queries, || Box::new(HeuristicUser::default()));
        std::panic::set_hook(prev_hook);
        reports
    };
    assert_eq!(plan.fired("search.panic"), 1);
    let r = &reports[0];
    assert!(!r.is_failed(), "degraded retry must complete");
    assert!(r.retried());
    match r {
        QueryReport::Completed { degradations, .. } => {
            assert!(*degradations >= 1, "the retry is itself recorded")
        }
        QueryReport::Failed { .. } => unreachable!(),
    }
}

#[test]
fn forced_deadline_on_both_attempts_surfaces_as_failed() {
    let pts = workload();
    let queries = vec![pts[0].clone(), pts[5].clone()];
    let plan = Arc::new(
        hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
    );
    let reports = {
        let _g = hinn_fault::install(plan.clone());
        BatchRunner::new(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            config(),
        )
        .with_threads(1)
        .with_deadline(Duration::from_secs(3600))
        .run(&queries, || Box::new(HeuristicUser::default()))
    };
    assert!(
        plan.fired("search.deadline") >= 4,
        "both attempts, both queries"
    );
    for r in &reports {
        assert!(r.is_failed());
        assert!(r.retried(), "deadline failures are retried once");
        assert!(matches!(r.error(), Some(HinnError::Deadline { .. })));
    }
}

#[test]
fn forcing_every_point_at_once_cannot_panic_the_batch() {
    // The CI smoke configuration: all six registered points armed on
    // every hit. Each query either completes through the degradation
    // ladder or comes back as a typed `Failed` — nothing unwinds out.
    let pts = workload();
    let queries: Vec<Vec<f64>> = (0..3).map(|i| pts[i * 5].clone()).collect();
    let plan = Arc::new(hinn_fault::FaultPlan::forcing_all());
    let reports = {
        let _g = hinn_fault::install(plan.clone());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // forced in-session panics
        let reports = BatchRunner::new(
            &hinn_data::DatasetHandle::new(&pts).expect("epoch handle"),
            config(),
        )
        .with_threads(2)
        .run(&queries, || Box::new(HeuristicUser::default()));
        std::panic::set_hook(prev_hook);
        reports
    };
    assert_eq!(reports.len(), queries.len());
    assert!(plan.fired("search.panic") >= 1);
    for r in &reports {
        // Under forcing_all the in-session panic fires on every minor
        // iteration of both attempts, so every query must surface as a
        // contained, retried failure.
        assert!(r.is_failed());
        assert!(r.retried());
        assert!(matches!(r.error(), Some(HinnError::SessionPanicked { .. })));
    }
}
