//! Fuzz-style robustness: the search loop must complete (no panic, valid
//! outputs) on arbitrary small datasets with arbitrary (scripted) user
//! behavior.

use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_user::{ScriptedUser, UserResponse};
use proptest::prelude::*;

fn arbitrary_dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..7, 3usize..60).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, d), n..=n)
    })
}

fn arbitrary_responses() -> impl Strategy<Value = Vec<UserResponse>> {
    proptest::collection::vec(
        prop_oneof![
            Just(UserResponse::Discard),
            // τ relative magnitudes vary wildly; the loop must cope with
            // thresholds above every density (selecting nothing).
            (1e-6..10.0f64).prop_map(UserResponse::Threshold),
        ],
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn search_is_total_on_arbitrary_inputs(
        points in arbitrary_dataset(),
        responses in arbitrary_responses(),
        support in 1usize..20,
        mode_axis in proptest::bool::ANY,
        qidx in 0usize..60,
    ) {
        let query = points[qidx % points.len()].clone();
        let config = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            grid_n: 16,
            projection_mode: if mode_axis {
                ProjectionMode::AxisParallel
            } else {
                ProjectionMode::Arbitrary
            },
            ..SearchConfig::default().with_support(support)
        };
        let mut user = ScriptedUser::new(responses);
        let dh = hinn_data::DatasetHandle::new(&points).expect("finite uniform-dim fuzz data");
        let outcome = InteractiveSearch::new(config).run_with(&dh, &query, &mut user, hinn_core::RunOptions::default()).expect("interactive session").into_outcome();

        // Structural invariants that must hold for ANY input.
        prop_assert_eq!(outcome.probabilities.len(), points.len());
        for p in &outcome.probabilities {
            prop_assert!((0.0..=1.0).contains(p), "P out of range: {p}");
        }
        prop_assert_eq!(outcome.neighbors.len(), outcome.effective_support.min(points.len()));
        // Neighbors are distinct, in-range indices.
        let set: std::collections::HashSet<_> = outcome.neighbors.iter().collect();
        prop_assert_eq!(set.len(), outcome.neighbors.len());
        prop_assert!(outcome.neighbors.iter().all(|&i| i < points.len()));
        // Transcript is internally consistent.
        prop_assert_eq!(outcome.transcript.majors.len(), outcome.majors_run);
        prop_assert!(
            outcome.transcript.total_dismissed() <= outcome.transcript.total_views()
        );
        // Natural neighbors, when reported, are a prefix-sized subset.
        if let Some(natural) = outcome.natural_neighbors() {
            prop_assert!(!natural.is_empty());
            prop_assert!(natural.iter().all(|&i| i < points.len()));
        }
    }
}
