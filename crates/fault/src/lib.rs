//! Deterministic, seeded fault injection for the `hinn` workspace — the
//! robustness analogue of `hinn-obs`: a process-global facade whose entire
//! cost, when nothing is installed, is one relaxed atomic load per
//! instrumented point.
//!
//! The engine's degradation ladder (Jacobi non-convergence → axis-parallel
//! projections, collapsed KDE grid → skipped view, deadline expiry → typed
//! error, in-session panic → batch isolation) only earns its keep if every
//! arm can be *forced* on demand and asserted on. Production code marks
//! each failure arm with a named [`point`]:
//!
//! ```
//! if hinn_fault::point("eigen.converge") {
//!     // behave as if the Jacobi sweep stalled
//! }
//! ```
//!
//! With no plan installed (the default, and the only state production code
//! ever runs in) `point` returns `false` after a single relaxed load.
//! Tests install a [`FaultPlan`] scoped by an RAII [`InstallGuard`]:
//!
//! ```
//! use hinn_fault::{FaultMode, FaultPlan};
//! use std::sync::Arc;
//!
//! let plan = Arc::new(FaultPlan::new().with("eigen.converge", FaultMode::Always));
//! {
//!     let _guard = hinn_fault::install(plan.clone());
//!     assert!(hinn_fault::point("eigen.converge"));
//!     assert!(!hinn_fault::point("kde.grid")); // not in the plan
//! }
//! assert!(!hinn_fault::point("eigen.converge")); // uninstalled
//! assert_eq!(plan.fired("eigen.converge"), 1);
//! ```
//!
//! Determinism: firing decisions depend only on the plan and the per-point
//! hit index — never on clocks, thread identity, or global randomness —
//! and every registered point sits on the *sequential* control path of the
//! search loop (not inside `hinn-par` chunk workers), so hit order and
//! fire decisions are identical for every thread budget. The
//! [`FaultMode::Sometimes`] mode uses a seeded hash of
//! `(seed, point name, hit index)` for reproducible pseudo-random faults.
//!
//! Installation is serialized exactly like `hinn-obs`: the guard holds a
//! global lock so concurrent tests queue rather than interleave plans.
//! Because a *global* plan is visible to every thread in the process —
//! including unrelated tests running concurrently in the same binary —
//! tests whose faulted code runs entirely on the calling thread should
//! prefer [`install_local`], which shadows the global plan on the
//! installing thread only and is invisible everywhere else. Reserve
//! [`install`] for multi-threaded fault drills (e.g. batch workers), and
//! keep those in a test binary where *every* test installs a plan, so the
//! install lock serializes them.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Every fault point compiled into the workspace's hot paths, for tests
/// that want to force "everything at once" without chasing call sites.
/// The `net.*` points live on the serving wire (`hinn-net`): a torn
/// reply frame, a client vanishing mid-submit, and a read stalling past
/// the socket deadline.
pub const POINTS: [&str; 9] = [
    "eigen.converge",
    "covariance.degenerate",
    "kde.bandwidth",
    "kde.grid",
    "search.panic",
    "search.deadline",
    "net.torn_frame",
    "net.disconnect",
    "net.stall",
];

/// When an armed fault point fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultMode {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only (e.g. "first attempt fails, the batch
    /// retry succeeds").
    Once,
    /// Fire on every `n`-th hit (1-based: `Nth(3)` fires on hits 3, 6, …).
    /// `Nth(0)` never fires.
    Nth(u64),
    /// Fire pseudo-randomly with probability `p`, deterministically seeded:
    /// the decision for hit `k` of point `name` is a pure function of
    /// `(seed, name, k)`.
    Sometimes {
        /// Firing probability in `[0, 1]`.
        p: f64,
        /// Reproducibility seed.
        seed: u64,
    },
}

#[derive(Debug, Default)]
struct Arm {
    mode: Option<FaultMode>,
    hits: AtomicU64,
    fired: AtomicU64,
}

/// A set of armed fault points plus hit/fire accounting. Install with
/// [`install`]; query the counters afterwards via [`FaultPlan::hits`] and
/// [`FaultPlan::fired`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: BTreeMap<&'static str, Arm>,
    /// When set, every point fires regardless of per-point arms.
    force_all: bool,
}

impl FaultPlan {
    /// An empty plan: counts hits on the registered [`POINTS`] but fires
    /// nothing until armed with [`FaultPlan::with`].
    pub fn new() -> Self {
        let mut plan = Self {
            arms: BTreeMap::new(),
            force_all: false,
        };
        for name in POINTS {
            plan.arms.insert(name, Arm::default());
        }
        plan
    }

    /// A plan that fires *every* point on every hit (the CI smoke
    /// configuration: prove that no combination of failure arms can panic
    /// the batch driver).
    pub fn forcing_all() -> Self {
        let mut plan = Self::new();
        plan.force_all = true;
        plan
    }

    /// Arm `name` with `mode`. Unknown names are accepted (the plan is a
    /// map, not a schema) so tests can arm points introduced later.
    pub fn with(mut self, name: &'static str, mode: FaultMode) -> Self {
        self.arms.entry(name).or_default().mode = Some(mode);
        self
    }

    /// Build a plan from the `HINN_FAULTS` environment variable:
    /// `"all"` arms everything ([`FaultPlan::forcing_all`]); otherwise a
    /// comma-separated list of point names, each armed [`FaultMode::Always`].
    /// Returns `None` when the variable is unset or empty.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("HINN_FAULTS").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if spec == "all" {
            return Some(Self::forcing_all());
        }
        let mut plan = Self::new();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            // Leak the name: env-armed points live for the process anyway,
            // and arms are keyed by 'static strs to keep `point` free of
            // owned-string hashing.
            let name: &'static str = POINTS
                .iter()
                .find(|p| **p == name)
                .copied()
                .unwrap_or_else(|| Box::leak(name.to_owned().into_boxed_str()));
            plan.arms.entry(name).or_default().mode = Some(FaultMode::Always);
        }
        Some(plan)
    }

    /// How many times `name` was consulted while this plan was installed.
    pub fn hits(&self, name: &str) -> u64 {
        self.arms
            .get(name)
            .map_or(0, |a| a.hits.load(Ordering::Relaxed))
    }

    /// How many times `name` actually fired.
    pub fn fired(&self, name: &str) -> u64 {
        self.arms
            .get(name)
            .map_or(0, |a| a.fired.load(Ordering::Relaxed))
    }

    /// Consult the plan for one hit of `name`.
    fn consult(&self, name: &str) -> bool {
        let Some(arm) = self.arms.get(name) else {
            // Unregistered point with force_all: fire, but nothing to count.
            return self.force_all;
        };
        let hit = arm.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = self.force_all
            || match arm.mode {
                None => false,
                Some(FaultMode::Always) => true,
                Some(FaultMode::Once) => hit == 1,
                Some(FaultMode::Nth(n)) => n != 0 && hit % n == 0,
                Some(FaultMode::Sometimes { p, seed }) => {
                    if p <= 0.0 {
                        false
                    } else if p >= 1.0 {
                        true
                    } else {
                        // splitmix64 over (seed, fnv1a(name), hit).
                        let mut x = seed ^ fnv1a(name) ^ hit.wrapping_mul(0x9E3779B97F4A7C15);
                        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
                        x ^= x >> 31;
                        // Top 53 bits → uniform in [0, 1).
                        ((x >> 11) as f64) / (1u64 << 53) as f64 <= p
                    }
                }
            };
        if fire {
            arm.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fast-path switch, exactly as in `hinn-obs`: the number of live plan
/// installations (global + thread-local) in the process. Relaxed is safe —
/// a stale read can only miss or no-op one consult around an install edge.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The installed global plan. Only read when [`ACTIVE`] is non-zero.
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Serializes global installations so overlapping tests queue, never
/// interleave.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// A per-thread plan that shadows the global one (see [`install_local`]).
    static LOCAL: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

/// Scoped installation of a process-global [`FaultPlan`]; dropping
/// uninstalls it.
#[must_use = "dropping the guard uninstalls the fault plan immediately"]
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Install `plan` as the process-global fault plan until the returned
/// guard drops. Blocks while another global plan is installed. Every
/// thread in the process sees the plan (unless shadowed by its own
/// [`install_local`]) — in test binaries, only use this when the faulted
/// code runs on threads the test does not own, and make sure every test
/// in the binary installs a plan so the install lock serializes them.
pub fn install(plan: Arc<FaultPlan>) -> InstallGuard {
    let lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    InstallGuard { _lock: lock }
}

/// Scoped installation of a thread-local [`FaultPlan`]; dropping restores
/// the previous thread state. The guard is `!Send`: it must drop on the
/// installing thread.
#[must_use = "dropping the guard uninstalls the fault plan immediately"]
pub struct LocalGuard {
    previous: Option<Arc<FaultPlan>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for LocalGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        LOCAL.with(|slot| *slot.borrow_mut() = previous);
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Install `plan` for the *calling thread only*: [`point`] consults it on
/// this thread and ignores it everywhere else, so concurrently running
/// tests in the same binary are untouched. This is the right tool for any
/// fault whose point is consulted on the caller's thread (eigen, KDE,
/// projection, deadline — everything except code that hands work to its
/// own spawned threads). Nested installs shadow and restore like a stack.
pub fn install_local(plan: Arc<FaultPlan>) -> LocalGuard {
    let previous = LOCAL.with(|slot| slot.borrow_mut().replace(plan));
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    LocalGuard {
        previous,
        _not_send: std::marker::PhantomData,
    }
}

/// `true` iff any fault plan is currently installed (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0
}

/// The fault point marker: `true` iff the plan visible to this thread
/// (thread-local if installed, else global) fires `name` on this hit.
/// With no plan installed anywhere this is a single relaxed atomic load
/// returning `false` — cheap enough for the hot paths it guards.
#[inline]
pub fn point(name: &str) -> bool {
    if !enabled() {
        return false;
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &str) -> bool {
    let local = LOCAL.with(|slot| slot.borrow().clone());
    if let Some(plan) = local {
        return plan.consult(name);
    }
    match PLAN.read() {
        Ok(slot) => slot.as_ref().is_some_and(|p| p.consult(name)),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        // May run concurrently with installing tests in this crate, so
        // only assert the no-panic contract for an unknown point name.
        let _ = point("test.nonexistent");
    }

    #[test]
    fn modes_fire_as_specified() {
        let plan = Arc::new(
            FaultPlan::new()
                .with("eigen.converge", FaultMode::Always)
                .with("kde.grid", FaultMode::Once)
                .with("kde.bandwidth", FaultMode::Nth(3)),
        );
        {
            let _g = install(plan.clone());
            for _ in 0..6 {
                point("eigen.converge");
                point("kde.grid");
                point("kde.bandwidth");
                point("search.panic"); // unarmed: hit-counted, never fires
            }
        }
        assert_eq!(plan.hits("eigen.converge"), 6);
        assert_eq!(plan.fired("eigen.converge"), 6);
        assert_eq!(plan.fired("kde.grid"), 1);
        assert_eq!(plan.fired("kde.bandwidth"), 2); // hits 3 and 6
        assert_eq!(plan.hits("search.panic"), 6);
        assert_eq!(plan.fired("search.panic"), 0);
    }

    #[test]
    fn forcing_all_fires_everything() {
        let plan = Arc::new(FaultPlan::forcing_all());
        {
            let _g = install(plan.clone());
            for name in POINTS {
                assert!(point(name), "{name} must fire under forcing_all");
            }
        }
        for name in POINTS {
            assert_eq!(plan.fired(name), 1);
        }
    }

    #[test]
    fn sometimes_is_deterministic_and_roughly_calibrated() {
        let decisions = |seed: u64| -> Vec<bool> {
            let plan = Arc::new(
                FaultPlan::new().with("eigen.converge", FaultMode::Sometimes { p: 0.25, seed }),
            );
            let _g = install(plan);
            (0..400).map(|_| point("eigen.converge")).collect()
        };
        let a = decisions(7);
        let b = decisions(7);
        assert_eq!(a, b, "same seed → same firing sequence");
        let c = decisions(8);
        assert_ne!(a, c, "different seed → different sequence");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.15..=0.35).contains(&rate), "rate {rate} far from 0.25");
    }

    #[test]
    fn install_is_scoped() {
        let plan = Arc::new(FaultPlan::forcing_all());
        {
            let _g = install(plan);
            assert!(enabled());
        }
        assert!(!point("eigen.converge"));
    }

    #[test]
    fn local_install_is_invisible_to_other_threads() {
        let plan = Arc::new(FaultPlan::new().with("search.panic", FaultMode::Always));
        let _g = install_local(plan.clone());
        assert!(point("search.panic"));
        // A sibling thread consulting the same point must not reach this
        // plan (it may reach a concurrently-installed *global* plan from
        // another test, so we only assert on our plan's counters).
        std::thread::spawn(|| {
            let _ = point("search.panic");
        })
        .join()
        .unwrap();
        assert_eq!(plan.hits("search.panic"), 1, "only the local consult");
    }

    #[test]
    fn local_shadows_global_and_restores_on_drop() {
        let global = Arc::new(FaultPlan::forcing_all());
        let _g = install(global.clone());
        let quiet = Arc::new(FaultPlan::new()); // arms nothing
        {
            let _l = install_local(quiet.clone());
            assert!(!point("eigen.converge"), "local plan shadows global");
        }
        assert!(point("eigen.converge"), "global visible again after drop");
        assert_eq!(quiet.hits("eigen.converge"), 1);
        assert_eq!(global.fired("eigen.converge"), 1);
    }

    #[test]
    fn nth_zero_never_fires() {
        let plan = Arc::new(FaultPlan::new().with("kde.grid", FaultMode::Nth(0)));
        {
            let _g = install(plan.clone());
            for _ in 0..5 {
                assert!(!point("kde.grid"));
            }
        }
        assert_eq!(plan.fired("kde.grid"), 0);
    }
}
