//! Gaussian kernels and bandwidth selection.
//!
//! §2.2 of the paper uses a Gaussian kernel
//! `K_h(x − xᵢ) = (1 / (√(2π) h)) · exp(−(x − xᵢ)² / 2h²)` and quotes
//! Silverman's normal-reference rule `h = 1.06 · σ · N^(−1/5)` for the
//! bandwidth. In two dimensions we use a product kernel with per-axis
//! bandwidths.

use std::f64::consts::PI;

/// 1-D Gaussian kernel value `K_h(u)` with bandwidth `h`.
///
/// # Panics
/// Panics if `h <= 0`.
#[inline]
pub fn gaussian_kernel(u: f64, h: f64) -> f64 {
    assert!(h > 0.0, "gaussian_kernel: bandwidth must be positive");
    let z = u / h;
    (-0.5 * z * z).exp() / ((2.0 * PI).sqrt() * h)
}

/// Silverman's rule-of-thumb bandwidth `h = 1.06 · σ · N^(−1/5)` (§2.2).
///
/// Degenerate samples (σ ≈ 0 or tiny N) fall back to a small positive
/// bandwidth scaled to the data range so the estimator stays well-defined.
pub fn silverman_bandwidth(sample: &[f64]) -> f64 {
    silverman_bandwidth_checked(sample).0
}

/// [`silverman_bandwidth`] with an explicit degradation flag: the second
/// element is `true` iff the rule-of-thumb value was unusable (σ ≈ 0,
/// empty sample) and the epsilon-floored fallback was substituted. The
/// bandwidth value is bit-identical to [`silverman_bandwidth`].
pub fn silverman_bandwidth_checked(sample: &[f64]) -> (f64, bool) {
    let n = sample.len();
    if n == 0 {
        return (1.0, true);
    }
    let sigma = hinn_linalg::stats::std_dev(sample);
    let h = 1.06 * sigma * (n as f64).powf(-0.2);
    if h > 1e-12 {
        (h, false)
    } else {
        (floor_bandwidth(sample), true)
    }
}

/// The epsilon-floored fallback bandwidth for a (near-)degenerate sample:
/// a small fraction of the data span, or an absolute floor when even the
/// span has collapsed. Always positive and finite.
fn floor_bandwidth(sample: &[f64]) -> f64 {
    // All-equal sample: any positive bandwidth yields a single spike.
    let range = sample
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (range.1 - range.0).abs();
    if span.is_finite() && span > 1e-12 {
        0.05 * span
    } else {
        1e-3
    }
}

/// Per-axis bandwidths for the 2-D product kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth2D {
    /// Bandwidth along the first projected coordinate.
    pub hx: f64,
    /// Bandwidth along the second projected coordinate.
    pub hy: f64,
}

impl Bandwidth2D {
    /// Silverman bandwidths computed independently per axis from 2-D points.
    ///
    /// # Panics
    /// Panics if any point is not 2-D.
    pub fn silverman(points: &[[f64; 2]]) -> Self {
        let xs: Vec<f64> = points.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = points.iter().map(|p| p[1]).collect();
        Self {
            hx: silverman_bandwidth(&xs),
            hy: silverman_bandwidth(&ys),
        }
    }

    /// [`Bandwidth2D::silverman`] with an explicit degradation flag: the
    /// second element is `true` iff either axis fell back to the
    /// epsilon-floored bandwidth (zero spread along that axis). The
    /// `kde.bandwidth` fault point (see `hinn-fault`) forces the floored
    /// arm on both axes so callers can exercise their degradation path.
    /// Unfaulted, the bandwidths are bit-identical to
    /// [`Bandwidth2D::silverman`].
    pub fn silverman_checked(points: &[[f64; 2]]) -> (Self, bool) {
        let xs: Vec<f64> = points.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = points.iter().map(|p| p[1]).collect();
        if hinn_fault::point("kde.bandwidth") {
            return (
                Self {
                    hx: floor_bandwidth(&xs),
                    hy: floor_bandwidth(&ys),
                },
                true,
            );
        }
        let (hx, fx) = silverman_bandwidth_checked(&xs);
        let (hy, fy) = silverman_bandwidth_checked(&ys);
        (Self { hx, hy }, fx || fy)
    }

    /// Scale both bandwidths by `factor` (over/under-smoothing knob exposed
    /// in `SearchConfig`).
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale factor must be positive");
        Self {
            hx: self.hx * factor,
            hy: self.hy * factor,
        }
    }
}

/// 2-D product-Gaussian kernel value at offset `(ux, uy)`.
#[inline]
pub fn gaussian_kernel_2d(ux: f64, uy: f64, bw: Bandwidth2D) -> f64 {
    gaussian_kernel(ux, bw.hx) * gaussian_kernel(uy, bw.hy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_peaks_at_zero_and_is_symmetric() {
        let h = 0.7;
        assert!(gaussian_kernel(0.0, h) > gaussian_kernel(0.5, h));
        assert!((gaussian_kernel(0.3, h) - gaussian_kernel(-0.3, h)).abs() < 1e-15);
    }

    #[test]
    fn kernel_integrates_to_one() {
        // Trapezoid rule over [-8h, 8h].
        let h = 0.5;
        let steps = 4000;
        let lo = -8.0 * h;
        let hi = 8.0 * h;
        let dx = (hi - lo) / steps as f64;
        let mut s = 0.0;
        for i in 0..=steps {
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            s += w * gaussian_kernel(lo + i as f64 * dx, h);
        }
        assert!((s * dx - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_normalization_depends_on_h() {
        assert!((gaussian_kernel(0.0, 1.0) - 1.0 / (2.0 * PI).sqrt()).abs() < 1e-12);
        assert!((gaussian_kernel(0.0, 0.5) - 2.0 / (2.0 * PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn silverman_matches_formula() {
        // Sample with known σ = 2 (population): [2,4,4,4,5,5,7,9].
        let sample = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let expect = 1.06 * 2.0 * 8f64.powf(-0.2);
        assert!((silverman_bandwidth(&sample) - expect).abs() < 1e-12);
    }

    #[test]
    fn silverman_degenerate_sample_positive() {
        assert!(silverman_bandwidth(&[3.0, 3.0, 3.0]) > 0.0);
        assert!(silverman_bandwidth(&[]) > 0.0);
        assert!(silverman_bandwidth(&[1.0]) > 0.0);
    }

    #[test]
    fn checked_bandwidth_flags_the_floor_arm() {
        let healthy = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (h, floored) = silverman_bandwidth_checked(&healthy);
        assert_eq!(h, silverman_bandwidth(&healthy), "values must agree");
        assert!(!floored);

        let (h, floored) = silverman_bandwidth_checked(&[3.0, 3.0, 3.0]);
        assert!(h > 0.0);
        assert!(floored, "zero-spread sample must flag the floor");
        let (h, floored) = silverman_bandwidth_checked(&[]);
        assert!(h > 0.0 && floored);
    }

    #[test]
    fn forced_bandwidth_fault_floors_both_axes() {
        let pts: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, i as f64 * 2.0]).collect();
        let (clean, floored) = Bandwidth2D::silverman_checked(&pts);
        assert!(!floored);
        assert_eq!(clean, Bandwidth2D::silverman(&pts));

        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("kde.bandwidth", hinn_fault::FaultMode::Always),
        );
        let (forced, floored) = {
            let _g = hinn_fault::install_local(plan.clone());
            Bandwidth2D::silverman_checked(&pts)
        };
        assert_eq!(plan.fired("kde.bandwidth"), 1);
        assert!(floored, "fault must force the floored arm");
        assert!(forced.hx > 0.0 && forced.hy > 0.0);
        assert_ne!(forced, clean);
    }

    #[test]
    fn bandwidth2d_per_axis() {
        let pts: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, (i % 2) as f64 * 0.01]).collect();
        let bw = Bandwidth2D::silverman(&pts);
        assert!(bw.hx > bw.hy, "wider axis should get larger bandwidth");
        let scaled = bw.scaled(2.0);
        assert!((scaled.hx - 2.0 * bw.hx).abs() < 1e-12);
    }

    #[test]
    fn product_kernel_separates() {
        let bw = Bandwidth2D { hx: 1.0, hy: 2.0 };
        let v = gaussian_kernel_2d(0.5, -1.0, bw);
        assert!((v - gaussian_kernel(0.5, 1.0) * gaussian_kernel(-1.0, 2.0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        gaussian_kernel(0.0, 0.0);
    }
}
