//! KDE evaluation over grids and at arbitrary locations.
//!
//! Equation (1) of the paper: `f(x) = (1/N) Σᵢ K_h(x − xᵢ)`, with the 2-D
//! product Gaussian kernel. Grid evaluation exploits separability: for each
//! data point the x-axis kernel column and y-axis kernel row are computed
//! once (`O(p)` each) and their outer product is accumulated (`O(p²)` only
//! over the kernel's support), with the kernel truncated at `TRUNC_SIGMAS`
//! standard deviations — a standard, visually lossless optimization.
//!
//! The accumulation is vectorized through `hinn_linalg::simd` without
//! changing a single output bit: kernel columns are evaluated with
//! [`hinn_linalg::simd::gaussian_prep`] (exactly-rounded ops; `exp` stays
//! scalar libm), and outer products land on the grid through `axpy`
//! passes. Points are processed in blocks of [`KDE_BLOCK`] so one
//! read-modify-write pass over a grid row applies eight points'
//! contributions ([`hinn_linalg::simd::axpy8`]); cells outside a point's
//! support receive `+0.0`, which leaves a non-negative accumulator
//! bit-unchanged, so the blocked schedule equals the one-point-at-a-time
//! spec exactly.
//!
//! Points with a non-finite coordinate are skipped (and counted via the
//! `kde.skipped_nonfinite` counter) rather than poisoning the grid; the
//! normalization divides by the number of points actually accumulated.

use crate::grid::{DensityGrid, GridSpec};
use crate::kernel::{gaussian_kernel, Bandwidth2D};
use hinn_linalg::simd;
use hinn_par::{map_reduce_chunks, Parallelism};

/// Gaussian kernel support truncation, in bandwidth units. Beyond 6σ the
/// kernel value is below 6e-9 of the peak — invisible in any profile.
const TRUNC_SIGMAS: f64 = 6.0;

/// Points per fused grid pass: matches the [`simd::axpy8`] kernel.
const KDE_BLOCK: usize = 8;

/// Evaluate the KDE of `points` on every grid point of `spec`.
///
/// Returns a [`DensityGrid`]; an empty point set yields an all-zero grid.
pub fn estimate_grid(points: &[[f64; 2]], bw: Bandwidth2D, spec: GridSpec) -> DensityGrid {
    estimate_grid_with(Parallelism::serial(), points, bw, spec)
}

/// [`estimate_grid`] with an explicit thread budget. Each fixed chunk of
/// data points accumulates its own partial `p × p` grid; the partial grids
/// merge elementwise in chunk order, so the result is bit-identical for
/// every budget. Transient memory is `O(⌈N/CHUNK⌉ · p²)` during a parallel
/// run (one partial grid per chunk); partial grids and kernel scratch are
/// drawn from the thread-local [`hinn_cache::pool`], so steady-state
/// serving does not allocate here.
pub fn estimate_grid_with(
    par: Parallelism,
    points: &[[f64; 2]],
    bw: Bandwidth2D,
    spec: GridSpec,
) -> DensityGrid {
    let _span = hinn_obs::span!("kde.estimate_grid");
    let n = spec.n;
    if points.is_empty() {
        return DensityGrid::new(spec, vec![0.0; n * n]);
    }
    if hinn_obs::enabled() {
        hinn_obs::counter("kde.points_scanned", points.len() as u64);
        hinn_obs::counter("kde.grid_cells", (n * n) as u64);
    }
    let skipped = count_nonfinite(points);
    if skipped > 0 {
        // Emitted only when something was actually skipped, so clean-data
        // telemetry keeps its exact counter schema.
        if hinn_obs::enabled() {
            hinn_obs::counter("kde.skipped_nonfinite", skipped as u64);
        }
        if skipped == points.len() {
            return DensityGrid::new(spec, vec![0.0; n * n]);
        }
    }
    let inv_n = 1.0 / (points.len() - skipped) as f64;
    let mut values = map_reduce_chunks(
        par,
        points.len(),
        |r| accumulate_grid_chunk(&points[r], bw, spec),
        vec![0.0; n * n],
        |mut acc, part| {
            for (a, b) in acc.iter_mut().zip(part.iter()) {
                *a += b;
            }
            acc
        },
    );
    for v in &mut values {
        *v *= inv_n;
    }
    DensityGrid::new(spec, values)
}

/// How many points have a non-finite coordinate (these are skipped by the
/// accumulators rather than poisoning the whole grid).
pub(crate) fn count_nonfinite(points: &[[f64; 2]]) -> usize {
    points
        .iter()
        .filter(|p| !(p[0].is_finite() && p[1].is_finite()))
        .count()
}

/// Fill `col[lo..=hi]` with `gaussian_kernel(grid(i) − center, h)` for
/// `i ∈ [lo, hi]`, bit-identical to the scalar kernel call per cell: the
/// exactly-rounded prefix (`−0.5·z²`) and the final normalization divide
/// are vectorized; `exp` stays a scalar libm call per cell.
pub(crate) fn fill_kernel_column(
    col: &mut [f64],
    lo: usize,
    hi: usize,
    origin: f64,
    step: f64,
    center: f64,
    h: f64,
) {
    assert!(h > 0.0, "gaussian_kernel: bandwidth must be positive");
    let seg = &mut col[lo..=hi];
    simd::gaussian_prep(seg, lo, origin, step, center, h);
    for v in seg.iter_mut() {
        *v = v.exp();
    }
    simd::div_inplace(seg, (2.0 * std::f64::consts::PI).sqrt() * h);
}

/// Un-normalized kernel-sum grid of one chunk of points. The returned
/// buffer (and the kernel scratch) comes from the thread-local pool; it
/// starts all-zero, exactly like a fresh allocation.
///
/// Points are gathered into blocks of [`KDE_BLOCK`]; a full block flushes
/// through [`simd::axpy8`] — one pass over each grid row in the block's
/// union support applies all eight outer products. Scratch columns are
/// zero outside each point's own support, so out-of-support cells receive
/// `+0.0`: the grid accumulator is non-negative (it starts at `+0.0` and
/// kernel products are `≥ 0`), and `x + 0.0 == x` bitwise for every
/// non-negative `x`, so the fused pass reproduces the per-point spec loop
/// bit-for-bit in the same point order.
fn accumulate_grid_chunk(
    points: &[[f64; 2]],
    bw: Bandwidth2D,
    spec: GridSpec,
) -> hinn_cache::PooledF64 {
    let n = spec.n;
    let mut values = hinn_cache::PooledF64::take_zeroed(n * n);
    // Slot `b`'s kernel column/row lives at `[b*n, (b+1)*n)`.
    let mut kx = hinn_cache::PooledF64::take_zeroed(KDE_BLOCK * n);
    let mut ky = hinn_cache::PooledF64::take_zeroed(KDE_BLOCK * n);
    let mut xr = [(1usize, 0usize); KDE_BLOCK];
    let mut yr = [(1usize, 0usize); KDE_BLOCK];
    let mut filled = 0usize;
    for p in points {
        if !(p[0].is_finite() && p[1].is_finite()) {
            continue; // counted once, up front, by the caller
        }
        // Index range of grid points within the truncated support.
        let (x_lo, x_hi) = support_range(p[0], bw.hx, spec.x0, spec.dx, n);
        let (y_lo, y_hi) = support_range(p[1], bw.hy, spec.y0, spec.dy, n);
        if x_lo > x_hi || y_lo > y_hi {
            continue;
        }
        let b = filled;
        fill_kernel_column(
            &mut kx[b * n..(b + 1) * n],
            x_lo,
            x_hi,
            spec.x0,
            spec.dx,
            p[0],
            bw.hx,
        );
        fill_kernel_column(
            &mut ky[b * n..(b + 1) * n],
            y_lo,
            y_hi,
            spec.y0,
            spec.dy,
            p[1],
            bw.hy,
        );
        xr[b] = (x_lo, x_hi);
        yr[b] = (y_lo, y_hi);
        filled += 1;
        if filled == KDE_BLOCK {
            flush_block(&mut values, n, &kx, &ky, &xr, &yr, filled);
            clear_columns(&mut kx, n, &xr, filled);
            clear_columns(&mut ky, n, &yr, filled);
            filled = 0;
        }
    }
    if filled > 0 {
        flush_block(&mut values, n, &kx, &ky, &xr, &yr, filled);
    }
    values
}

/// Apply the outer-product contributions of `filled` buffered points.
///
/// A full block whose eight supports overlap tightly walks each grid row
/// in the union y-support once, fusing all eight columns via
/// [`simd::axpy8`] — one load/store of the grid row serves eight points.
/// When the supports are scattered (points from far-apart clusters landing
/// in the same block), the union rectangle can dwarf the individual
/// supports and the fused pass would spend most of its lanes adding the
/// `+0.0` padding; those blocks — and partial (tail) blocks — instead take
/// per-point [`simd::axpy_inplace`] passes over each point's own support.
/// Both schedules deposit bit-identical contributions (the padding adds
/// are exact no-ops on the non-negative accumulator), so the choice is
/// purely a throughput heuristic and never shows up in the output.
fn flush_block(
    values: &mut [f64],
    n: usize,
    kx: &[f64],
    ky: &[f64],
    xr: &[(usize, usize); KDE_BLOCK],
    yr: &[(usize, usize); KDE_BLOCK],
    filled: usize,
) {
    let fused = filled == KDE_BLOCK && {
        let ux_lo = xr.iter().map(|r| r.0).min().unwrap();
        let ux_hi = xr.iter().map(|r| r.1).max().unwrap();
        let uy_lo = yr.iter().map(|r| r.0).min().unwrap();
        let uy_hi = yr.iter().map(|r| r.1).max().unwrap();
        let union_cells = (ux_hi - ux_lo + 1) * (uy_hi - uy_lo + 1);
        let own_cells: usize = xr
            .iter()
            .zip(yr)
            .map(|(&(xl, xh), &(yl, yh))| (xh - xl + 1) * (yh - yl + 1))
            .sum();
        // Fuse only while the union pass does at most ~2x the essential
        // cell updates; past that the padding lanes outweigh the saved
        // grid traffic and the per-point passes win.
        union_cells * KDE_BLOCK <= 2 * own_cells
    };
    if fused {
        let ux_lo = xr.iter().map(|r| r.0).min().unwrap();
        let ux_hi = xr.iter().map(|r| r.1).max().unwrap();
        let uy_lo = yr.iter().map(|r| r.0).min().unwrap();
        let uy_hi = yr.iter().map(|r| r.1).max().unwrap();
        let xs: [&[f64]; KDE_BLOCK] =
            std::array::from_fn(|b| &kx[b * n + ux_lo..b * n + ux_hi + 1]);
        for iy in uy_lo..=uy_hi {
            let cs: [f64; KDE_BLOCK] = std::array::from_fn(|b| ky[b * n + iy]);
            simd::axpy8(&cs, &xs, &mut values[iy * n + ux_lo..iy * n + ux_hi + 1]);
        }
    } else {
        for b in 0..filled {
            let (x_lo, x_hi) = xr[b];
            let (y_lo, y_hi) = yr[b];
            let col = &kx[b * n + x_lo..b * n + x_hi + 1];
            for iy in y_lo..=y_hi {
                simd::axpy_inplace(
                    ky[b * n + iy],
                    col,
                    &mut values[iy * n + x_lo..iy * n + x_hi + 1],
                );
            }
        }
    }
}

/// Re-zero exactly the written support ranges so the next block again sees
/// all-zero scratch (the `+0.0`-padding invariant).
fn clear_columns(
    scratch: &mut [f64],
    n: usize,
    ranges: &[(usize, usize); KDE_BLOCK],
    filled: usize,
) {
    for (b, &(lo, hi)) in ranges.iter().enumerate().take(filled) {
        scratch[b * n + lo..b * n + hi + 1].fill(0.0);
    }
}

/// Inclusive index range `[lo, hi]` of grid coordinates within the truncated
/// kernel support around `center`; may be empty (`lo > hi`).
///
/// A non-finite `center` has no meaningful support and yields the empty
/// range. (NaN used to sail through the comparisons below — both bounds
/// compare false — and come out as the non-empty range `[0, 0]`, so one
/// NaN coordinate deposited a NaN kernel column into the grid corner and
/// poisoned every downstream consumer of the estimate.)
pub(crate) fn support_range(
    center: f64,
    h: f64,
    origin: f64,
    step: f64,
    n: usize,
) -> (usize, usize) {
    if !center.is_finite() {
        return (1, 0);
    }
    let lo_f = ((center - TRUNC_SIGMAS * h - origin) / step).ceil();
    let hi_f = ((center + TRUNC_SIGMAS * h - origin) / step).floor();
    // A support entirely off either side of the grid contributes nothing.
    // (An earlier version clamped `lo` onto the last grid index, so a
    // point beyond the grid's right edge deposited a spurious kernel
    // column on the border — invisible only when the kernel underflowed.)
    if hi_f < 0.0 || lo_f > (n - 1) as f64 {
        return (1, 0);
    }
    let lo = lo_f.max(0.0) as usize;
    let hi = (hi_f as usize).min(n - 1);
    (lo, hi)
}

/// Exact KDE value at one arbitrary location (no truncation).
pub fn density_at(points: &[[f64; 2]], bw: Bandwidth2D, x: f64, y: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let s: f64 = points
        .iter()
        .map(|p| gaussian_kernel(x - p[0], bw.hx) * gaussian_kernel(y - p[1], bw.hy))
        .sum();
    s / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(h: f64) -> Bandwidth2D {
        Bandwidth2D { hx: h, hy: h }
    }

    #[test]
    fn grid_matches_pointwise_evaluation() {
        let pts = vec![[0.0, 0.0], [1.0, 0.5], [-0.5, 0.25], [0.2, -0.8]];
        let spec = GridSpec::covering(&pts, &[], 0.3, 11);
        let g = estimate_grid(&pts, bw(0.4), spec);
        for iy in 0..spec.n {
            for ix in 0..spec.n {
                let [x, y] = spec.point(ix, iy);
                let exact = density_at(&pts, bw(0.4), x, y);
                assert!(
                    (g.at(ix, iy) - exact).abs() < 1e-9,
                    "grid mismatch at ({ix},{iy}): {} vs {exact}",
                    g.at(ix, iy)
                );
            }
        }
    }

    #[test]
    fn density_peaks_near_data() {
        let pts = vec![[0.0, 0.0]; 10];
        let b = bw(0.3);
        assert!(density_at(&pts, b, 0.0, 0.0) > density_at(&pts, b, 1.0, 1.0));
    }

    #[test]
    fn empty_points_zero_density() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 3,
        };
        let g = estimate_grid(&[], bw(1.0), spec);
        assert!(g.values().iter().all(|&v| v == 0.0));
        assert_eq!(density_at(&[], bw(1.0), 0.0, 0.0), 0.0);
    }

    #[test]
    fn grid_integral_close_to_one() {
        // Cluster well inside a generous grid: mass should be ≈ 1.
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                [0.3 * t.cos(), 0.3 * t.sin()]
            })
            .collect();
        let b = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 3.0, 101);
        let g = estimate_grid(&pts, b, spec);
        let integral = g.integral();
        assert!(
            (integral - 1.0).abs() < 0.02,
            "density should integrate to ~1, got {integral}"
        );
    }

    #[test]
    fn truncation_is_visually_lossless() {
        let pts = vec![[0.0, 0.0], [3.0, 3.0]];
        let spec = GridSpec::covering(&pts, &[], 0.2, 21);
        let g = estimate_grid(&pts, bw(0.5), spec);
        let mut max_err: f64 = 0.0;
        for iy in 0..spec.n {
            for ix in 0..spec.n {
                let [x, y] = spec.point(ix, iy);
                max_err = max_err.max((g.at(ix, iy) - density_at(&pts, bw(0.5), x, y)).abs());
            }
        }
        assert!(max_err < 1e-8, "truncation error {max_err}");
    }

    #[test]
    fn far_away_point_contributes_nothing() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 0.1,
            dy: 0.1,
            n: 11,
        };
        let g = estimate_grid(&[[1000.0, 1000.0]], bw(0.5), spec);
        assert!(g.max() < 1e-12);
    }

    #[test]
    fn point_just_beyond_the_grid_contributes_exactly_nothing() {
        // Regression: a point whose truncated support lies entirely beyond
        // the grid's right (or top) edge used to deposit a spurious kernel
        // column on the border grid line, because the support's low index
        // was clamped onto the grid instead of skipping the point. The
        // old `far_away_point_contributes_nothing` test missed it only
        // because at 1000 units the kernel underflows; at ~7 bandwidths
        // the spurious contribution would be ≈ 1e-10 — visible.
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 0.1,
            dy: 0.1,
            n: 11,
        };
        for p in [
            [7.5, 0.5],  // right of the grid
            [0.5, 7.5],  // above the grid
            [-7.0, 0.5], // left of the grid
            [0.5, -7.0], // below the grid
            [7.5, 7.5],  // beyond the corner
        ] {
            let g = estimate_grid(&[p], bw(1.0), spec);
            assert_eq!(
                g.max(),
                0.0,
                "off-grid point {p:?} must contribute exactly nothing"
            );
        }
        // A point whose support straddles the border still contributes.
        let g = estimate_grid(&[[1.2, 0.5]], bw(1.0), spec);
        assert!(g.max() > 0.0);
    }

    /// The pre-SIMD spec loop: one point at a time, scalar
    /// `gaussian_kernel` per cell, scalar row accumulation.
    fn reference_grid(points: &[[f64; 2]], bw: Bandwidth2D, spec: GridSpec) -> Vec<f64> {
        let n = spec.n;
        let mut values = vec![0.0; n * n];
        let mut finite = 0usize;
        for p in points {
            if !(p[0].is_finite() && p[1].is_finite()) {
                continue;
            }
            finite += 1;
            let (x_lo, x_hi) = support_range(p[0], bw.hx, spec.x0, spec.dx, n);
            let (y_lo, y_hi) = support_range(p[1], bw.hy, spec.y0, spec.dy, n);
            if x_lo > x_hi || y_lo > y_hi {
                continue;
            }
            let mut kx = vec![0.0; n];
            for (ix, k) in kx.iter_mut().enumerate().take(x_hi + 1).skip(x_lo) {
                let gx = spec.x0 + ix as f64 * spec.dx;
                *k = gaussian_kernel(gx - p[0], bw.hx);
            }
            for iy in y_lo..=y_hi {
                let gy = spec.y0 + iy as f64 * spec.dy;
                let kyv = gaussian_kernel(gy - p[1], bw.hy);
                let row = &mut values[iy * n..(iy + 1) * n];
                for ix in x_lo..=x_hi {
                    row[ix] += kx[ix] * kyv;
                }
            }
        }
        let inv_n = 1.0 / finite as f64;
        for v in &mut values {
            *v *= inv_n;
        }
        values
    }

    #[test]
    fn blocked_simd_grid_is_bit_identical_to_the_scalar_spec_loop() {
        // Deliberately not a multiple of the 8-point block: exercises the
        // partial-tail flush path too. Mix of overlapping and disjoint
        // supports so the union-range padding actually pads.
        let pts: Vec<[f64; 2]> = (0..53)
            .map(|i| {
                let a = i as f64 * 0.7;
                let c = if i % 3 == 0 { 4.0 } else { 0.0 };
                [c + a.sin(), c + (a * 1.3).cos()]
            })
            .collect();
        let spec = GridSpec::covering(&pts, &[], 0.3, 33);
        for h in [0.05, 0.4, 2.0] {
            let g = estimate_grid(&pts, bw(h), spec);
            let want = reference_grid(&pts, bw(h), spec);
            for (i, (a, b)) in g.values().iter().zip(&want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "h={h}, cell {i}: {a} vs {b} — SIMD path must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn nan_point_is_skipped_not_smeared_across_the_grid() {
        // Regression: `support_range` let a NaN center through as the
        // range [0, 0], so one NaN coordinate deposited a NaN kernel
        // column into the grid corner. The contract now: non-finite
        // points are skipped, everything else lands exactly as if the
        // poisoned points were never in the set.
        let clean = vec![[0.0, 0.0], [1.0, 0.5], [-0.5, 0.25], [0.2, -0.8]];
        let spec = GridSpec::covering(&clean, &[], 0.3, 11);
        let want = estimate_grid(&clean, bw(0.4), spec);
        for poison in [
            [f64::NAN, 0.3],
            [0.3, f64::NAN],
            [f64::NAN, f64::NAN],
            [f64::INFINITY, 0.3],
            [0.3, f64::NEG_INFINITY],
        ] {
            let mut pts = clean.clone();
            pts.insert(2, poison);
            let g = estimate_grid(&pts, bw(0.4), spec);
            assert!(
                g.values().iter().all(|v| v.is_finite()),
                "poison {poison:?} must not reach the grid"
            );
            for (i, (a, b)) in g.values().iter().zip(want.values()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "poison {poison:?}, cell {i}: grid must equal the finite subset's"
                );
            }
        }
        // All points poisoned: a well-defined all-zero grid, not NaN/NaN.
        let g = estimate_grid(&[[f64::NAN, f64::NAN]], bw(0.4), spec);
        assert!(g.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn two_separated_clusters_two_peaks() {
        let mut pts = Vec::new();
        for i in 0..30 {
            let o = (i % 5) as f64 * 0.02;
            pts.push([0.0 + o, 0.0 + o]);
            pts.push([5.0 + o, 5.0 + o]);
        }
        let spec = GridSpec::covering(&pts, &[], 0.2, 41);
        let g = estimate_grid(&pts, bw(0.3), spec);
        let near_a = g.interpolate(0.05, 0.05);
        let near_b = g.interpolate(5.05, 5.05);
        let mid = g.interpolate(2.5, 2.5);
        assert!(near_a > 10.0 * mid && near_b > 10.0 * mid);
    }
}
