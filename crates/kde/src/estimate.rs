//! KDE evaluation over grids and at arbitrary locations.
//!
//! Equation (1) of the paper: `f(x) = (1/N) Σᵢ K_h(x − xᵢ)`, with the 2-D
//! product Gaussian kernel. Grid evaluation exploits separability: for each
//! data point the x-axis kernel column and y-axis kernel row are computed
//! once (`O(p)` each) and their outer product is accumulated (`O(p²)` only
//! over the kernel's support), with the kernel truncated at `TRUNC_SIGMAS`
//! standard deviations — a standard, visually lossless optimization.

use crate::grid::{DensityGrid, GridSpec};
use crate::kernel::{gaussian_kernel, Bandwidth2D};
use hinn_par::{map_reduce_chunks, Parallelism};

/// Gaussian kernel support truncation, in bandwidth units. Beyond 6σ the
/// kernel value is below 6e-9 of the peak — invisible in any profile.
const TRUNC_SIGMAS: f64 = 6.0;

/// Evaluate the KDE of `points` on every grid point of `spec`.
///
/// Returns a [`DensityGrid`]; an empty point set yields an all-zero grid.
pub fn estimate_grid(points: &[[f64; 2]], bw: Bandwidth2D, spec: GridSpec) -> DensityGrid {
    estimate_grid_with(Parallelism::serial(), points, bw, spec)
}

/// [`estimate_grid`] with an explicit thread budget. Each fixed chunk of
/// data points accumulates its own partial `p × p` grid; the partial grids
/// merge elementwise in chunk order, so the result is bit-identical for
/// every budget. Transient memory is `O(⌈N/CHUNK⌉ · p²)` during a parallel
/// run (one partial grid per chunk); partial grids and kernel scratch are
/// drawn from the thread-local [`hinn_cache::pool`], so steady-state
/// serving does not allocate here.
pub fn estimate_grid_with(
    par: Parallelism,
    points: &[[f64; 2]],
    bw: Bandwidth2D,
    spec: GridSpec,
) -> DensityGrid {
    let _span = hinn_obs::span!("kde.estimate_grid");
    let n = spec.n;
    if points.is_empty() {
        return DensityGrid::new(spec, vec![0.0; n * n]);
    }
    if hinn_obs::enabled() {
        hinn_obs::counter("kde.points_scanned", points.len() as u64);
        hinn_obs::counter("kde.grid_cells", (n * n) as u64);
    }
    let inv_n = 1.0 / points.len() as f64;
    let mut values = map_reduce_chunks(
        par,
        points.len(),
        |r| accumulate_grid_chunk(&points[r], bw, spec),
        vec![0.0; n * n],
        |mut acc, part| {
            for (a, b) in acc.iter_mut().zip(part.iter()) {
                *a += b;
            }
            acc
        },
    );
    for v in &mut values {
        *v *= inv_n;
    }
    DensityGrid::new(spec, values)
}

/// Un-normalized kernel-sum grid of one chunk of points. The returned
/// buffer (and the kernel scratch) comes from the thread-local pool; it
/// starts all-zero, exactly like a fresh allocation.
#[allow(clippy::needless_range_loop)] // index loops mirror the grid math
fn accumulate_grid_chunk(
    points: &[[f64; 2]],
    bw: Bandwidth2D,
    spec: GridSpec,
) -> hinn_cache::PooledF64 {
    let n = spec.n;
    let mut values = hinn_cache::PooledF64::take_zeroed(n * n);
    let mut kx = hinn_cache::PooledF64::take_zeroed(n);
    let mut ky = hinn_cache::PooledF64::take_zeroed(n);
    for p in points {
        // Index range of grid points within the truncated support.
        let (x_lo, x_hi) = support_range(p[0], bw.hx, spec.x0, spec.dx, n);
        let (y_lo, y_hi) = support_range(p[1], bw.hy, spec.y0, spec.dy, n);
        if x_lo > x_hi || y_lo > y_hi {
            continue;
        }
        for ix in x_lo..=x_hi {
            let gx = spec.x0 + ix as f64 * spec.dx;
            kx[ix] = gaussian_kernel(gx - p[0], bw.hx);
        }
        for iy in y_lo..=y_hi {
            let gy = spec.y0 + iy as f64 * spec.dy;
            ky[iy] = gaussian_kernel(gy - p[1], bw.hy);
        }
        for iy in y_lo..=y_hi {
            let row = &mut values[iy * n..(iy + 1) * n];
            let kyv = ky[iy];
            for ix in x_lo..=x_hi {
                row[ix] += kx[ix] * kyv;
            }
        }
    }
    values
}

/// Inclusive index range `[lo, hi]` of grid coordinates within the truncated
/// kernel support around `center`; may be empty (`lo > hi`).
fn support_range(center: f64, h: f64, origin: f64, step: f64, n: usize) -> (usize, usize) {
    let lo_f = ((center - TRUNC_SIGMAS * h - origin) / step).ceil();
    let hi_f = ((center + TRUNC_SIGMAS * h - origin) / step).floor();
    // A support entirely off either side of the grid contributes nothing.
    // (An earlier version clamped `lo` onto the last grid index, so a
    // point beyond the grid's right edge deposited a spurious kernel
    // column on the border — invisible only when the kernel underflowed.)
    if hi_f < 0.0 || lo_f > (n - 1) as f64 {
        return (1, 0);
    }
    let lo = lo_f.max(0.0) as usize;
    let hi = (hi_f as usize).min(n - 1);
    (lo, hi)
}

/// Exact KDE value at one arbitrary location (no truncation).
pub fn density_at(points: &[[f64; 2]], bw: Bandwidth2D, x: f64, y: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let s: f64 = points
        .iter()
        .map(|p| gaussian_kernel(x - p[0], bw.hx) * gaussian_kernel(y - p[1], bw.hy))
        .sum();
    s / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(h: f64) -> Bandwidth2D {
        Bandwidth2D { hx: h, hy: h }
    }

    #[test]
    fn grid_matches_pointwise_evaluation() {
        let pts = vec![[0.0, 0.0], [1.0, 0.5], [-0.5, 0.25], [0.2, -0.8]];
        let spec = GridSpec::covering(&pts, &[], 0.3, 11);
        let g = estimate_grid(&pts, bw(0.4), spec);
        for iy in 0..spec.n {
            for ix in 0..spec.n {
                let [x, y] = spec.point(ix, iy);
                let exact = density_at(&pts, bw(0.4), x, y);
                assert!(
                    (g.at(ix, iy) - exact).abs() < 1e-9,
                    "grid mismatch at ({ix},{iy}): {} vs {exact}",
                    g.at(ix, iy)
                );
            }
        }
    }

    #[test]
    fn density_peaks_near_data() {
        let pts = vec![[0.0, 0.0]; 10];
        let b = bw(0.3);
        assert!(density_at(&pts, b, 0.0, 0.0) > density_at(&pts, b, 1.0, 1.0));
    }

    #[test]
    fn empty_points_zero_density() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 3,
        };
        let g = estimate_grid(&[], bw(1.0), spec);
        assert!(g.values().iter().all(|&v| v == 0.0));
        assert_eq!(density_at(&[], bw(1.0), 0.0, 0.0), 0.0);
    }

    #[test]
    fn grid_integral_close_to_one() {
        // Cluster well inside a generous grid: mass should be ≈ 1.
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                [0.3 * t.cos(), 0.3 * t.sin()]
            })
            .collect();
        let b = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 3.0, 101);
        let g = estimate_grid(&pts, b, spec);
        let integral = g.integral();
        assert!(
            (integral - 1.0).abs() < 0.02,
            "density should integrate to ~1, got {integral}"
        );
    }

    #[test]
    fn truncation_is_visually_lossless() {
        let pts = vec![[0.0, 0.0], [3.0, 3.0]];
        let spec = GridSpec::covering(&pts, &[], 0.2, 21);
        let g = estimate_grid(&pts, bw(0.5), spec);
        let mut max_err: f64 = 0.0;
        for iy in 0..spec.n {
            for ix in 0..spec.n {
                let [x, y] = spec.point(ix, iy);
                max_err = max_err.max((g.at(ix, iy) - density_at(&pts, bw(0.5), x, y)).abs());
            }
        }
        assert!(max_err < 1e-8, "truncation error {max_err}");
    }

    #[test]
    fn far_away_point_contributes_nothing() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 0.1,
            dy: 0.1,
            n: 11,
        };
        let g = estimate_grid(&[[1000.0, 1000.0]], bw(0.5), spec);
        assert!(g.max() < 1e-12);
    }

    #[test]
    fn point_just_beyond_the_grid_contributes_exactly_nothing() {
        // Regression: a point whose truncated support lies entirely beyond
        // the grid's right (or top) edge used to deposit a spurious kernel
        // column on the border grid line, because the support's low index
        // was clamped onto the grid instead of skipping the point. The
        // old `far_away_point_contributes_nothing` test missed it only
        // because at 1000 units the kernel underflows; at ~7 bandwidths
        // the spurious contribution would be ≈ 1e-10 — visible.
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 0.1,
            dy: 0.1,
            n: 11,
        };
        for p in [
            [7.5, 0.5],  // right of the grid
            [0.5, 7.5],  // above the grid
            [-7.0, 0.5], // left of the grid
            [0.5, -7.0], // below the grid
            [7.5, 7.5],  // beyond the corner
        ] {
            let g = estimate_grid(&[p], bw(1.0), spec);
            assert_eq!(
                g.max(),
                0.0,
                "off-grid point {p:?} must contribute exactly nothing"
            );
        }
        // A point whose support straddles the border still contributes.
        let g = estimate_grid(&[[1.2, 0.5]], bw(1.0), spec);
        assert!(g.max() > 0.0);
    }

    #[test]
    fn two_separated_clusters_two_peaks() {
        let mut pts = Vec::new();
        for i in 0..30 {
            let o = (i % 5) as f64 * 0.02;
            pts.push([0.0 + o, 0.0 + o]);
            pts.push([5.0 + o, 5.0 + o]);
        }
        let spec = GridSpec::covering(&pts, &[], 0.2, 41);
        let g = estimate_grid(&pts, bw(0.3), spec);
        let near_a = g.interpolate(0.05, 0.05);
        let near_b = g.interpolate(5.05, 5.05);
        let mid = g.interpolate(2.5, 2.5);
        assert!(near_a > 10.0 * mid && near_b > 10.0 * mid);
    }
}
