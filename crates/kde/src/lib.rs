//! Kernel density estimation and density connectivity for `hinn`.
//!
//! The paper's interactive loop shows the user a **visual profile** of each
//! 2-D query-centered projection: the kernel density estimate of the
//! projected data evaluated on a `p × p` grid (Fig. 5), optionally with a
//! *lateral density plot* — a scatter of fictitious points sampled in
//! proportion to the density (§2.2). The user's density separator `τ` then
//! selects the set of points **density-connected** to the query point
//! (Def. 2.1), which the system approximates on the grid by flood-filling
//! elementary rectangles whose corners clear the noise threshold
//! (Def. 2.2).
//!
//! This crate provides all of that machinery:
//!
//! * [`kernel`] — the Gaussian kernel and Silverman's bandwidth rule
//!   (`h = 1.06 · σ · N^(−1/5)`, the formula quoted in §2.2),
//! * [`grid`] — the `p × p` evaluation grid and the [`grid::DensityGrid`],
//! * [`estimate`] — KDE evaluation over a grid or at arbitrary points,
//! * [`connect`] — Def. 2.2 grid flood-fill with configurable corner rules,
//! * [`lateral`] — lateral density plots (density-proportional sampling),
//! * [`profile`] — [`profile::VisualProfile`], the packaged "what the user
//!   sees" object consumed by both the search core and the user models.

pub mod adaptive;
pub mod connect;
pub mod contour;
pub mod error;
pub mod estimate;
pub mod grid;
pub mod kernel;
pub mod lateral;
pub mod marginal;
pub mod polygon;
pub mod profile;

pub use adaptive::{
    adaptive_bandwidths, adaptive_bandwidths_with, estimate_grid_adaptive,
    estimate_grid_adaptive_with, AdaptiveBandwidths,
};
pub use connect::{connected_cells, CornerRule};
pub use contour::{extract_contours, query_contour};
pub use error::KdeError;
pub use estimate::{density_at, estimate_grid, estimate_grid_with};
pub use grid::{DensityGrid, GridSpec};
pub use hinn_par::Parallelism;
pub use kernel::{gaussian_kernel, silverman_bandwidth, silverman_bandwidth_checked, Bandwidth2D};
pub use marginal::MarginalProfile;
pub use profile::{ProfileNotes, VisualProfile};
