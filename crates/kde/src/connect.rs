//! Grid-based density connectivity (Definitions 2.1 / 2.2 of the paper).
//!
//! A data point is *density connected* to the query `Q` at noise threshold
//! `τ` if a path of density ≥ τ joins them (Def. 2.1). The paper
//! approximates this on the evaluation grid: an elementary rectangle belongs
//! to `R(τ, Q)` iff it is joined to `Q`'s rectangle by a chain of *adjacent*
//! (side-sharing) rectangles, each having **at least three corners** with
//! density above `τ` (Def. 2.2). A breadth-first flood fill from `Q`'s
//! rectangle computes `R(τ, Q)` exactly.
//!
//! The ≥3-corners rule is one point in a design space; [`CornerRule`] also
//! exposes stricter/looser variants for the ablation experiments.

use crate::grid::DensityGrid;
use std::collections::VecDeque;

/// Which corner predicate qualifies an elementary rectangle as "dense".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CornerRule {
    /// Paper's Def. 2.2: at least 3 of 4 corners above `τ`.
    AtLeastThree,
    /// Strict variant: all 4 corners above `τ`.
    AllFour,
    /// Loose variant: any corner above `τ`.
    AnyOne,
    /// At least 2 of 4 corners above `τ`.
    AtLeastTwo,
}

impl CornerRule {
    /// Does a rectangle with the given corner densities qualify at `τ`?
    #[inline]
    pub fn qualifies(self, corners: [f64; 4], tau: f64) -> bool {
        let k = corners.iter().filter(|&&c| c > tau).count();
        match self {
            CornerRule::AtLeastThree => k >= 3,
            CornerRule::AllFour => k == 4,
            CornerRule::AnyOne => k >= 1,
            CornerRule::AtLeastTwo => k >= 2,
        }
    }
}

/// Boolean mask over elementary rectangles, row-major
/// (`cy * cells_per_axis + cx`), marking membership in `R(τ, Q)`.
#[derive(Clone, Debug)]
pub struct CellMask {
    /// Rectangles per axis.
    pub cells_per_axis: usize,
    mask: Vec<bool>,
}

impl CellMask {
    /// Is rectangle `(cx, cy)` in the connected set?
    #[inline]
    pub fn contains(&self, cx: usize, cy: usize) -> bool {
        self.mask[cy * self.cells_per_axis + cx]
    }

    /// Number of rectangles in the connected set.
    pub fn count(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Iterate over `(cx, cy)` of member rectangles.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.cells_per_axis;
        self.mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| (i % m, i / m))
    }
}

/// Compute `R(τ, Q)`: the rectangles density-connected to the one containing
/// the query (Def. 2.2), via BFS over side-adjacent qualifying rectangles.
///
/// If the query's own rectangle does not qualify, the result is empty — the
/// query sits in a region below the noise threshold and nothing is selected
/// (the "user dismisses this view" situation of §2.2).
pub fn connected_cells(
    grid: &DensityGrid,
    tau: f64,
    query_cell: (usize, usize),
    rule: CornerRule,
) -> CellMask {
    let _span = hinn_obs::span!("kde.connect");
    hinn_obs::counter("kde.connect_calls", 1);
    let m = grid.spec.cells_per_axis();
    let mut mask = vec![false; m * m];
    let (qx, qy) = query_cell;
    assert!(
        qx < m && qy < m,
        "connected_cells: query cell out of bounds"
    );

    let qualifies = |cx: usize, cy: usize| rule.qualifies(grid.cell_corners(cx, cy), tau);

    if !qualifies(qx, qy) {
        hinn_obs::counter("kde.cells_visited", 1);
        return CellMask {
            cells_per_axis: m,
            mask,
        };
    }
    let mut queue = VecDeque::new();
    mask[qy * m + qx] = true;
    queue.push_back((qx, qy));
    while let Some((cx, cy)) = queue.pop_front() {
        let visit =
            |nx: usize, ny: usize, mask: &mut Vec<bool>, queue: &mut VecDeque<(usize, usize)>| {
                if !mask[ny * m + nx] && qualifies(nx, ny) {
                    mask[ny * m + nx] = true;
                    queue.push_back((nx, ny));
                }
            };
        if cx > 0 {
            visit(cx - 1, cy, &mut mask, &mut queue);
        }
        if cx + 1 < m {
            visit(cx + 1, cy, &mut mask, &mut queue);
        }
        if cy > 0 {
            visit(cx, cy - 1, &mut mask, &mut queue);
        }
        if cy + 1 < m {
            visit(cx, cy + 1, &mut mask, &mut queue);
        }
    }
    if hinn_obs::enabled() {
        let selected = mask.iter().filter(|&&b| b).count() as u64;
        hinn_obs::counter("kde.cells_visited", selected);
        hinn_obs::counter("kde.cells_selected", selected);
    }
    CellMask {
        cells_per_axis: m,
        mask,
    }
}

/// Indices of the 2-D `points` that fall inside rectangles of `mask`.
/// Points outside the grid are never selected.
pub fn points_in_mask(points: &[[f64; 2]], grid: &DensityGrid, mask: &CellMask) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            grid.spec
                .cell_of(p[0], p[1])
                .filter(|&(cx, cy)| mask.contains(cx, cy))
                .map(|_| i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DensityGrid, GridSpec};

    /// 5×5 grid points (4×4 cells), unit spacing, with a dense 2×2-cell
    /// block of grid points in the lower-left and another dense point block
    /// in the upper-right, separated by a zero-density moat.
    fn two_island_grid() -> DensityGrid {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 5,
        };
        let mut v = vec![0.0; 25];
        // Lower-left island: grid points (0..=2, 0..=2).
        for iy in 0..=2usize {
            for ix in 0..=2usize {
                v[iy * 5 + ix] = 10.0;
            }
        }
        // Upper-right island: grid points (4, 4) neighborhood.
        v[4 * 5 + 4] = 10.0;
        v[4 * 5 + 3] = 10.0;
        v[3 * 5 + 4] = 10.0;
        v[3 * 5 + 3] = 10.0;
        DensityGrid::new(spec, v)
    }

    #[test]
    fn corner_rules() {
        let c = [5.0, 5.0, 5.0, 0.0];
        assert!(CornerRule::AtLeastThree.qualifies(c, 1.0));
        assert!(!CornerRule::AllFour.qualifies(c, 1.0));
        assert!(CornerRule::AnyOne.qualifies([5.0, 0.0, 0.0, 0.0], 1.0));
        assert!(CornerRule::AtLeastTwo.qualifies([5.0, 5.0, 0.0, 0.0], 1.0));
        assert!(!CornerRule::AtLeastTwo.qualifies([5.0, 0.0, 0.0, 0.0], 1.0));
        // Threshold is strict (> τ).
        assert!(!CornerRule::AnyOne.qualifies([1.0, 1.0, 1.0, 1.0], 1.0));
    }

    #[test]
    fn flood_fill_stays_on_query_island() {
        let g = two_island_grid();
        // Query in cell (0,0) — on the lower-left island.
        let mask = connected_cells(&g, 1.0, (0, 0), CornerRule::AllFour);
        // Lower-left island cells with all 4 corners dense: (0..2, 0..2).
        assert!(mask.contains(0, 0));
        assert!(mask.contains(1, 1));
        assert!(!mask.contains(3, 3), "other island must not be reached");
        assert_eq!(mask.count(), 4);
    }

    #[test]
    fn other_island_reachable_from_its_own_query() {
        let g = two_island_grid();
        let mask = connected_cells(&g, 1.0, (3, 3), CornerRule::AllFour);
        assert!(mask.contains(3, 3));
        assert!(!mask.contains(0, 0));
        assert_eq!(mask.count(), 1);
    }

    #[test]
    fn query_below_threshold_selects_nothing() {
        let g = two_island_grid();
        // Cell (2,2) corners: (2,2)=10 but (3,2),(2,3),(3,3)=0 → only 1 corner.
        let mask = connected_cells(&g, 1.0, (2, 2), CornerRule::AtLeastThree);
        assert_eq!(mask.count(), 0);
    }

    #[test]
    fn at_least_three_extends_over_fringe() {
        let g = two_island_grid();
        // Cell (2,0): corners (2,0)=10,(3,0)=0,(2,1)=10,(3,1)=0 → 2 corners.
        // With AtLeastTwo it belongs; with AtLeastThree it does not.
        let loose = connected_cells(&g, 1.0, (0, 0), CornerRule::AtLeastTwo);
        let tight = connected_cells(&g, 1.0, (0, 0), CornerRule::AtLeastThree);
        assert!(loose.count() > tight.count());
        assert!(loose.contains(2, 0));
        assert!(!tight.contains(2, 0));
    }

    #[test]
    fn tau_zero_spans_everything_dense() {
        // All grid points positive → every cell qualifies at τ=0 (strict >).
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 3,
        };
        let g = DensityGrid::new(spec, vec![0.5; 9]);
        let mask = connected_cells(&g, 0.0, (0, 0), CornerRule::AtLeastThree);
        assert_eq!(mask.count(), 4);
    }

    #[test]
    fn very_high_tau_selects_nothing() {
        let g = two_island_grid();
        let mask = connected_cells(&g, 1e9, (0, 0), CornerRule::AnyOne);
        assert_eq!(mask.count(), 0);
    }

    #[test]
    fn monotone_in_tau() {
        let g = two_island_grid();
        let lo = connected_cells(&g, 0.5, (0, 0), CornerRule::AtLeastThree);
        let hi = connected_cells(&g, 9.0, (0, 0), CornerRule::AtLeastThree);
        // Raising τ (below the island's density) can only shrink the set.
        assert!(hi.count() <= lo.count());
        for (cx, cy) in hi.iter_cells() {
            assert!(lo.contains(cx, cy));
        }
    }

    #[test]
    fn points_in_mask_selects_members_only() {
        let g = two_island_grid();
        let mask = connected_cells(&g, 1.0, (0, 0), CornerRule::AllFour);
        let pts = vec![
            [0.5, 0.5],   // inside island cell (0,0)
            [1.5, 1.5],   // inside island cell (1,1)
            [3.5, 3.5],   // other island
            [2.5, 0.5],   // moat
            [-5.0, -5.0], // off-grid
        ];
        let selected = points_in_mask(&pts, &g, &mask);
        assert_eq!(selected, vec![0, 1]);
    }

    #[test]
    fn iter_cells_matches_contains() {
        let g = two_island_grid();
        let mask = connected_cells(&g, 1.0, (0, 0), CornerRule::AtLeastThree);
        let listed: Vec<_> = mask.iter_cells().collect();
        assert_eq!(listed.len(), mask.count());
        for (cx, cy) in listed {
            assert!(mask.contains(cx, cy));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_query_cell_panics() {
        let g = two_island_grid();
        connected_cells(&g, 1.0, (9, 0), CornerRule::AnyOne);
    }

    /// 6×6 grid points (5×5 cells) with a dense band hugging the grid's
    /// right edge: grid points (4..=5, 1..=4) are dense, everything else
    /// is zero. The cluster *touches the border* of the grid.
    fn edge_hugging_grid() -> DensityGrid {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 6,
        };
        let mut v = vec![0.0; 36];
        for iy in 1..=4usize {
            for ix in 4..=5usize {
                v[iy * 6 + ix] = 10.0;
            }
        }
        DensityGrid::new(spec, v)
    }

    #[test]
    fn border_cells_apply_the_same_corner_rule() {
        // Regression (Def. 2.2 edge case): rectangles in the grid's last
        // column/row must qualify by the identical ≥3-corners rule, not be
        // skipped or auto-included because they touch the boundary. The
        // rightmost cell column (cx = 4) of this grid has all 4 corners on
        // dense grid points for cy ∈ {1..=3}, so a BFS started there must
        // include them — and must NOT walk past the border.
        let g = edge_hugging_grid();
        let mask = connected_cells(&g, 1.0, (4, 2), CornerRule::AtLeastThree);
        // Interior of the dense band, flush against the border:
        assert!(mask.contains(4, 1));
        assert!(mask.contains(4, 2));
        assert!(mask.contains(4, 3));
        // Fringe cells above/below the band have exactly 2 dense corners
        // ((4,1)&(5,1) or (4,4)&(5,4)) → excluded under ≥3.
        assert!(!mask.contains(4, 0));
        assert!(!mask.contains(4, 4));
        // Cells one column inland (cx = 3) also have exactly 2 dense
        // corners (the two on the ix = 4 grid line) → excluded.
        assert!(!mask.contains(3, 2));
        assert_eq!(mask.count(), 3);
        // Under ≥2 the fringe joins, still without leaving the grid.
        let loose = connected_cells(&g, 1.0, (4, 2), CornerRule::AtLeastTwo);
        assert!(loose.contains(4, 0) && loose.contains(4, 4));
        assert!(loose.contains(3, 2));
        assert!(loose.count() > mask.count());
    }

    /// Reference implementation: qualify every cell independently, then
    /// flood-fill with a plain visited set — no shared code with
    /// `connected_cells`.
    fn reference_connected(
        grid: &DensityGrid,
        tau: f64,
        query: (usize, usize),
        rule: CornerRule,
    ) -> Vec<(usize, usize)> {
        let m = grid.spec.cells_per_axis();
        let dense: Vec<bool> = (0..m * m)
            .map(|i| {
                let (cx, cy) = (i % m, i / m);
                let c = grid.cell_corners(cx, cy);
                rule.qualifies(c, tau)
            })
            .collect();
        let mut member = vec![false; m * m];
        if dense[query.1 * m + query.0] {
            member[query.1 * m + query.0] = true;
            // Iterate to fixpoint: a cell joins if dense and side-adjacent
            // to a member. O((m²)²) but trivially correct.
            loop {
                let mut changed = false;
                for cy in 0..m {
                    for cx in 0..m {
                        if member[cy * m + cx] || !dense[cy * m + cx] {
                            continue;
                        }
                        let near = (cx > 0 && member[cy * m + cx - 1])
                            || (cx + 1 < m && member[cy * m + cx + 1])
                            || (cy > 0 && member[(cy - 1) * m + cx])
                            || (cy + 1 < m && member[(cy + 1) * m + cx]);
                        if near {
                            member[cy * m + cx] = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        (0..m * m)
            .filter(|&i| member[i])
            .map(|i| (i % m, i / m))
            .collect()
    }

    #[test]
    fn bfs_matches_independent_reference_flood_fill() {
        let rules = [
            CornerRule::AtLeastThree,
            CornerRule::AllFour,
            CornerRule::AnyOne,
            CornerRule::AtLeastTwo,
        ];
        for g in [two_island_grid(), edge_hugging_grid()] {
            let m = g.spec.cells_per_axis();
            for rule in rules {
                for tau in [0.0, 1.0, 9.0] {
                    for qy in 0..m {
                        for qx in 0..m {
                            let mask = connected_cells(&g, tau, (qx, qy), rule);
                            let want = reference_connected(&g, tau, (qx, qy), rule);
                            let got: Vec<_> = mask.iter_cells().collect();
                            assert_eq!(
                                got, want,
                                "mismatch at q=({qx},{qy}) τ={tau} rule={rule:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
