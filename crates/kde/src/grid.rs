//! The `p × p` evaluation grid and the densities computed on it.
//!
//! Fig. 5 of the paper: "Divide the 2-dimensional hyperplane for `E_proj`
//! into a `p × p` grid … compute kernel density on the `p²` grid points."
//! The **grid points** carry densities; the **elementary rectangles** (the
//! `(p−1) × (p−1)` cells between adjacent grid points) are the unit of the
//! density-connectivity flood fill of Def. 2.2.

/// Geometry of a regular 2-D evaluation grid: `n × n` grid points spanning
/// the rectangle `[x0, x0 + (n−1)·dx] × [y0, y0 + (n−1)·dy]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    /// x-coordinate of the first grid column.
    pub x0: f64,
    /// y-coordinate of the first grid row.
    pub y0: f64,
    /// Spacing between grid columns (> 0).
    pub dx: f64,
    /// Spacing between grid rows (> 0).
    pub dy: f64,
    /// Grid points per axis (the paper's `p`, ≥ 2).
    pub n: usize,
}

impl GridSpec {
    /// Build a grid covering `points` (plus `margin` in units of the data
    /// extent on each side) with `n` grid points per axis. The `extra`
    /// points (e.g. the query) are included in the bounding box.
    ///
    /// # Panics
    /// Panics if `n < 2` or if there are no points at all.
    pub fn covering(points: &[[f64; 2]], extra: &[[f64; 2]], margin: f64, n: usize) -> Self {
        assert!(n >= 2, "GridSpec: need at least 2 grid points per axis");
        assert!(
            !points.is_empty() || !extra.is_empty(),
            "GridSpec: no points to cover"
        );
        let mut xlo = f64::INFINITY;
        let mut xhi = f64::NEG_INFINITY;
        let mut ylo = f64::INFINITY;
        let mut yhi = f64::NEG_INFINITY;
        for p in points.iter().chain(extra) {
            xlo = xlo.min(p[0]);
            xhi = xhi.max(p[0]);
            ylo = ylo.min(p[1]);
            yhi = yhi.max(p[1]);
        }
        let xspan = (xhi - xlo).max(1e-9);
        let yspan = (yhi - ylo).max(1e-9);
        let x0 = xlo - margin * xspan;
        let y0 = ylo - margin * yspan;
        let dx = xspan * (1.0 + 2.0 * margin) / (n - 1) as f64;
        let dy = yspan * (1.0 + 2.0 * margin) / (n - 1) as f64;
        Self { x0, y0, dx, dy, n }
    }

    /// Fallible [`GridSpec::covering`]: typed errors instead of panics, and
    /// a defense against non-finite coordinates (which would silently
    /// produce a NaN-geometry grid). The `kde.grid` fault point (see
    /// `hinn-fault`) deterministically forces the collapsed-grid arm.
    /// On success the spec is bit-identical to [`GridSpec::covering`].
    pub fn try_covering(
        points: &[[f64; 2]],
        extra: &[[f64; 2]],
        margin: f64,
        n: usize,
    ) -> Result<Self, crate::error::KdeError> {
        use crate::error::KdeError;
        if n < 2 {
            return Err(KdeError::InvalidGrid { n });
        }
        if points.is_empty() && extra.is_empty() {
            return Err(KdeError::CollapsedGrid {
                why: "no points to cover",
            });
        }
        if hinn_fault::point("kde.grid") {
            return Err(KdeError::CollapsedGrid {
                why: "forced by fault point kde.grid",
            });
        }
        let finite = points
            .iter()
            .chain(extra)
            .all(|p| p[0].is_finite() && p[1].is_finite());
        if !finite || !margin.is_finite() {
            return Err(KdeError::CollapsedGrid {
                why: "non-finite coordinates",
            });
        }
        Ok(Self::covering(points, extra, margin, n))
    }

    /// Coordinates of grid point `(ix, iy)`.
    #[inline]
    pub fn point(&self, ix: usize, iy: usize) -> [f64; 2] {
        debug_assert!(ix < self.n && iy < self.n);
        [self.x0 + ix as f64 * self.dx, self.y0 + iy as f64 * self.dy]
    }

    /// Number of elementary rectangles per axis (`n − 1`).
    #[inline]
    pub fn cells_per_axis(&self) -> usize {
        self.n - 1
    }

    /// The elementary rectangle containing `(x, y)`, clamped to the grid, or
    /// `None` if the location falls outside the grid entirely.
    pub fn cell_of(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        let m = self.cells_per_axis() as f64;
        let fx = (x - self.x0) / self.dx;
        let fy = (y - self.y0) / self.dy;
        // Allow a hair of numerical slop at the outer edges.
        if fx < -1e-9 || fy < -1e-9 || fx > m + 1e-9 || fy > m + 1e-9 {
            return None;
        }
        let cx = (fx.floor().max(0.0) as usize).min(self.cells_per_axis() - 1);
        let cy = (fy.floor().max(0.0) as usize).min(self.cells_per_axis() - 1);
        Some((cx, cy))
    }

    /// Center coordinates of cell `(cx, cy)`.
    #[inline]
    pub fn cell_center(&self, cx: usize, cy: usize) -> [f64; 2] {
        [
            self.x0 + (cx as f64 + 0.5) * self.dx,
            self.y0 + (cy as f64 + 0.5) * self.dy,
        ]
    }

    /// Area of one elementary rectangle.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.dx * self.dy
    }
}

/// Kernel densities evaluated on every grid point of a [`GridSpec`].
#[derive(Clone, Debug)]
pub struct DensityGrid {
    /// Grid geometry.
    pub spec: GridSpec,
    /// Row-major density values: index `iy * n + ix`.
    values: Vec<f64>,
}

impl DensityGrid {
    /// Wrap precomputed values.
    ///
    /// # Panics
    /// Panics if `values.len() != spec.n²`.
    pub fn new(spec: GridSpec, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            spec.n * spec.n,
            "DensityGrid: value count must be n²"
        );
        Self { spec, values }
    }

    /// Density at grid point `(ix, iy)`.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.values[iy * self.spec.n + ix]
    }

    /// Flat row-major view of all grid-point densities.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Maximum density over the grid.
    pub fn max(&self) -> f64 {
        self.values.iter().fold(0.0, |m, &v| m.max(v))
    }

    /// Empirical quantile (`q ∈ [0,1]`) of the grid-point densities.
    /// NaN densities (impossible from this crate's estimators, possible
    /// through [`DensityGrid::new`]) sort by IEEE total order instead of
    /// panicking.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile: q must be in [0,1]");
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Densities at the four corners of cell `(cx, cy)`.
    #[inline]
    pub fn cell_corners(&self, cx: usize, cy: usize) -> [f64; 4] {
        [
            self.at(cx, cy),
            self.at(cx + 1, cy),
            self.at(cx, cy + 1),
            self.at(cx + 1, cy + 1),
        ]
    }

    /// Bilinear interpolation of the density at an arbitrary location,
    /// clamped to the grid bounds. This approximates "density at a data
    /// point" without a fresh KDE evaluation (used by Fig. 7's update rule).
    pub fn interpolate(&self, x: f64, y: f64) -> f64 {
        let s = &self.spec;
        let m = (s.n - 1) as f64;
        let fx = ((x - s.x0) / s.dx).clamp(0.0, m);
        let fy = ((y - s.y0) / s.dy).clamp(0.0, m);
        let ix = (fx.floor() as usize).min(s.n - 2);
        let iy = (fy.floor() as usize).min(s.n - 2);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v00 = self.at(ix, iy);
        let v10 = self.at(ix + 1, iy);
        let v01 = self.at(ix, iy + 1);
        let v11 = self.at(ix + 1, iy + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Approximate integral of the density over the grid (Riemann sum using
    /// cell-corner averages). Close to 1 when the grid covers the data with
    /// enough margin.
    pub fn integral(&self) -> f64 {
        let m = self.spec.cells_per_axis();
        let mut s = 0.0;
        for cy in 0..m {
            for cx in 0..m {
                let c = self.cell_corners(cx, cy);
                s += (c[0] + c[1] + c[2] + c[3]) / 4.0;
            }
        }
        s * self.spec.cell_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec3() -> GridSpec {
        GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 3,
        }
    }

    #[test]
    fn covering_includes_all_points() {
        let pts = [[0.0, 0.0], [10.0, 5.0], [-2.0, 3.0]];
        let spec = GridSpec::covering(&pts, &[[12.0, -1.0]], 0.1, 20);
        for p in pts.iter().chain(&[[12.0, -1.0]]) {
            assert!(
                spec.cell_of(p[0], p[1]).is_some(),
                "point {p:?} not covered"
            );
        }
    }

    #[test]
    fn covering_degenerate_single_point() {
        let spec = GridSpec::covering(&[[1.0, 1.0]], &[], 0.1, 5);
        assert!(spec.dx > 0.0 && spec.dy > 0.0);
        assert!(spec.cell_of(1.0, 1.0).is_some());
    }

    #[test]
    fn grid_point_coordinates() {
        let s = spec3();
        assert_eq!(s.point(0, 0), [0.0, 0.0]);
        assert_eq!(s.point(2, 1), [2.0, 1.0]);
        assert_eq!(s.cells_per_axis(), 2);
        assert_eq!(s.cell_area(), 1.0);
    }

    #[test]
    fn cell_lookup_and_clamping() {
        let s = spec3();
        assert_eq!(s.cell_of(0.5, 0.5), Some((0, 0)));
        assert_eq!(s.cell_of(1.5, 0.2), Some((1, 0)));
        // Boundary points belong to the last cell (clamped).
        assert_eq!(s.cell_of(2.0, 2.0), Some((1, 1)));
        assert_eq!(s.cell_of(-0.5, 0.0), None);
        assert_eq!(s.cell_of(0.0, 3.0), None);
    }

    #[test]
    fn cell_center_is_midpoint() {
        let s = spec3();
        assert_eq!(s.cell_center(0, 1), [0.5, 1.5]);
    }

    #[test]
    fn density_grid_accessors() {
        let g = DensityGrid::new(spec3(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(g.at(1, 0), 1.0);
        assert_eq!(g.at(0, 2), 6.0);
        assert_eq!(g.max(), 8.0);
        assert_eq!(g.cell_corners(0, 0), [0.0, 1.0, 3.0, 4.0]);
        assert_eq!(g.quantile(0.0), 0.0);
        assert_eq!(g.quantile(1.0), 8.0);
        assert_eq!(g.quantile(0.5), 4.0);
    }

    #[test]
    fn interpolation_reproduces_corners_and_midpoints() {
        let g = DensityGrid::new(spec3(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!((g.interpolate(0.0, 0.0) - 0.0).abs() < 1e-12);
        assert!((g.interpolate(1.0, 1.0) - 4.0).abs() < 1e-12);
        // Midpoint of cell (0,0): average of its four corners.
        assert!((g.interpolate(0.5, 0.5) - 2.0).abs() < 1e-12);
        // Out-of-grid clamps.
        assert!((g.interpolate(-10.0, -10.0) - 0.0).abs() < 1e-12);
        assert!((g.interpolate(10.0, 10.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn integral_of_constant_grid() {
        // Constant density c over a (n-1)·dx × (n-1)·dy box integrates to
        // c · area.
        let g = DensityGrid::new(spec3(), vec![0.5; 9]);
        assert!((g.integral() - 0.5 * 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n²")]
    fn wrong_value_count_panics() {
        DensityGrid::new(spec3(), vec![0.0; 4]);
    }
}
