//! The visual profile: what the user is shown for one 2-D projection.
//!
//! `VisualProfile` packages the projected data, the query location, and the
//! grid KDE (Fig. 5). Both the *human* user (via the renderers in
//! `hinn-viz`) and the *simulated* users (in `hinn-user`) consume exactly
//! this object — the simulated users never see anything a human could not
//! read off the same plot.

use crate::connect::{connected_cells, points_in_mask, CellMask, CornerRule};
use crate::error::KdeError;
use crate::grid::{DensityGrid, GridSpec};
use crate::kernel::Bandwidth2D;
use crate::polygon::HalfPlane;

/// Fraction of the data extent added as margin around the grid so that
/// density tails are visible and the integral is close to 1.
const GRID_MARGIN: f64 = 0.15;

/// Degradations observed while building a [`VisualProfile`] — returned by
/// the fallible builders so the caller can record (rather than silently
/// absorb) a downgraded view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileNotes {
    /// At least one axis had zero spread (or the `kde.bandwidth` fault
    /// fired) and received the epsilon-floored fallback bandwidth.
    pub bandwidth_floored: bool,
}

/// A rendered 2-D density profile of one projection, centered on a query.
#[derive(Clone, Debug)]
pub struct VisualProfile {
    /// Projected data points (aligned with the current data set's indices).
    pub points: Vec<[f64; 2]>,
    /// Projected query location.
    pub query: [f64; 2],
    /// Grid KDE of the projected points.
    pub grid: DensityGrid,
    /// Bandwidths used for the KDE.
    pub bandwidth: Bandwidth2D,
    /// Elementary rectangle containing the query (always on-grid:
    /// the grid is built to cover the query).
    pub query_cell: (usize, usize),
}

impl VisualProfile {
    /// Build the profile for already-projected 2-D `points` and `query`,
    /// with `grid_n` grid points per axis and a bandwidth multiplier
    /// `bw_scale` (1.0 = Silverman's rule as-is).
    ///
    /// ```
    /// use hinn_kde::{CornerRule, VisualProfile};
    ///
    /// // A blob at the origin plus two far-away points.
    /// let mut pts: Vec<[f64; 2]> = (0..40)
    ///     .map(|i| [(i % 7) as f64 * 0.05, (i / 7) as f64 * 0.05])
    ///     .collect();
    /// pts.push([9.0, 9.0]);
    /// pts.push([9.5, 8.5]);
    /// let profile = VisualProfile::build(pts, [0.1, 0.1], 40, 0.5);
    ///
    /// // A separator at 20% of the peak selects the blob, not the strays.
    /// let tau = profile.max_density() * 0.2;
    /// let picked = profile.select(tau, CornerRule::AtLeastThree);
    /// assert!(picked.len() >= 30 && picked.len() <= 40);
    /// ```
    ///
    /// # Panics
    /// Panics if `points` is empty or `grid_n < 2`.
    pub fn build(points: Vec<[f64; 2]>, query: [f64; 2], grid_n: usize, bw_scale: f64) -> Self {
        Self::build_with(
            hinn_par::Parallelism::serial(),
            points,
            query,
            grid_n,
            bw_scale,
        )
    }

    /// [`VisualProfile::build`] with an explicit thread budget for the grid
    /// KDE. Bit-identical to the serial build for every budget (see
    /// `hinn-par`).
    ///
    /// # Panics
    /// Panics if `points` is empty or `grid_n < 2`.
    pub fn build_with(
        par: hinn_par::Parallelism,
        points: Vec<[f64; 2]>,
        query: [f64; 2],
        grid_n: usize,
        bw_scale: f64,
    ) -> Self {
        match Self::try_build_with(par, points, query, grid_n, bw_scale) {
            Ok((profile, _)) => profile,
            Err(e) => panic!("VisualProfile: {e}"),
        }
    }

    /// Fallible [`VisualProfile::build_with`]: typed errors instead of
    /// panics, plus [`ProfileNotes`] describing any degradation absorbed
    /// along the way (epsilon-floored bandwidth on a zero-spread axis).
    /// On success the profile is bit-identical to
    /// [`VisualProfile::build_with`].
    pub fn try_build_with(
        par: hinn_par::Parallelism,
        points: Vec<[f64; 2]>,
        query: [f64; 2],
        grid_n: usize,
        bw_scale: f64,
    ) -> Result<(Self, ProfileNotes), KdeError> {
        let _span = hinn_obs::span!("kde.profile");
        if points.is_empty() {
            return Err(KdeError::EmptyProjection);
        }
        let (bandwidth, bandwidth_floored) = Bandwidth2D::silverman_checked(&points);
        let bandwidth = bandwidth.scaled(bw_scale);
        let spec = GridSpec::try_covering(&points, &[query], GRID_MARGIN, grid_n)?;
        let grid = crate::estimate::estimate_grid_with(par, &points, bandwidth, spec);
        let query_cell = spec
            .cell_of(query[0], query[1])
            .ok_or(KdeError::QueryOffGrid)?;
        Ok((
            Self {
                points,
                query,
                grid,
                bandwidth,
                query_cell,
            },
            ProfileNotes { bandwidth_floored },
        ))
    }

    /// Like [`VisualProfile::build`], but with Silverman's adaptive kernel
    /// estimator (see [`crate::adaptive`]): per-point bandwidths sharpen
    /// cluster peaks and smooth sparse tails simultaneously.
    /// `alpha ∈ [0, 1]` is the sensitivity (0 = fixed bandwidth).
    ///
    /// # Panics
    /// Panics if `points` is empty, `grid_n < 2`, or `alpha ∉ [0, 1]`.
    pub fn build_adaptive(
        points: Vec<[f64; 2]>,
        query: [f64; 2],
        grid_n: usize,
        bw_scale: f64,
        alpha: f64,
    ) -> Self {
        Self::build_adaptive_with(
            hinn_par::Parallelism::serial(),
            points,
            query,
            grid_n,
            bw_scale,
            alpha,
        )
    }

    /// [`VisualProfile::build_adaptive`] with an explicit thread budget for
    /// the pilot and final grids. Bit-identical to the serial build for
    /// every budget.
    ///
    /// # Panics
    /// Panics if `points` is empty, `grid_n < 2`, or `alpha ∉ [0, 1]`.
    pub fn build_adaptive_with(
        par: hinn_par::Parallelism,
        points: Vec<[f64; 2]>,
        query: [f64; 2],
        grid_n: usize,
        bw_scale: f64,
        alpha: f64,
    ) -> Self {
        match Self::try_build_adaptive_with(par, points, query, grid_n, bw_scale, alpha) {
            Ok((profile, _)) => profile,
            Err(e) => panic!("VisualProfile: {e}"),
        }
    }

    /// Fallible [`VisualProfile::build_adaptive_with`] — see
    /// [`VisualProfile::try_build_with`] for the error/notes contract.
    ///
    /// # Panics
    /// Still panics if `alpha ∉ [0, 1]` (a caller bug, not a data
    /// condition; `SearchConfig::try_validate` rejects it upstream).
    pub fn try_build_adaptive_with(
        par: hinn_par::Parallelism,
        points: Vec<[f64; 2]>,
        query: [f64; 2],
        grid_n: usize,
        bw_scale: f64,
        alpha: f64,
    ) -> Result<(Self, ProfileNotes), KdeError> {
        let _span = hinn_obs::span!("kde.profile");
        if points.is_empty() {
            return Err(KdeError::EmptyProjection);
        }
        let (bandwidth, bandwidth_floored) = Bandwidth2D::silverman_checked(&points);
        let bandwidth = bandwidth.scaled(bw_scale);
        // Validate the grid geometry before the adaptive pilot runs: the
        // pilot builds its own internal grid over the same coordinates and
        // would panic on non-finite input.
        let spec = GridSpec::try_covering(&points, &[query], GRID_MARGIN, grid_n)?;
        let adaptive = crate::adaptive::adaptive_bandwidths_with(par, &points, bandwidth, alpha);
        let grid = crate::adaptive::estimate_grid_adaptive_with(par, &points, &adaptive, spec);
        let query_cell = spec
            .cell_of(query[0], query[1])
            .ok_or(KdeError::QueryOffGrid)?;
        Ok((
            Self {
                points,
                query,
                grid,
                bandwidth,
                query_cell,
            },
            ProfileNotes { bandwidth_floored },
        ))
    }

    /// Density at the query location (bilinear on the grid).
    pub fn query_density(&self) -> f64 {
        self.grid.interpolate(self.query[0], self.query[1])
    }

    /// The grid point of highest density within `radius_cells` of the
    /// query (the top of the peak the query stands on — a query is usually
    /// a *member* of its cluster, i.e. on the peak's slope rather than its
    /// summit). Returns the position and its density.
    pub fn local_peak(&self, radius_cells: f64) -> ([f64; 2], f64) {
        let spec = &self.grid.spec;
        let (qx, qy) = self.query_cell;
        let r = radius_cells.ceil() as isize;
        let n = spec.n as isize;
        let mut best_pos = self.query;
        let mut best = self.query_density();
        for dy in -r..=r {
            for dx in -r..=r {
                let ix = qx as isize + dx;
                let iy = qy as isize + dy;
                if ix < 0 || iy < 0 || ix >= n || iy >= n {
                    continue;
                }
                let v = self.grid.at(ix as usize, iy as usize);
                if v > best {
                    best = v;
                    best_pos = spec.point(ix as usize, iy as usize);
                }
            }
        }
        (best_pos, best)
    }

    /// Mean density on a ring of `radius_cells` grid cells around `center`
    /// (12 samples).
    pub fn ring_density_at(&self, center: [f64; 2], radius_cells: f64) -> f64 {
        let spec = &self.grid.spec;
        let r = radius_cells * spec.dx.max(spec.dy);
        let samples = 12;
        let mut s = 0.0;
        for a in 0..samples {
            let th = a as f64 * std::f64::consts::TAU / samples as f64;
            s += self
                .grid
                .interpolate(center[0] + r * th.cos(), center[1] + r * th.sin());
        }
        s / samples as f64
    }

    /// Mean density on a ring of `radius_cells` grid cells around the
    /// query (12 samples).
    pub fn ring_density(&self, radius_cells: f64) -> f64 {
        self.ring_density_at(self.query, radius_cells)
    }

    /// The *local sharpness* of the peak the query stands on: the density
    /// at the local peak (within `radius_cells / 2` of the query) over the
    /// mean density on a ring `radius_cells` out from that peak. High for
    /// a needle standing on the data; near 1 on flat noise (Fig. 1(c)), in
    /// sparse regions (Fig. 1(b)), and on the smooth summit of a broad
    /// bulk. ∞-safe: returns 0 when the peak density is 0, a large value
    /// when only the ring is empty.
    pub fn query_sharpness(&self, radius_cells: f64) -> f64 {
        let (peak_pos, peak) = self.local_peak((radius_cells / 2.0).max(1.0));
        if peak <= 0.0 {
            return 0.0;
        }
        let ring = self.ring_density_at(peak_pos, radius_cells);
        if ring <= 0.0 {
            f64::INFINITY
        } else {
            peak / ring
        }
    }

    /// Peak grid density.
    pub fn max_density(&self) -> f64 {
        self.grid.max()
    }

    /// `R(τ, Q)` under `rule` (Def. 2.2).
    pub fn connected_mask(&self, tau: f64, rule: CornerRule) -> CellMask {
        connected_cells(&self.grid, tau, self.query_cell, rule)
    }

    /// Indices of data points density-connected to the query at `τ`
    /// (the user's picks for this projection, Fig. 7).
    pub fn select(&self, tau: f64, rule: CornerRule) -> Vec<usize> {
        let mask = self.connected_mask(tau, rule);
        points_in_mask(&self.points, &self.grid, &mask)
    }

    /// Alternative separation mode (§2.2): the user draws separating lines
    /// on the lateral plot; the points in the same polygonal region as the
    /// query (identical half-plane signature) are selected.
    pub fn select_polygon(&self, lines: &[HalfPlane]) -> Vec<usize> {
        let qsig: Vec<bool> = lines.iter().map(|l| l.side(self.query)).collect();
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| lines.iter().zip(&qsig).all(|(l, &s)| l.side(**p) == s))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of selected points as a function of `τ`, scanned over
    /// `steps` evenly spaced thresholds in `(0, max_density)`. Simulated
    /// users use this curve the way a human scrubs the separator plane up
    /// and down (Fig. 6's interaction loop).
    pub fn selection_curve(&self, steps: usize, rule: CornerRule) -> Vec<(f64, usize)> {
        let max = self.max_density();
        (0..steps)
            .map(|k| {
                let tau = max * (k as f64 + 0.5) / steps as f64;
                (tau, self.select(tau, rule).len())
            })
            .collect()
    }

    /// Fraction of all points selected at `τ` — the "how big is the picked
    /// cluster relative to the data" quantity the user eyeballs.
    pub fn selected_fraction(&self, tau: f64, rule: CornerRule) -> f64 {
        self.select(tau, rule).len() as f64 / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs: one around (0,0) containing the query, one around
    /// (8,8); plus scattered noise.
    fn two_blob_points() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..60 {
            let a = i as f64 * 0.1;
            pts.push([0.3 * a.sin() * 0.3, 0.3 * a.cos() * 0.3]);
            pts.push([8.0 + 0.3 * a.cos() * 0.3, 8.0 + 0.3 * a.sin() * 0.3]);
        }
        for i in 0..20 {
            pts.push([(i as f64 * 0.37) % 8.0, (i as f64 * 0.73) % 8.0]);
        }
        pts
    }

    #[test]
    fn build_covers_query() {
        let profile = VisualProfile::build(two_blob_points(), [0.0, 0.0], 40, 1.0);
        let (cx, cy) = profile.query_cell;
        assert!(cx < profile.grid.spec.cells_per_axis());
        assert!(cy < profile.grid.spec.cells_per_axis());
        assert!(profile.query_density() > 0.0);
    }

    #[test]
    fn query_on_peak_has_high_relative_density() {
        let profile = VisualProfile::build(two_blob_points(), [0.0, 0.0], 50, 1.0);
        assert!(
            profile.query_density() > 0.3 * profile.max_density(),
            "query sits on a blob; density {} vs max {}",
            profile.query_density(),
            profile.max_density()
        );
    }

    #[test]
    fn selection_at_moderate_tau_returns_query_blob_only() {
        let pts = two_blob_points();
        let profile = VisualProfile::build(pts.clone(), [0.0, 0.0], 60, 1.0);
        let tau = profile.query_density() * 0.4;
        let sel = profile.select(tau, CornerRule::AtLeastThree);
        assert!(!sel.is_empty());
        for &i in &sel {
            let p = pts[i];
            assert!(
                p[0] * p[0] + p[1] * p[1] < 16.0,
                "selected point {p:?} is not in the query blob"
            );
        }
    }

    #[test]
    fn selection_curve_is_monotone_nonincreasing() {
        let profile = VisualProfile::build(two_blob_points(), [0.0, 0.0], 40, 1.0);
        let curve = profile.selection_curve(20, CornerRule::AtLeastThree);
        for w in curve.windows(2) {
            assert!(
                w[1].1 <= w[0].1,
                "raising tau must not grow the selection: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn selected_fraction_bounds() {
        let profile = VisualProfile::build(two_blob_points(), [0.0, 0.0], 40, 1.0);
        let f = profile.selected_fraction(profile.max_density() * 0.1, CornerRule::AtLeastThree);
        assert!((0.0..=1.0).contains(&f));
        assert_eq!(
            profile.selected_fraction(f64::INFINITY, CornerRule::AtLeastThree),
            0.0
        );
    }

    #[test]
    fn polygon_selection_separates_blobs() {
        let pts = two_blob_points();
        let profile = VisualProfile::build(pts.clone(), [0.0, 0.0], 30, 1.0);
        // The line x + y = 8 separates blob (0,0) from blob (8,8).
        let sel = profile.select_polygon(&[HalfPlane::new(1.0, 1.0, -8.0)]);
        assert!(!sel.is_empty());
        for &i in &sel {
            assert!(pts[i][0] + pts[i][1] < 8.0);
        }
    }

    #[test]
    fn polygon_no_lines_selects_everything() {
        let pts = two_blob_points();
        let n = pts.len();
        let profile = VisualProfile::build(pts, [0.0, 0.0], 30, 1.0);
        assert_eq!(profile.select_polygon(&[]).len(), n);
    }

    #[test]
    #[should_panic(expected = "empty projection")]
    fn empty_points_panics() {
        VisualProfile::build(Vec::new(), [0.0, 0.0], 10, 1.0);
    }

    #[test]
    fn try_build_matches_build_bit_for_bit() {
        let pts = two_blob_points();
        let built = VisualProfile::build(pts.clone(), [0.0, 0.0], 40, 1.0);
        let (tried, notes) = VisualProfile::try_build_with(
            hinn_par::Parallelism::serial(),
            pts,
            [0.0, 0.0],
            40,
            1.0,
        )
        .unwrap();
        assert!(!notes.bandwidth_floored);
        assert_eq!(built.query_cell, tried.query_cell);
        assert_eq!(built.bandwidth, tried.bandwidth);
        let same_bits = built
            .grid
            .values()
            .iter()
            .zip(tried.grid.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "try_build must not perturb the estimate");
    }

    #[test]
    fn try_build_reports_typed_errors_and_degradations() {
        assert_eq!(
            VisualProfile::try_build_with(
                hinn_par::Parallelism::serial(),
                Vec::new(),
                [0.0, 0.0],
                10,
                1.0
            )
            .unwrap_err(),
            KdeError::EmptyProjection
        );
        // Non-finite geometry: collapsed grid, not a panic.
        let err = VisualProfile::try_build_with(
            hinn_par::Parallelism::serial(),
            vec![[f64::NAN, 0.0], [1.0, 1.0]],
            [0.0, 0.0],
            10,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, KdeError::CollapsedGrid { .. }));
        // All-duplicate projection: succeeds with a floored bandwidth.
        let (profile, notes) = VisualProfile::try_build_with(
            hinn_par::Parallelism::serial(),
            vec![[2.0, 2.0]; 12],
            [2.0, 2.0],
            10,
            1.0,
        )
        .unwrap();
        assert!(notes.bandwidth_floored);
        assert!(profile.max_density() > 0.0);
    }

    #[test]
    fn forced_grid_fault_collapses_the_build() {
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("kde.grid", hinn_fault::FaultMode::Always),
        );
        let err = {
            let _g = hinn_fault::install_local(plan.clone());
            VisualProfile::try_build_with(
                hinn_par::Parallelism::serial(),
                two_blob_points(),
                [0.0, 0.0],
                20,
                1.0,
            )
            .unwrap_err()
        };
        assert_eq!(plan.fired("kde.grid"), 1);
        assert!(matches!(err, KdeError::CollapsedGrid { .. }));
    }
}
