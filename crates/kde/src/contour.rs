//! Iso-density contour extraction (marching squares).
//!
//! §2.2: "the contour of intersection of the density separator plane with
//! the density profile of the data is a set of closed regions. Each such
//! closed region corresponds to the contour of the cluster in the
//! projection … only one of these contours is relevant; the one that
//! contains the query point Q." This module traces those contours on the
//! evaluation grid with the standard marching-squares cases (linear
//! interpolation along cell edges), so the figure experiments can overlay
//! the exact `(τ, Q)`-contour the paper draws.

use crate::grid::DensityGrid;

/// A traced contour: an ordered polyline of data-space points. Closed
/// contours repeat their first point at the end; contours that leave the
/// grid are open.
pub type Contour = Vec<[f64; 2]>;

/// Extract all iso-density contours of `grid` at level `tau`.
///
/// Each cell contributes 0–2 segments via marching squares; segments are
/// then stitched into polylines by matching endpoints.
pub fn extract_contours(grid: &DensityGrid, tau: f64) -> Vec<Contour> {
    let m = grid.spec.cells_per_axis();
    let mut segments: Vec<([f64; 2], [f64; 2])> = Vec::new();

    for cy in 0..m {
        for cx in 0..m {
            // Corner values, counter-clockwise from bottom-left.
            let v = [
                grid.at(cx, cy),
                grid.at(cx + 1, cy),
                grid.at(cx + 1, cy + 1),
                grid.at(cx, cy + 1),
            ];
            let mut case = 0usize;
            for (bit, &val) in v.iter().enumerate() {
                if val > tau {
                    case |= 1 << bit;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }

            // Interpolated crossing points on the four edges
            // (0: bottom, 1: right, 2: top, 3: left).
            let spec = &grid.spec;
            let x0 = spec.x0 + cx as f64 * spec.dx;
            let y0 = spec.y0 + cy as f64 * spec.dy;
            let lerp = |a: f64, b: f64| {
                if (b - a).abs() < 1e-300 {
                    0.5
                } else {
                    ((tau - a) / (b - a)).clamp(0.0, 1.0)
                }
            };
            let edge = |e: usize| -> [f64; 2] {
                match e {
                    0 => [x0 + spec.dx * lerp(v[0], v[1]), y0],
                    1 => [x0 + spec.dx, y0 + spec.dy * lerp(v[1], v[2])],
                    2 => [x0 + spec.dx * lerp(v[3], v[2]), y0 + spec.dy],
                    _ => [x0, y0 + spec.dy * lerp(v[0], v[3])],
                }
            };

            // Marching-squares segment table (ambiguous cases 5 and 10 are
            // resolved by the cell-center mean, the standard disambiguation).
            let segs: &[(usize, usize)] = match case {
                1 => &[(3, 0)],
                2 => &[(0, 1)],
                3 => &[(3, 1)],
                4 => &[(1, 2)],
                5 => {
                    let center = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if center > tau {
                        &[(3, 2), (1, 0)]
                    } else {
                        &[(3, 0), (1, 2)]
                    }
                }
                6 => &[(0, 2)],
                7 => &[(3, 2)],
                8 => &[(2, 3)],
                9 => &[(2, 0)],
                10 => {
                    let center = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if center > tau {
                        &[(0, 1), (2, 3)]
                    } else {
                        &[(0, 3), (2, 1)]
                    }
                }
                11 => &[(2, 1)],
                12 => &[(1, 3)],
                13 => &[(1, 0)],
                14 => &[(0, 3)],
                _ => &[],
            };
            for &(a, b) in segs {
                segments.push((edge(a), edge(b)));
            }
        }
    }

    stitch(segments)
}

/// The contour containing the query: the closed region of the
/// `(τ, Q)`-selection (Def. 2.1's relevant contour). Returns the contour
/// whose bounding box contains the query and whose centroid is nearest to
/// it, or `None` when no contour exists at this level.
pub fn query_contour(grid: &DensityGrid, tau: f64, query: [f64; 2]) -> Option<Contour> {
    let contours = extract_contours(grid, tau);
    contours
        .into_iter()
        .filter(|c| {
            let (mut xlo, mut xhi, mut ylo, mut yhi) = (
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            );
            for p in c {
                xlo = xlo.min(p[0]);
                xhi = xhi.max(p[0]);
                ylo = ylo.min(p[1]);
                yhi = yhi.max(p[1]);
            }
            query[0] >= xlo && query[0] <= xhi && query[1] >= ylo && query[1] <= yhi
        })
        .min_by(|a, b| {
            let d = |c: &Contour| {
                let n = c.len() as f64;
                let cx = c.iter().map(|p| p[0]).sum::<f64>() / n;
                let cy = c.iter().map(|p| p[1]).sum::<f64>() / n;
                (cx - query[0]).powi(2) + (cy - query[1]).powi(2)
            };
            // Squared distances are never -0.0; total order also absorbs a
            // NaN centroid (degenerate contour) instead of panicking.
            d(a).total_cmp(&d(b))
        })
}

/// Stitch loose segments into polylines by greedy endpoint matching.
fn stitch(mut segments: Vec<([f64; 2], [f64; 2])>) -> Vec<Contour> {
    const EPS: f64 = 1e-9;
    let close = |a: [f64; 2], b: [f64; 2]| (a[0] - b[0]).abs() < EPS && (a[1] - b[1]).abs() < EPS;
    let mut contours = Vec::new();
    while let Some((start, end)) = segments.pop() {
        let mut line = vec![start, end];
        loop {
            let tail = *line.last().expect("non-empty");
            // Find a segment continuing from the tail.
            let mut found = None;
            for (i, &(a, b)) in segments.iter().enumerate() {
                if close(a, tail) {
                    found = Some((i, b));
                    break;
                }
                if close(b, tail) {
                    found = Some((i, a));
                    break;
                }
            }
            match found {
                Some((i, next)) => {
                    segments.swap_remove(i);
                    line.push(next);
                    if close(next, line[0]) {
                        break; // closed
                    }
                }
                None => break, // open contour (hits the grid edge)
            }
        }
        contours.push(line);
    }
    contours
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    /// Radially symmetric bump centered at (0, 0) on a grid over [-3, 3]².
    fn bump_grid(n: usize) -> DensityGrid {
        let spec = GridSpec {
            x0: -3.0,
            y0: -3.0,
            dx: 6.0 / (n - 1) as f64,
            dy: 6.0 / (n - 1) as f64,
            n,
        };
        let values = (0..n * n)
            .map(|i| {
                let [x, y] = spec.point(i % n, i / n);
                (-(x * x + y * y)).exp()
            })
            .collect();
        DensityGrid::new(spec, values)
    }

    #[test]
    fn single_bump_yields_one_closed_contour() {
        let g = bump_grid(41);
        let contours = extract_contours(&g, 0.5);
        assert_eq!(contours.len(), 1, "one level set at τ=0.5");
        let c = &contours[0];
        assert!(c.len() > 8);
        // Closed: first == last.
        let (first, last) = (c[0], *c.last().unwrap());
        assert!((first[0] - last[0]).abs() < 1e-9 && (first[1] - last[1]).abs() < 1e-9);
    }

    #[test]
    fn contour_points_lie_on_the_level_set() {
        // exp(-(r²)) = 0.5 → r = sqrt(ln 2) ≈ 0.8326.
        let g = bump_grid(81);
        let contours = extract_contours(&g, 0.5);
        let r_expect = (2f64.ln()).sqrt();
        for p in &contours[0] {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!(
                (r - r_expect).abs() < 0.05,
                "contour point at radius {r}, expected ~{r_expect}"
            );
        }
    }

    #[test]
    fn no_contour_above_the_peak_or_below_zero() {
        let g = bump_grid(31);
        assert!(extract_contours(&g, 2.0).is_empty());
        assert!(extract_contours(&g, -1.0).is_empty());
    }

    #[test]
    fn two_bumps_give_two_contours_and_query_selects_one() {
        let n = 61;
        let spec = GridSpec {
            x0: -3.0,
            y0: -3.0,
            dx: 12.0 / (n - 1) as f64,
            dy: 6.0 / (n - 1) as f64,
            n,
        };
        let values = (0..n * n)
            .map(|i| {
                let [x, y] = spec.point(i % n, i / n);
                (-((x - 0.0).powi(2) + y * y)).exp() + (-((x - 6.0).powi(2) + y * y)).exp()
            })
            .collect();
        let g = DensityGrid::new(spec, values);
        let contours = extract_contours(&g, 0.5);
        assert_eq!(contours.len(), 2, "two separated bumps");

        let qc = query_contour(&g, 0.5, [6.0, 0.0]).expect("query on the right bump");
        let cx: f64 = qc.iter().map(|p| p[0]).sum::<f64>() / qc.len() as f64;
        assert!(
            (cx - 6.0).abs() < 0.2,
            "selected the wrong bump: centroid x = {cx}"
        );
    }

    #[test]
    fn query_outside_any_contour_returns_none() {
        let g = bump_grid(31);
        assert!(query_contour(&g, 0.5, [2.9, 2.9]).is_none());
    }
}
