//! Typed errors for the density-estimation layer.
//!
//! Mirrors the layering of `hinn_linalg::LinalgError`: this crate reports
//! only what a KDE routine can observe about its own inputs; `hinn-core`
//! folds these into its session-level error taxonomy and decides whether a
//! failed view is skipped (degradation ladder) or fatal.

use std::fmt;

/// What a fallible KDE routine can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KdeError {
    /// A visual profile was requested for zero projected points.
    EmptyProjection,
    /// The requested grid resolution is unusable (`n < 2`).
    InvalidGrid {
        /// The offending grid-points-per-axis value.
        n: usize,
    },
    /// The evaluation grid could not be constructed over the data — the
    /// projected coordinates contain non-finite values (or the
    /// `kde.grid` fault point forced this arm).
    CollapsedGrid {
        /// Which check failed.
        why: &'static str,
    },
    /// The query fell outside the constructed grid. The grid is built to
    /// cover the query, so this indicates non-finite query coordinates.
    QueryOffGrid,
}

impl fmt::Display for KdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdeError::EmptyProjection => write!(f, "empty projection (no points)"),
            KdeError::InvalidGrid { n } => {
                write!(
                    f,
                    "invalid grid: need at least 2 grid points per axis, got {n}"
                )
            }
            KdeError::CollapsedGrid { why } => write!(f, "collapsed grid: {why}"),
            KdeError::QueryOffGrid => write!(f, "query falls outside the density grid"),
        }
    }
}

impl std::error::Error for KdeError {}
