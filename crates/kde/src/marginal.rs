//! One-dimensional marginal density profiles.
//!
//! §1.1 argues for axis-parallel projections because of their "greater
//! interpretability to the user": a view's axes are actual attributes. The
//! natural companion is the 1-D marginal density of each axis with the
//! query's position marked — the per-attribute summary a user reads to
//! understand *why* the cluster separates. `hinn-viz` renders these as
//! sparklines under the heatmap.

use crate::kernel::{gaussian_kernel, silverman_bandwidth};

/// A 1-D kernel density curve evaluated on an even grid.
#[derive(Clone, Debug)]
pub struct MarginalProfile {
    /// Left edge of the evaluation grid.
    pub x0: f64,
    /// Grid step.
    pub dx: f64,
    /// Densities at `x0 + i·dx`.
    pub values: Vec<f64>,
    /// Bandwidth used.
    pub bandwidth: f64,
}

impl MarginalProfile {
    /// Estimate the marginal density of `sample` on `n` grid points
    /// covering the sample range plus `margin` (fraction of the range) on
    /// each side. `bw_scale` multiplies Silverman's bandwidth.
    ///
    /// # Panics
    /// Panics if `sample` is empty or `n < 2`.
    pub fn estimate(sample: &[f64], n: usize, margin: f64, bw_scale: f64) -> Self {
        assert!(!sample.is_empty(), "MarginalProfile: empty sample");
        assert!(n >= 2, "MarginalProfile: need at least 2 grid points");
        assert!(
            bw_scale > 0.0,
            "MarginalProfile: bandwidth scale must be positive"
        );
        let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-9);
        let x0 = lo - margin * span;
        let dx = span * (1.0 + 2.0 * margin) / (n - 1) as f64;
        let h = silverman_bandwidth(sample) * bw_scale;
        let inv_n = 1.0 / sample.len() as f64;
        let values = (0..n)
            .map(|i| {
                let x = x0 + i as f64 * dx;
                sample
                    .iter()
                    .map(|&s| gaussian_kernel(x - s, h))
                    .sum::<f64>()
                    * inv_n
            })
            .collect();
        Self {
            x0,
            dx,
            values,
            bandwidth: h,
        }
    }

    /// Density at an arbitrary `x` (linear interpolation, clamped).
    pub fn at(&self, x: f64) -> f64 {
        let m = (self.values.len() - 1) as f64;
        let f = ((x - self.x0) / self.dx).clamp(0.0, m);
        let i = (f.floor() as usize).min(self.values.len() - 2);
        let t = f - i as f64;
        self.values[i] * (1.0 - t) + self.values[i + 1] * t
    }

    /// Peak density.
    pub fn max(&self) -> f64 {
        self.values.iter().fold(0.0, |m, &v| m.max(v))
    }

    /// Approximate integral (trapezoid).
    pub fn integral(&self) -> f64 {
        let mut s = 0.0;
        for w in self.values.windows(2) {
            s += (w[0] + w[1]) / 2.0;
        }
        s * self.dx
    }
}

impl crate::profile::VisualProfile {
    /// The two axis marginals of this view's projected points, at the
    /// view's grid resolution and bandwidth scaling (interpretability aid
    /// for axis-parallel projections, §1.1).
    pub fn axis_marginals(&self, bw_scale: f64) -> [MarginalProfile; 2] {
        let xs: Vec<f64> = self.points.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p[1]).collect();
        let n = self.grid.spec.n;
        [
            MarginalProfile::estimate(&xs, n, 0.15, bw_scale),
            MarginalProfile::estimate(&ys, n, 0.15, bw_scale),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_to_about_one() {
        let sample: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let m = MarginalProfile::estimate(&sample, 200, 1.0, 1.0);
        assert!(
            (m.integral() - 1.0).abs() < 0.03,
            "marginal mass {}",
            m.integral()
        );
    }

    #[test]
    fn peaks_where_the_data_is() {
        let mut sample = vec![0.0; 50];
        sample.extend(vec![10.0; 10]);
        let m = MarginalProfile::estimate(&sample, 100, 0.2, 1.0);
        assert!(m.at(0.0) > m.at(5.0), "density at the mass > in the gap");
        assert!(m.at(0.0) > m.at(10.0), "bigger mode is denser");
        assert!(m.at(10.0) > m.at(5.0));
    }

    #[test]
    fn interpolation_clamps() {
        let m = MarginalProfile::estimate(&[1.0, 2.0, 3.0], 20, 0.1, 1.0);
        assert_eq!(m.at(-100.0), m.values[0]);
        assert_eq!(m.at(100.0), *m.values.last().unwrap());
    }

    #[test]
    fn visual_profile_marginals_align_with_grid() {
        let pts: Vec<[f64; 2]> = (0..60).map(|i| [(i % 6) as f64, (i / 6) as f64]).collect();
        let profile = crate::profile::VisualProfile::build(pts, [2.0, 4.0], 24, 0.5);
        let [mx, my] = profile.axis_marginals(0.5);
        assert_eq!(mx.values.len(), 24);
        assert_eq!(my.values.len(), 24);
        assert!(mx.max() > 0.0 && my.max() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        MarginalProfile::estimate(&[], 10, 0.1, 1.0);
    }
}
