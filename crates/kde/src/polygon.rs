//! Half-plane separators for the lateral (polygonal) separation mode.
//!
//! §2.2: "An alternative way of separating the query cluster is by using the
//! lateral density plot in which the user visually specifies the separating
//! hyperplanes (lines) in order to divide the space into a set of polygonal
//! regions. The set of points in the same polygonal region as the query
//! point is the user response."
//!
//! Each line `a·x + b·y + c = 0` splits the plane in two; a set of lines
//! partitions it into convex polygonal regions identified by their vector of
//! half-plane signs.

/// An oriented line `a·x + b·y + c = 0` in the projection plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HalfPlane {
    /// x coefficient.
    pub a: f64,
    /// y coefficient.
    pub b: f64,
    /// constant term.
    pub c: f64,
}

impl HalfPlane {
    /// Construct from coefficients.
    ///
    /// # Panics
    /// Panics if `a` and `b` are both (near-)zero — that is not a line.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(
            a.abs() + b.abs() > 1e-12,
            "HalfPlane: a and b cannot both be zero"
        );
        Self { a, b, c }
    }

    /// The line through two distinct points.
    ///
    /// # Panics
    /// Panics if the points coincide.
    pub fn through(p: [f64; 2], q: [f64; 2]) -> Self {
        let a = q[1] - p[1];
        let b = p[0] - q[0];
        assert!(
            a.abs() + b.abs() > 1e-12,
            "HalfPlane::through: points coincide"
        );
        let c = -(a * p[0] + b * p[1]);
        Self { a, b, c }
    }

    /// Which side of the line `point` falls on (`true` = non-negative side).
    #[inline]
    pub fn side(&self, point: [f64; 2]) -> bool {
        self.a * point[0] + self.b * point[1] + self.c >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_line_sides() {
        // x = 2 → 1·x + 0·y − 2 = 0.
        let l = HalfPlane::new(1.0, 0.0, -2.0);
        assert!(l.side([3.0, 0.0]));
        assert!(!l.side([1.0, 5.0]));
        assert!(l.side([2.0, -1.0]), "points on the line are on the + side");
    }

    #[test]
    fn through_two_points_contains_both() {
        let p = [1.0, 1.0];
        let q = [4.0, 3.0];
        let l = HalfPlane::through(p, q);
        for pt in [p, q] {
            let v = l.a * pt[0] + l.b * pt[1] + l.c;
            assert!(v.abs() < 1e-12, "point {pt:?} not on line: {v}");
        }
        // A point off the line lands on one definite side.
        assert!(l.side([0.0, 5.0]) != l.side([5.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "cannot both be zero")]
    fn degenerate_line_panics() {
        HalfPlane::new(0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "points coincide")]
    fn coincident_points_panic() {
        HalfPlane::through([1.0, 1.0], [1.0, 1.0]);
    }
}
