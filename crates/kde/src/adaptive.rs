//! Adaptive (variable-bandwidth) kernel density estimation — Silverman,
//! *Density Estimation for Statistics and Data Analysis* (the paper's
//! reference \[26\]), §5.3.
//!
//! The fixed-bandwidth estimator of [`crate::estimate`] must compromise: a
//! bandwidth wide enough to smooth sparse background regions over-smooths
//! dense clusters (this workspace's default mitigates that with a global
//! scale factor — see `SearchConfig::bandwidth_scale`). Silverman's
//! *adaptive kernel estimator* resolves the tension per-point:
//!
//! 1. compute a fixed-bandwidth **pilot** estimate `f̃`,
//! 2. give each data point a local bandwidth factor
//!    `λᵢ = (f̃(xᵢ) / g)^(−α)` where `g` is the geometric mean of the pilot
//!    densities and `α ∈ [0, 1]` the sensitivity (Silverman recommends
//!    `α = 1/2`),
//! 3. estimate with per-point bandwidths `h·λᵢ`: narrow kernels in dense
//!    regions (sharp peaks), wide kernels in sparse ones (smooth tails).
//!
//! The ablation experiment compares this against the scaled-Silverman
//! default on cluster-separation quality.

use crate::estimate::{count_nonfinite, fill_kernel_column, support_range};
use crate::grid::{DensityGrid, GridSpec};
use crate::kernel::Bandwidth2D;
use hinn_linalg::simd;
use hinn_par::{fill_chunks, map_reduce_chunks, Parallelism};

/// Per-point bandwidth factors `λᵢ` from a pilot estimate.
#[derive(Clone, Debug)]
pub struct AdaptiveBandwidths {
    /// Base (pilot) bandwidths.
    pub base: Bandwidth2D,
    /// Per-point multipliers `λᵢ`.
    pub factors: Vec<f64>,
    /// Sensitivity exponent used.
    pub alpha: f64,
}

/// Compute Silverman's adaptive bandwidth factors for `points`.
///
/// `alpha = 0` reduces to the fixed-bandwidth estimator (`λᵢ ≡ 1`);
/// `alpha = 0.5` is the recommended setting.
///
/// # Panics
/// Panics if `points` is empty or `alpha ∉ [0, 1]`.
pub fn adaptive_bandwidths(
    points: &[[f64; 2]],
    base: Bandwidth2D,
    alpha: f64,
) -> AdaptiveBandwidths {
    adaptive_bandwidths_with(Parallelism::serial(), points, base, alpha)
}

/// [`adaptive_bandwidths`] with an explicit thread budget. The pilot grid,
/// the per-point pilot densities, and the geometric-mean reduction all use
/// the fixed-chunk schedule, so the factors are bit-identical for every
/// budget.
///
/// # Panics
/// Panics if `points` is empty or `alpha ∉ [0, 1]`.
pub fn adaptive_bandwidths_with(
    par: Parallelism,
    points: &[[f64; 2]],
    base: Bandwidth2D,
    alpha: f64,
) -> AdaptiveBandwidths {
    let _span = hinn_obs::span!("kde.adaptive_bandwidths");
    assert!(!points.is_empty(), "adaptive_bandwidths: empty point set");
    assert!(
        (0.0..=1.0).contains(&alpha),
        "adaptive_bandwidths: alpha must be in [0, 1]"
    );

    // Pilot densities at the data points (fixed bandwidth). A coarse grid
    // pilot keeps this O(N·p²) instead of O(N²) for large N.
    let spec = GridSpec::covering(points, &[], 0.15, 64);
    let pilot = crate::estimate::estimate_grid_with(par, points, base, spec);
    let mut dens = vec![0.0f64; points.len()];
    fill_chunks(par, &mut dens, |start, slice| {
        for (k, d) in slice.iter_mut().enumerate() {
            let p = points[start + k];
            *d = pilot.interpolate(p[0], p[1]).max(1e-300);
        }
    });

    // Geometric mean of the pilot densities (ordered chunked reduction).
    let log_sum = map_reduce_chunks(
        par,
        dens.len(),
        |r| dens[r].iter().map(|d| d.ln()).sum::<f64>(),
        0.0f64,
        |a, p| a + p,
    );
    let g = (log_sum / dens.len() as f64).exp();

    let mut factors = dens;
    for f in &mut factors {
        *f = (*f / g).powf(-alpha);
    }
    AdaptiveBandwidths {
        base,
        factors,
        alpha,
    }
}

/// Evaluate the adaptive estimator on every grid point of `spec`.
///
/// Each point contributes a product-Gaussian with its own bandwidth
/// `(hx·λᵢ, hy·λᵢ)` (sample-point estimator: the bandwidth rides with the
/// data point, keeping the estimate a genuine density).
pub fn estimate_grid_adaptive(
    points: &[[f64; 2]],
    bw: &AdaptiveBandwidths,
    spec: GridSpec,
) -> DensityGrid {
    estimate_grid_adaptive_with(Parallelism::serial(), points, bw, spec)
}

/// [`estimate_grid_adaptive`] with an explicit thread budget. Same
/// fixed-chunk partial-grid scheme as
/// [`crate::estimate::estimate_grid_with`]: bit-identical for every budget.
pub fn estimate_grid_adaptive_with(
    par: Parallelism,
    points: &[[f64; 2]],
    bw: &AdaptiveBandwidths,
    spec: GridSpec,
) -> DensityGrid {
    let _span = hinn_obs::span!("kde.estimate_grid_adaptive");
    assert_eq!(
        points.len(),
        bw.factors.len(),
        "estimate_grid_adaptive: factor count mismatch"
    );
    let n = spec.n;
    if points.is_empty() {
        return DensityGrid::new(spec, vec![0.0; n * n]);
    }
    if hinn_obs::enabled() {
        hinn_obs::counter("kde.points_scanned", points.len() as u64);
        hinn_obs::counter("kde.grid_cells", (n * n) as u64);
    }
    let skipped = count_nonfinite(points);
    if skipped > 0 {
        // Same contract as the fixed estimator: skipped points are
        // counted (only when present, keeping clean-data telemetry
        // schemas unchanged) and excluded from the normalization.
        if hinn_obs::enabled() {
            hinn_obs::counter("kde.skipped_nonfinite", skipped as u64);
        }
        if skipped == points.len() {
            return DensityGrid::new(spec, vec![0.0; n * n]);
        }
    }
    let inv_n = 1.0 / (points.len() - skipped) as f64;
    let mut values = map_reduce_chunks(
        par,
        points.len(),
        |r| accumulate_adaptive_chunk(&points[r.clone()], &bw.factors[r], bw.base, spec),
        vec![0.0; n * n],
        |mut acc, part| {
            for (a, b) in acc.iter_mut().zip(part.iter()) {
                *a += b;
            }
            acc
        },
    );
    for v in &mut values {
        *v *= inv_n;
    }
    DensityGrid::new(spec, values)
}

/// Un-normalized adaptive kernel-sum grid of one chunk of points. Partial
/// grid and kernel scratch come from the thread-local pool, zeroed.
///
/// Per-point bandwidths defeat the fixed estimator's 8-point blocking
/// (supports vary wildly between neighbors), so each point flushes
/// individually — but the kernel columns go through the same vectorized
/// [`fill_kernel_column`] and the row updates through
/// [`simd::axpy_inplace`], both bit-identical to the scalar loops they
/// replaced. Non-finite points are skipped ([`support_range`] returns the
/// empty range for them; they're counted by the caller).
fn accumulate_adaptive_chunk(
    points: &[[f64; 2]],
    factors: &[f64],
    base: Bandwidth2D,
    spec: GridSpec,
) -> hinn_cache::PooledF64 {
    let n = spec.n;
    let mut values = hinn_cache::PooledF64::take_zeroed(n * n);
    let mut kx = hinn_cache::PooledF64::take_zeroed(n);
    let mut ky = hinn_cache::PooledF64::take_zeroed(n);
    for (p, &lambda) in points.iter().zip(factors) {
        let hx = base.hx * lambda;
        let hy = base.hy * lambda;
        let (x_lo, x_hi) = support_range(p[0], hx, spec.x0, spec.dx, n);
        let (y_lo, y_hi) = support_range(p[1], hy, spec.y0, spec.dy, n);
        if x_lo > x_hi || y_lo > y_hi {
            continue;
        }
        fill_kernel_column(&mut kx, x_lo, x_hi, spec.x0, spec.dx, p[0], hx);
        fill_kernel_column(&mut ky, y_lo, y_hi, spec.y0, spec.dy, p[1], hy);
        let col = &kx[x_lo..=x_hi];
        for iy in y_lo..=y_hi {
            simd::axpy_inplace(ky[iy], col, &mut values[iy * n + x_lo..iy * n + x_hi + 1]);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Bandwidth2D;

    /// A tight 60-point cluster at the origin plus 60 scattered points.
    fn cluster_and_noise() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..60 {
            let a = i as f64 * 0.7;
            pts.push([0.2 * a.sin() * 0.2, 0.2 * a.cos() * 0.2]);
        }
        for i in 0..60 {
            pts.push([
                2.0 + 8.0 * ((i * 37 % 60) as f64 / 60.0),
                -4.0 + 8.0 * ((i * 53 % 60) as f64 / 60.0),
            ]);
        }
        pts
    }

    #[test]
    fn alpha_zero_matches_fixed_estimator() {
        let pts = cluster_and_noise();
        let base = Bandwidth2D::silverman(&pts);
        let bw = adaptive_bandwidths(&pts, base, 0.0);
        assert!(bw.factors.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        let spec = GridSpec::covering(&pts, &[], 0.2, 31);
        let adaptive = estimate_grid_adaptive(&pts, &bw, spec);
        let fixed = crate::estimate::estimate_grid(&pts, base, spec);
        for (a, b) in adaptive.values().iter().zip(fixed.values()) {
            assert!((a - b).abs() < 1e-9, "alpha=0 must equal fixed: {a} vs {b}");
        }
    }

    #[test]
    fn dense_points_get_narrow_kernels() {
        let pts = cluster_and_noise();
        let base = Bandwidth2D::silverman(&pts);
        let bw = adaptive_bandwidths(&pts, base, 0.5);
        let cluster_mean: f64 = bw.factors[..60].iter().sum::<f64>() / 60.0;
        let noise_mean: f64 = bw.factors[60..].iter().sum::<f64>() / 60.0;
        assert!(
            cluster_mean < noise_mean,
            "cluster factors ({cluster_mean:.2}) must be below noise factors ({noise_mean:.2})"
        );
        assert!(cluster_mean < 1.0);
        assert!(noise_mean > 1.0);
    }

    #[test]
    fn adaptive_peak_is_sharper_than_fixed() {
        let pts = cluster_and_noise();
        let base = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 0.2, 61);
        let fixed = crate::estimate::estimate_grid(&pts, base, spec);
        let bw = adaptive_bandwidths(&pts, base, 0.5);
        let adaptive = estimate_grid_adaptive(&pts, &bw, spec);
        // Peak (at the cluster) must be higher relative to the same grid's
        // total mass for the adaptive estimator.
        assert!(
            adaptive.max() > 1.5 * fixed.max(),
            "adaptive peak {} vs fixed {}",
            adaptive.max(),
            fixed.max()
        );
    }

    #[test]
    fn adaptive_estimate_integrates_to_about_one() {
        let pts = cluster_and_noise();
        let base = Bandwidth2D::silverman(&pts);
        let bw = adaptive_bandwidths(&pts, base, 0.5);
        let spec = GridSpec::covering(&pts, &[], 1.0, 121);
        let g = estimate_grid_adaptive(&pts, &bw, spec);
        let mass = g.integral();
        assert!((mass - 1.0).abs() < 0.05, "adaptive mass {mass}");
    }

    #[test]
    fn nan_point_is_skipped_by_the_adaptive_estimator() {
        // Regression: the old inline support computation sent a NaN
        // center to the corner cell (`NaN as usize == 0`), poisoning the
        // grid. Poisoned points must drop out entirely.
        let clean = cluster_and_noise();
        let base = Bandwidth2D::silverman(&clean);
        let spec = GridSpec::covering(&clean, &[], 0.2, 31);
        let bw_clean = adaptive_bandwidths(&clean, base, 0.5);
        let want = estimate_grid_adaptive(&clean, &bw_clean, spec);

        let mut pts = clean.clone();
        pts.push([f64::NAN, 0.1]);
        // Reuse the clean factors for the clean points; the poisoned
        // point's factor is irrelevant (it is skipped).
        let bw_poison = AdaptiveBandwidths {
            base,
            factors: {
                let mut f = bw_clean.factors.clone();
                f.push(1.0);
                f
            },
            alpha: 0.5,
        };
        let g = estimate_grid_adaptive(&pts, &bw_poison, spec);
        assert!(g.values().iter().all(|v| v.is_finite()));
        for (a, b) in g.values().iter().zip(want.values()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "grid with a NaN point must equal the finite subset's"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        adaptive_bandwidths(&[[0.0, 0.0]], Bandwidth2D { hx: 1.0, hy: 1.0 }, 1.5);
    }
}
