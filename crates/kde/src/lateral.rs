//! Lateral density plots (§2.2): a scatter of *fictitious* points sampled in
//! proportion to the estimated density. Figs. 1(a)–(c) of the paper are
//! lateral scatter plots of 500 such points.
//!
//! Sampling draws a cell with probability proportional to its average corner
//! density × area, then places the point uniformly within the cell. This
//! matches the grid resolution of the profile the user is already looking
//! at.

use crate::grid::DensityGrid;
use rand::Rng;

/// Sample `count` fictitious points distributed ∝ the grid density.
///
/// Returns an empty vector when the grid carries no mass (all-zero density).
pub fn lateral_points<R: Rng>(grid: &DensityGrid, count: usize, rng: &mut R) -> Vec<[f64; 2]> {
    let m = grid.spec.cells_per_axis();
    // Cumulative weights over cells.
    let mut cum = Vec::with_capacity(m * m);
    let mut total = 0.0;
    for cy in 0..m {
        for cx in 0..m {
            let c = grid.cell_corners(cx, cy);
            total += (c[0] + c[1] + c[2] + c[3]) / 4.0;
            cum.push(total);
        }
    }
    if total <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let u: f64 = rng.gen_range(0.0..total);
        // Binary search for the first cumulative weight exceeding u.
        let idx = cum.partition_point(|&w| w <= u).min(m * m - 1);
        let (cx, cy) = (idx % m, idx / m);
        let x = grid.spec.x0 + (cx as f64 + rng.gen::<f64>()) * grid.spec.dx;
        let y = grid.spec.y0 + (cy as f64 + rng.gen::<f64>()) * grid.spec.dy;
        out.push([x, y]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn peaked_grid() -> DensityGrid {
        // 11×11 grid over [0,10]²; all density concentrated near (2,2).
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 11,
        };
        let mut v = vec![0.0; 121];
        for iy in 1..=3usize {
            for ix in 1..=3usize {
                v[iy * 11 + ix] = 50.0;
            }
        }
        DensityGrid::new(spec, v)
    }

    #[test]
    fn samples_cluster_at_the_peak() {
        let g = peaked_grid();
        let mut rng = StdRng::seed_from_u64(42);
        let pts = lateral_points(&g, 400, &mut rng);
        assert_eq!(pts.len(), 400);
        let near_peak = pts
            .iter()
            .filter(|p| p[0] >= 0.0 && p[0] <= 4.0 && p[1] >= 0.0 && p[1] <= 4.0)
            .count();
        assert!(
            near_peak > 380,
            "expected samples near the density peak, got {near_peak}/400"
        );
    }

    #[test]
    fn samples_stay_in_grid_bounds() {
        let g = peaked_grid();
        let mut rng = StdRng::seed_from_u64(1);
        for p in lateral_points(&g, 200, &mut rng) {
            assert!(p[0] >= 0.0 && p[0] <= 10.0);
            assert!(p[1] >= 0.0 && p[1] <= 10.0);
        }
    }

    #[test]
    fn zero_density_yields_no_samples() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 4,
        };
        let g = DensityGrid::new(spec, vec![0.0; 16]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(lateral_points(&g, 100, &mut rng).is_empty());
    }

    #[test]
    fn uniform_density_spreads_samples() {
        let spec = GridSpec {
            x0: 0.0,
            y0: 0.0,
            dx: 1.0,
            dy: 1.0,
            n: 5,
        };
        let g = DensityGrid::new(spec, vec![1.0; 25]);
        let mut rng = StdRng::seed_from_u64(3);
        let pts = lateral_points(&g, 4000, &mut rng);
        // Each quadrant of the 4×4-cell grid should get roughly a quarter.
        let q = pts.iter().filter(|p| p[0] < 2.0 && p[1] < 2.0).count();
        assert!(
            (q as f64 - 1000.0).abs() < 150.0,
            "uniform sampling skewed: {q}/4000 in one quadrant"
        );
    }
}
