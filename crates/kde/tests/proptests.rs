//! Property-based tests for the KDE substrate.

use hinn_kde::connect::CornerRule;
use hinn_kde::estimate::{density_at, estimate_grid};
use hinn_kde::grid::{DensityGrid, GridSpec};
use hinn_kde::kernel::{gaussian_kernel, silverman_bandwidth, Bandwidth2D};
use hinn_kde::profile::VisualProfile;
use proptest::prelude::*;

fn points_2d(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), min_n..=max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| [x, y]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_nonnegative_and_bounded(u in -100.0..100.0f64, h in 0.01..10.0f64) {
        let v = gaussian_kernel(u, h);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= gaussian_kernel(0.0, h) + 1e-15);
    }

    #[test]
    fn silverman_nonneg(sample in proptest::collection::vec(-100.0..100.0f64, 0..50)) {
        prop_assert!(silverman_bandwidth(&sample) > 0.0);
    }

    #[test]
    fn density_nonnegative_everywhere(pts in points_2d(1, 40), x in -60.0..60.0f64, y in -60.0..60.0f64) {
        let bw = Bandwidth2D::silverman(&pts);
        prop_assert!(density_at(&pts, bw, x, y) >= 0.0);
    }

    #[test]
    fn grid_densities_nonnegative(pts in points_2d(1, 40)) {
        let bw = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 0.2, 17);
        let g = estimate_grid(&pts, bw, spec);
        prop_assert!(g.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn grid_integral_below_one_plus_eps(pts in points_2d(2, 40)) {
        // The grid covers a finite window, so the Riemann mass never
        // (meaningfully) exceeds the full integral of 1.
        let bw = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 0.5, 41);
        let g = estimate_grid(&pts, bw, spec);
        prop_assert!(g.integral() < 1.1, "grid mass {}", g.integral());
    }

    #[test]
    fn connectivity_shrinks_with_tau(
        pts in points_2d(5, 40),
        t1 in 0.0..0.5f64,
        t2 in 0.5..1.0f64,
    ) {
        let q = pts[0];
        let profile = VisualProfile::build(pts.clone(), q, 15, 1.0);
        let max = profile.max_density();
        let lo = profile.select(max * t1, CornerRule::AtLeastThree);
        let hi = profile.select(max * t2, CornerRule::AtLeastThree);
        prop_assert!(hi.len() <= lo.len());
        for i in &hi {
            prop_assert!(lo.contains(i), "selection at higher tau not nested");
        }
    }

    #[test]
    fn looser_corner_rule_selects_no_fewer(
        pts in points_2d(5, 40),
        t in 0.05..0.8f64,
    ) {
        let q = pts[0];
        let profile = VisualProfile::build(pts, q, 15, 1.0);
        let tau = profile.max_density() * t;
        let tight = profile.select(tau, CornerRule::AllFour).len();
        let mid = profile.select(tau, CornerRule::AtLeastThree).len();
        let loose = profile.select(tau, CornerRule::AnyOne).len();
        prop_assert!(tight <= mid && mid <= loose);
    }

    #[test]
    fn connected_mask_contains_query_or_is_empty(
        pts in points_2d(5, 30),
        t in 0.0..1.0f64,
    ) {
        let q = pts[0];
        let profile = VisualProfile::build(pts, q, 12, 1.0);
        let tau = profile.max_density() * t;
        let mask = profile.connected_mask(tau, CornerRule::AtLeastThree);
        if mask.count() > 0 {
            let (qx, qy) = profile.query_cell;
            prop_assert!(mask.contains(qx, qy));
        }
    }

    #[test]
    fn interpolation_within_grid_range(pts in points_2d(2, 30), x in -60.0..60.0f64, y in -60.0..60.0f64) {
        let bw = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 0.2, 13);
        let g = estimate_grid(&pts, bw, spec);
        let v = g.interpolate(x, y);
        prop_assert!(v >= -1e-12 && v <= g.max() + 1e-12);
    }

    #[test]
    fn cell_of_roundtrips_cell_center(n in 3usize..20, cx in 0usize..18, cy in 0usize..18) {
        let spec = GridSpec { x0: -3.0, y0: 2.0, dx: 0.7, dy: 1.3, n };
        let m = spec.cells_per_axis();
        let (cx, cy) = (cx % m, cy % m);
        let [x, y] = spec.cell_center(cx, cy);
        prop_assert_eq!(spec.cell_of(x, y), Some((cx, cy)));
    }

    #[test]
    fn lateral_samples_inside_grid(pts in points_2d(3, 30), count in 1usize..200) {
        use rand::SeedableRng;
        let bw = Bandwidth2D::silverman(&pts);
        let spec = GridSpec::covering(&pts, &[], 0.2, 13);
        let g = estimate_grid(&pts, bw, spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples = hinn_kde::lateral::lateral_points(&g, count, &mut rng);
        let xmax = spec.x0 + (spec.n - 1) as f64 * spec.dx;
        let ymax = spec.y0 + (spec.n - 1) as f64 * spec.dy;
        for s in samples {
            prop_assert!(s[0] >= spec.x0 - 1e-9 && s[0] <= xmax + 1e-9);
            prop_assert!(s[1] >= spec.y0 - 1e-9 && s[1] <= ymax + 1e-9);
        }
    }

    #[test]
    fn quantile_monotone(values in proptest::collection::vec(0.0..10.0f64, 9), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let spec = GridSpec { x0: 0.0, y0: 0.0, dx: 1.0, dy: 1.0, n: 3 };
        let g = DensityGrid::new(spec, values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(g.quantile(lo) <= g.quantile(hi) + 1e-12);
    }
}
