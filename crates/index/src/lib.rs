//! Deterministic HNSW candidate generation (ROADMAP item 1).
//!
//! The paper's interactive loop needs nearest-neighbor *candidates* per
//! view, and both existing generators — the VA-file filter and the linear
//! kNN scan — are O(N) per query. This crate adds the standard sublinear
//! answer: a hierarchical navigable small world graph (Malkov & Yashunin,
//! TPAMI 2020), built once per dataset and shared across sessions through
//! the [`hinn_cache::DatasetArtifacts`] registry exactly like
//! `VaFile::shared`.
//!
//! # Determinism contract
//!
//! Everything the graph does is a pure function of `(points, params)`:
//!
//! * per-point levels are derived by hashing `params.seed` with the point
//!   id (splitmix64), not by drawing from a shared RNG stream, so they do
//!   not depend on insertion interleaving;
//! * insertion runs strictly in point-id order;
//! * every comparison of `(distance, id)` pairs uses `f64::total_cmp`
//!   with the point id as the tie-break, so equal distances order
//!   identically on every platform and every run.
//!
//! Fixed seed ⇒ identical graph ⇒ identical candidate lists — across
//! repeat builds, across processes, and trivially across thread budgets
//! (build and search are sequential; the surrounding pipeline's
//! parallelism never touches the graph walk). `tests/index_equivalence.rs`
//! pins this contract end to end.
//!
//! Approximation is the price of sublinearity: unlike the VA-file, the
//! graph can miss true neighbors. `tests/index_recall.rs` and the
//! `index_bench` binary measure recall@k against the exact linear
//! baseline via [`recall`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod hnsw;
pub mod recall;

pub use hnsw::{Hnsw, HnswParams, HnswStats};
