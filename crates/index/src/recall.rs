//! Recall@k — the quality metric of approximate candidate generation.
//!
//! An approximate index earns its sublinearity by sometimes missing true
//! neighbors; recall@k measures how often. This module holds the single
//! shared definition used by the unit tests, the integration harness
//! (`tests/common/recall.rs`) and the `index_bench` binary, so every
//! reported number means the same thing.

/// Fraction of the exact top-k found in the approximate answer:
/// `|approx[..k] ∩ exact[..k]| / |exact[..k]|`.
///
/// Both lists are index lists, closest-first, as returned by every
/// `CandidateSource`. Only the first `k` entries of each are considered.
/// Returns 1.0 when the exact list is empty (there was nothing to find).
pub fn recall_at_k(exact: &[usize], approx: &[usize], k: usize) -> f64 {
    let truth = &exact[..k.min(exact.len())];
    if truth.is_empty() {
        return 1.0;
    }
    let got = &approx[..k.min(approx.len())];
    let hits = truth.iter().filter(|id| got.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Mean of [`recall_at_k`] over paired answer lists — one `(exact,
/// approx)` pair per query. Returns 1.0 for an empty batch.
pub fn mean_recall_at_k(pairs: &[(Vec<usize>, Vec<usize>)], k: usize) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let sum: f64 = pairs
        .iter()
        .map(|(exact, approx)| recall_at_k(exact, approx, k))
        .sum();
    sum / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_disjoint() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[1, 2, 3], 3), 1.0);
        assert_eq!(recall_at_k(&[1, 2, 3], &[3, 2, 1], 3), 1.0); // order-free
        assert_eq!(recall_at_k(&[1, 2, 3], &[4, 5, 6], 3), 0.0);
    }

    #[test]
    fn partial_overlap_counts_fractionally() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1, 9, 3, 8], 4), 0.5);
    }

    #[test]
    fn k_truncates_both_sides() {
        // Beyond-k entries on either side are ignored.
        assert_eq!(recall_at_k(&[1, 2, 9, 9], &[2, 1, 7, 7], 2), 1.0);
        // A true neighbor ranked below k in the approximate list is a miss.
        assert_eq!(recall_at_k(&[1, 2], &[2, 3, 1], 2), 0.5);
    }

    #[test]
    fn short_lists_and_empty() {
        assert_eq!(recall_at_k(&[], &[], 10), 1.0);
        assert_eq!(recall_at_k(&[1, 2], &[1], 10), 0.5);
    }

    #[test]
    fn mean_over_queries() {
        let pairs = vec![
            (vec![1, 2], vec![1, 2]), // 1.0
            (vec![1, 2], vec![1, 9]), // 0.5
        ];
        assert_eq!(mean_recall_at_k(&pairs, 2), 0.75);
        assert_eq!(mean_recall_at_k(&[], 5), 1.0);
    }
}
