//! The HNSW graph: seeded build, deterministic search (see crate docs).

use hinn_cache::{Fingerprint, Fnv128};
use hinn_linalg::vector::dist_sq;
use std::cell::RefCell;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Hard cap on graph levels: with `m_L = 1/ln m ≤ 1/ln 2 ≈ 1.44`, level 32
/// needs `u < e^{-32/1.44} ≈ 2⁻³²` — beyond any practical dataset size.
const MAX_LEVEL: usize = 32;

/// Build and search parameters of an [`Hnsw`] graph.
///
/// All fields are integers on purpose: the parameter set is hashed (into
/// the artifact-registry key and the engine's config fingerprint) via its
/// `Debug` rendering, which is exact for integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HnswParams {
    /// Max links per node on layers above 0 (the paper's `M`).
    pub m: usize,
    /// Max links per node on layer 0 (the paper's `M_max0`, typically `2M`).
    pub max_m0: usize,
    /// Dynamic-list width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Default dynamic-list width during search (`ef`); raised to `k` when
    /// a query asks for more neighbors than this.
    pub ef_search: usize,
    /// Seed for the per-point level hash. Same seed ⇒ same graph.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            max_m0: 32,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x5EED_1DE5,
        }
    }
}

impl HnswParams {
    /// Set `m` (and `max_m0 = 2m`, the standard coupling).
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self.max_m0 = 2 * m;
        self
    }

    /// Set the construction list width.
    pub fn with_ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef;
        self
    }

    /// Set the default search list width.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef;
        self
    }

    /// Set the level-hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the parameter ranges (`m ≥ 2`, `max_m0 ≥ m`, `ef_* ≥ 1`).
    pub fn try_validate(&self) -> Result<(), String> {
        if self.m < 2 {
            return Err(format!("hnsw: m must be >= 2, got {}", self.m));
        }
        if self.max_m0 < self.m {
            return Err(format!(
                "hnsw: max_m0 ({}) must be >= m ({})",
                self.max_m0, self.m
            ));
        }
        if self.ef_construction == 0 || self.ef_search == 0 {
            return Err("hnsw: ef_construction and ef_search must be >= 1".to_string());
        }
        Ok(())
    }

    /// Level-sampling factor `m_L = 1/ln m` (Malkov & Yashunin §4.1).
    fn m_l(&self) -> f64 {
        1.0 / (self.m as f64).ln()
    }

    /// The artifact-registry key parameter: a 64-bit fold of every field,
    /// so distinct parameter sets get distinct `("index.hnsw", key)` slots.
    pub fn key(&self) -> u64 {
        let mut h = Fnv128::new();
        h.write_usize(self.m);
        h.write_usize(self.max_m0);
        h.write_usize(self.ef_construction);
        // `ef_search` is a *query*-time knob: excluded, so tuning it does
        // not rebuild (or re-register) the graph.
        h.write_u64(self.seed);
        let fp = h.finish().0;
        (fp as u64) ^ ((fp >> 64) as u64)
    }

    /// The level of point `id`: hash the seed with the id (splitmix64) to a
    /// uniform in (0, 1], then invert the geometric-ish CDF. Independent of
    /// insertion order and of every other point.
    fn level_of(&self, id: usize) -> usize {
        let mut x = self
            .seed
            .wrapping_add((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Map to (0, 1]: (x + 1) / 2^64 over the top 53 bits.
        let u = ((x >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let level = (-u.ln() * self.m_l()).floor();
        (level as usize).min(MAX_LEVEL)
    }
}

/// Work counters of one graph search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HnswStats {
    /// Nodes whose adjacency list was expanded.
    pub hops: usize,
    /// Exact distance computations performed.
    pub dist_evals: usize,
}

/// A `(distance², id)` pair with the workspace's total deterministic
/// order: distance by `total_cmp`, ties by point id. `BinaryHeap<Entry>`
/// is a max-heap whose root is the *worst* candidate (largest distance,
/// then largest id), which is exactly what the result list evicts first.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    dist: f64,
    id: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Epoch-stamped visited set: `O(1)` clear between searches instead of an
/// `O(N)` memset, which matters during construction (N searches per
/// build). Stamps live in a plain `Vec<u32>`; bumping the epoch
/// invalidates every stamp at once.
struct Visited {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Visited {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Start a new search; all nodes become unvisited.
    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Mark `i` visited; `true` iff it was not already.
    fn insert(&mut self, i: u32) -> bool {
        let slot = &mut self.stamp[i as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

thread_local! {
    /// Per-thread search scratch, reused across queries (and resized when
    /// a differently-sized graph is searched on the same thread).
    static SCRATCH: RefCell<Visited> = RefCell::new(Visited::new(0));
}

/// A hierarchical navigable small world graph over an owned copy of the
/// dataset. See the crate docs for the determinism contract.
#[derive(Clone, Debug)]
pub struct Hnsw {
    params: HnswParams,
    dim: usize,
    /// Number of indexed points.
    n: usize,
    /// Flat row-major point storage: point `i` at `[i·dim, (i+1)·dim)`.
    /// One contiguous allocation instead of `N` heap rows — the search
    /// walk's random point accesses stay within one cache-friendly block,
    /// and slicing it is as cheap as the old `&points[i]`.
    points: Vec<f64>,
    /// Points with a NaN coordinate: excluded from the graph entirely —
    /// never linked, never an entry point, never returned (the same policy
    /// as the VA-file's poisoned bitmap).
    poisoned: Vec<bool>,
    /// Level of each node (meaningful only for non-poisoned nodes).
    levels: Vec<u32>,
    /// `links[id][layer]` = neighbor ids of `id` on `layer` (0..=level).
    links: Vec<Vec<Vec<u32>>>,
    /// Entry node (highest level, lowest id among those); `None` iff every
    /// point is poisoned.
    entry: Option<u32>,
    max_level: usize,
}

impl Hnsw {
    /// Build the graph over `points`. Pure function of `(points, params)`:
    /// repeat builds are bit-identical (see [`Hnsw::digest`]).
    ///
    /// # Panics
    /// Panics if `points` is empty, rows are ragged, or `params` fail
    /// [`HnswParams::try_validate`].
    pub fn build(points: Vec<Vec<f64>>, params: HnswParams) -> Self {
        assert!(!points.is_empty(), "Hnsw: empty point set");
        if let Err(e) = params.try_validate() {
            panic!("Hnsw: invalid params: {e}");
        }
        let dim = points[0].len();
        assert!(dim > 0, "Hnsw: zero-dimensional points");
        assert!(
            points.iter().all(|p| p.len() == dim),
            "Hnsw: ragged point set"
        );

        let _span = hinn_obs::span!("index.build");
        let t0 = hinn_obs::enabled().then(std::time::Instant::now);

        let n = points.len();
        let poisoned: Vec<bool> = points
            .iter()
            .map(|p| p.iter().any(|v| v.is_nan()))
            .collect();
        let levels: Vec<u32> = (0..n).map(|id| params.level_of(id) as u32).collect();
        let mut flat = Vec::with_capacity(n * dim);
        for p in &points {
            flat.extend_from_slice(p);
        }
        let mut graph = Self {
            params,
            dim,
            n,
            points: flat,
            poisoned,
            levels,
            links: (0..n).map(|_| Vec::new()).collect(),
            entry: None,
            max_level: 0,
        };
        let mut visited = Visited::new(n);
        let mut stats = HnswStats::default();
        // Strict id order: combined with hash-derived levels this makes
        // the graph independent of any external concurrency.
        for id in 0..n as u32 {
            if !graph.poisoned[id as usize] {
                graph.insert(id, &mut visited, &mut stats);
            }
        }

        hinn_obs::counter("index.dist_evals", stats.dist_evals as u64);
        if let Some(t0) = t0 {
            hinn_obs::observe("index.build_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        graph
    }

    /// The shared, memoized graph over `points`: built at most once per
    /// (dataset fingerprint, build-params key) process-wide and handed out
    /// as an `Arc` via the [`hinn_cache::DatasetArtifacts`] registry —
    /// repeated sessions on one dataset amortize the O(N·ef·d) build.
    ///
    /// The build is a pure function of `(points, params)` and the registry
    /// key is the content fingerprint of `points`, so the shared graph is
    /// bit-identical to a fresh [`Hnsw::build`].
    ///
    /// Because the registry key excludes the query-time `ef_search` knob
    /// (see [`HnswParams::key`]), every `ef_search` variant maps to the
    /// *same* artifact slot. The stored graph must therefore not remember
    /// any one caller's `ef_search` — it is canonicalized to the default
    /// before the build, so the `Arc` handed back is independent of which
    /// caller registered first. Callers wanting a non-default search
    /// width pass it per query through [`Hnsw::knn_with_ef`].
    ///
    /// # Panics
    /// Panics exactly as [`Hnsw::build`] does on invalid input.
    pub fn shared(points: &[Vec<f64>], params: HnswParams) -> Arc<Self> {
        let params = HnswParams {
            ef_search: HnswParams::default().ef_search,
            ..params
        };
        let arts = hinn_cache::DatasetArtifacts::for_points(points);
        arts.store()
            .get_or_insert("index.hnsw", params.key(), || {
                Self::build(points.to_vec(), params)
            })
            .unwrap_or_else(|| Arc::new(Self::build(points.to_vec(), params)))
    }

    /// Extend the graph with the rows of `points` beyond the indexed
    /// prefix (`points[self.len()..]`), inserted in strict id order.
    ///
    /// Because [`HnswParams::level_of`] hashes ids independently and
    /// [`Hnsw::build`] inserts in strict id order, a graph built over a
    /// prefix and then extended with the suffix is **bit-identical**
    /// (same [`Hnsw::digest`]) to one built over the full set in one
    /// shot — the property that lets streaming epochs grow the shared
    /// graph incrementally instead of rebuilding per append batch. The
    /// caller guarantees `points[..self.len()]` equals the rows the graph
    /// was built over (epoch callers key graphs by the append-only
    /// fingerprint chain, which encodes exactly that).
    ///
    /// # Panics
    /// Panics if `points` is shorter than the indexed prefix or the new
    /// rows are ragged.
    pub fn extended(&self, points: &[Vec<f64>]) -> Self {
        assert!(
            points.len() >= self.n,
            "Hnsw: extension set shorter than the indexed prefix"
        );
        let m = points.len();
        if m == self.n {
            return self.clone();
        }
        assert!(
            points[self.n..].iter().all(|p| p.len() == self.dim),
            "Hnsw: ragged extension rows"
        );

        let _span = hinn_obs::span!("index.extend");
        let t0 = hinn_obs::enabled().then(std::time::Instant::now);

        let mut graph = self.clone();
        graph.points.reserve((m - self.n) * self.dim);
        for p in &points[self.n..] {
            graph.points.extend_from_slice(p);
        }
        graph.poisoned.extend(
            points[self.n..]
                .iter()
                .map(|p| p.iter().any(|v| v.is_nan())),
        );
        graph
            .levels
            .extend((self.n..m).map(|id| self.params.level_of(id) as u32));
        graph.links.extend((self.n..m).map(|_| Vec::new()));
        graph.n = m;

        let mut visited = Visited::new(m);
        let mut stats = HnswStats::default();
        for id in self.n as u32..m as u32 {
            if !graph.poisoned[id as usize] {
                graph.insert(id, &mut visited, &mut stats);
            }
        }

        hinn_obs::counter("index.dist_evals", stats.dist_evals as u64);
        if let Some(t0) = t0 {
            hinn_obs::observe("index.extend_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        graph
    }

    /// Number of indexed points (poisoned ones included in the count).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the index is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The build/search parameters.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Highest populated layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Point `id` as a slice into the flat row-major storage.
    #[inline]
    fn point(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dim;
        &self.points[i..i + self.dim]
    }

    /// Approximate Euclidean k-NN: neighbor ids, closest first. The
    /// dynamic list width is `max(ef_search, k)` with `ef_search` taken
    /// from the graph's own stored params — fine for a graph you built
    /// yourself, but a graph from [`Hnsw::shared`] carries the *canonical*
    /// (default) `ef_search`, so callers tuning the knob must pass it per
    /// query via [`Hnsw::knn_with_ef`].
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<usize> {
        self.knn_with_stats(query, k).0
    }

    /// [`Hnsw::knn`] with an explicit search-list width: the dynamic list
    /// is `max(ef, k)`, independent of the `ef_search` the graph was
    /// built/registered with. This is the right entry point for shared
    /// graphs (see [`Hnsw::shared`]): the result depends only on
    /// `(points, build params, query, k, ef)`, never on which caller
    /// registered the artifact first.
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    pub fn knn_with_ef(&self, query: &[f64], k: usize, ef: usize) -> Vec<usize> {
        self.knn_with_stats_ef(query, k, ef).0
    }

    /// [`Hnsw::knn`] plus the work counters of the walk.
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    pub fn knn_with_stats(&self, query: &[f64], k: usize) -> (Vec<usize>, HnswStats) {
        self.knn_with_stats_ef(query, k, self.params.ef_search)
    }

    /// [`Hnsw::knn_with_ef`] plus the work counters of the walk.
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    pub fn knn_with_stats_ef(&self, query: &[f64], k: usize, ef: usize) -> (Vec<usize>, HnswStats) {
        assert_eq!(query.len(), self.dim, "Hnsw: query dimensionality");
        let mut stats = HnswStats::default();
        let Some(entry) = self.entry else {
            return (Vec::new(), stats);
        };
        if k == 0 {
            return (Vec::new(), stats);
        }
        let _span = hinn_obs::span!("index.search");
        let ef = ef.max(k).max(1);

        let ids = SCRATCH.with(|cell| {
            let mut visited = cell.borrow_mut();
            if visited.stamp.len() != self.n {
                *visited = Visited::new(self.n);
            }
            // Greedy descent through the upper layers to a local minimum.
            let mut ep = Entry {
                dist: dist_sq(self.point(entry), query),
                id: entry,
            };
            stats.dist_evals += 1;
            for layer in (1..=self.max_level).rev() {
                ep = self.greedy_step(query, ep, layer, &mut stats);
            }
            // Beam search on layer 0.
            let found = self.search_layer(query, &[ep], 0, ef, &mut visited, &mut stats);
            found.into_iter().take(k).map(|e| e.id as usize).collect()
        });

        hinn_obs::counter("index.hops", stats.hops as u64);
        hinn_obs::counter("index.dist_evals", stats.dist_evals as u64);
        (ids, stats)
    }

    /// A 128-bit digest of the entire graph structure (levels, adjacency,
    /// entry point) — two graphs with equal digests are structurally
    /// identical. The equivalence tests compare digests across processes.
    pub fn digest(&self) -> Fingerprint {
        let mut h = Fnv128::new();
        h.write_usize(self.n);
        h.write_usize(self.dim);
        h.write_u64(self.entry.map(|e| e as u64 + 1).unwrap_or(0));
        h.write_usize(self.max_level);
        for (id, layers) in self.links.iter().enumerate() {
            h.write_usize(self.levels[id] as usize);
            h.write_u8(u8::from(self.poisoned[id]));
            h.write_usize(layers.len());
            for layer in layers {
                h.write_usize(layer.len());
                for &nb in layer {
                    h.write_u64(nb as u64);
                }
            }
        }
        h.finish()
    }

    /// One greedy descent step: repeatedly move to the closest neighbor on
    /// `layer` until no neighbor improves on `(dist, id)`.
    fn greedy_step(
        &self,
        query: &[f64],
        mut ep: Entry,
        layer: usize,
        stats: &mut HnswStats,
    ) -> Entry {
        loop {
            let mut improved = false;
            if let Some(nbs) = self.links[ep.id as usize].get(layer) {
                stats.hops += 1;
                for &u in nbs {
                    let cand = Entry {
                        dist: dist_sq(self.point(u), query),
                        id: u,
                    };
                    stats.dist_evals += 1;
                    if cand < ep {
                        ep = cand;
                        improved = true;
                    }
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// The ef-bounded beam search of Malkov & Yashunin Alg. 2, returning
    /// up to `ef` entries sorted closest-first. Deterministic: both heaps
    /// order by the total `(dist, id)` comparison.
    fn search_layer(
        &self,
        query: &[f64],
        entries: &[Entry],
        layer: usize,
        ef: usize,
        visited: &mut Visited,
        stats: &mut HnswStats,
    ) -> Vec<Entry> {
        visited.next_epoch();
        let mut results: BinaryHeap<Entry> = BinaryHeap::new(); // worst on top
        let mut frontier: BinaryHeap<Reverse<Entry>> = BinaryHeap::new(); // best on top
        for &e in entries {
            if visited.insert(e.id) {
                results.push(e);
                frontier.push(Reverse(e));
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            if results.len() >= ef {
                if let Some(&worst) = results.peek() {
                    if cand > worst {
                        break;
                    }
                }
            }
            stats.hops += 1;
            if let Some(nbs) = self.links[cand.id as usize].get(layer) {
                for &u in nbs {
                    if !visited.insert(u) {
                        continue;
                    }
                    let e = Entry {
                        dist: dist_sq(self.point(u), query),
                        id: u,
                    };
                    stats.dist_evals += 1;
                    if results.len() < ef {
                        results.push(e);
                        frontier.push(Reverse(e));
                    } else if let Some(&worst) = results.peek() {
                        if e < worst {
                            results.pop();
                            results.push(e);
                            frontier.push(Reverse(e));
                        }
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Insert node `id` (Malkov & Yashunin Alg. 1): descend to the node's
    /// level, then connect to a diversity-selected subset of the found
    /// candidates on each layer down to 0, up to the per-layer cap
    /// (`max_m0` on layer 0, `m` above; see [`Hnsw::select_diverse`]),
    /// pruning any neighbor list that overflows its cap back through the
    /// same heuristic.
    fn insert(&mut self, id: u32, visited: &mut Visited, stats: &mut HnswStats) {
        let level = self.levels[id as usize] as usize;
        self.links[id as usize] = vec![Vec::new(); level + 1];
        let q = self.point(id).to_vec();
        let Some(entry) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return;
        };

        let mut ep = Entry {
            dist: dist_sq(self.point(entry), &q),
            id: entry,
        };
        stats.dist_evals += 1;
        for layer in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_step(&q, ep, layer, stats);
        }

        let ef = self.params.ef_construction;
        let mut entries = vec![ep];
        for layer in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(&q, &entries, layer, ef, visited, stats);
            let cap = if layer == 0 {
                self.params.max_m0
            } else {
                self.params.m
            };
            let selected: Vec<u32> = self
                .select_diverse(found.clone(), cap, stats)
                .into_iter()
                .map(|e| e.id)
                .collect();
            self.links[id as usize][layer] = selected.clone();
            for &u in &selected {
                let list = &mut self.links[u as usize][layer];
                list.push(id);
                if list.len() > cap {
                    self.prune(u, layer, cap, stats);
                }
            }
            entries = found;
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
    }

    /// Shrink `node`'s neighbor list on `layer` back to `cap` entries via
    /// the diversity heuristic (measured from `node`'s own point).
    fn prune(&mut self, node: u32, layer: usize, cap: usize, stats: &mut HnswStats) {
        let p = self.point(node);
        let scored: Vec<Entry> = self.links[node as usize][layer]
            .iter()
            .map(|&u| {
                stats.dist_evals += 1;
                Entry {
                    dist: dist_sq(self.point(u), p),
                    id: u,
                }
            })
            .collect();
        let kept = self.select_diverse(scored, cap, stats);
        self.links[node as usize][layer] = kept.into_iter().map(|e| e.id).collect();
    }

    /// The neighbor selection of Malkov & Yashunin Alg. 4
    /// (`extendCandidates = false`, `keepPrunedConnections = true`): scan
    /// `cands` closest-first, keep an entry only if it is at least as
    /// close to the base point as to every entry already kept, then
    /// backfill any remaining capacity with the nearest discarded
    /// entries. Plain closest-`cap` truncation points every link into the
    /// local cluster and can disconnect layer 0 on clustered data; the
    /// heuristic preserves the long-range bridges (paper §4.1).
    /// Deterministic: candidates are scanned in the total `(dist, id)`
    /// order and all comparisons are between finite distances (poisoned
    /// points never enter the graph). Entries must carry distances
    /// measured from the base point.
    fn select_diverse(
        &self,
        mut cands: Vec<Entry>,
        cap: usize,
        stats: &mut HnswStats,
    ) -> Vec<Entry> {
        cands.sort_unstable();
        if cands.len() <= cap {
            return cands;
        }
        let mut kept: Vec<Entry> = Vec::with_capacity(cap);
        let mut spilled: Vec<Entry> = Vec::new();
        for e in cands {
            if kept.len() >= cap {
                break;
            }
            let diverse = kept.iter().all(|s| {
                stats.dist_evals += 1;
                dist_sq(self.point(e.id), self.point(s.id)) >= e.dist
            });
            if diverse {
                kept.push(e);
            } else {
                spilled.push(e);
            }
        }
        for e in spilled {
            if kept.len() >= cap {
                break;
            }
            kept.push(e);
        }
        kept.sort_unstable();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift point cloud (the harness-wide generator).
    fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
            .collect()
    }

    /// Exact serial k-NN for cross-checking (ids closest-first, `(dist,
    /// id)` tie order — the same order the graph uses).
    fn exact_knn(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (dist_sq(p, query), i))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn level_hash_is_plausibly_geometric() {
        let params = HnswParams::default();
        let levels: Vec<usize> = (0..10_000).map(|id| params.level_of(id)).collect();
        let zero = levels.iter().filter(|&&l| l == 0).count();
        // P(level 0) = 1 - m^-1 ≈ 0.9375 for m=16.
        assert!((8_500..=9_900).contains(&zero), "level-0 mass: {zero}");
        assert!(levels.iter().all(|&l| l <= MAX_LEVEL));
        assert!(*levels.iter().max().unwrap() >= 1, "some node must rise");
    }

    #[test]
    fn repeat_builds_are_structurally_identical() {
        let pts = cloud(400, 8, 0xA11CE);
        let params = HnswParams::default().with_seed(7);
        let a = Hnsw::build(pts.clone(), params);
        let b = Hnsw::build(pts.clone(), params);
        assert_eq!(a.digest(), b.digest());
        let q = &pts[13];
        assert_eq!(a.knn(q, 10), b.knn(q, 10));
        // A different seed grows a different graph.
        let c = Hnsw::build(pts, params.with_seed(8));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn near_exhaustive_ef_recovers_exact_knn() {
        // With ef ≥ n on a well-connected small graph the beam search
        // degenerates to an exhaustive scan of the component.
        let pts = cloud(300, 6, 0xBEEF);
        let graph = Hnsw::build(pts.clone(), HnswParams::default().with_ef_search(300));
        for qi in [0, 17, 299] {
            let got = graph.knn(&pts[qi], 10);
            assert_eq!(got, exact_knn(&pts, &pts[qi], 10), "query {qi}");
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let pts = cloud(500, 12, 0xD0E);
        let graph = Hnsw::build(pts.clone(), HnswParams::default());
        for qi in [0, 250, 499] {
            let got = graph.knn(&pts[qi], 3);
            assert_eq!(got.first(), Some(&qi), "query {qi}: {got:?}");
        }
    }

    #[test]
    fn poisoned_points_are_never_linked_or_returned() {
        let mut pts = cloud(200, 5, 0xF00D);
        for i in [0, 3, 77, 199] {
            pts[i][1] = f64::NAN;
        }
        let graph = Hnsw::build(pts.clone(), HnswParams::default());
        for (id, layers) in graph.links.iter().enumerate() {
            for layer in layers {
                for &nb in layer {
                    assert!(
                        !graph.poisoned[nb as usize],
                        "node {id} links poisoned {nb}"
                    );
                }
            }
        }
        for qi in [1, 50] {
            let got = graph.knn(&pts[qi], 50);
            assert!(got.iter().all(|&i| !graph.poisoned[i]), "{got:?}");
            assert_eq!(got.len(), 50);
        }
    }

    #[test]
    fn all_points_poisoned_yields_empty_answers() {
        let pts = vec![vec![f64::NAN, 1.0]; 8];
        let graph = Hnsw::build(pts, HnswParams::default());
        assert!(graph.entry.is_none());
        assert!(graph.knn(&[0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn k_edge_cases() {
        let pts = cloud(50, 4, 0xE);
        let graph = Hnsw::build(pts.clone(), HnswParams::default());
        assert!(graph.knn(&pts[0], 0).is_empty());
        // k > n clamps to the reachable set.
        let all = graph.knn(&pts[0], 500);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn shared_is_memoized_and_identical_to_fresh() {
        let pts = cloud(150, 6, 0xC0FF_EE01);
        let params = HnswParams::default();
        let a = Hnsw::shared(&pts, params);
        let b = Hnsw::shared(&pts, params);
        assert!(Arc::ptr_eq(&a, &b), "registry must share one graph");
        assert_eq!(a.digest(), Hnsw::build(pts.clone(), params).digest());
        // Different build params occupy a different artifact slot.
        let c = Hnsw::shared(&pts, params.with_m(8));
        assert!(!Arc::ptr_eq(&a, &c));
        // A search-only knob shares the build.
        let d = Hnsw::shared(&pts, params.with_ef_search(99));
        assert!(Arc::ptr_eq(&a, &d), "ef_search must not rebuild");
        // ...and never leaks into the shared graph: the stored params are
        // canonical regardless of which registrant came first.
        assert_eq!(d.params().ef_search, HnswParams::default().ef_search);
    }

    #[test]
    fn shared_search_width_ignores_registration_order() {
        // First registrant asks for a deliberately starved ef_search. A
        // later caller wanting a wide search must get it — the width is a
        // per-query argument, not a property of whoever registered first.
        let pts = cloud(300, 6, 0xC0FF_EE02);
        let params = HnswParams::default();
        let first = Hnsw::shared(&pts, params.with_ef_search(1));
        let wide = Hnsw::shared(&pts, params.with_ef_search(300));
        assert!(Arc::ptr_eq(&first, &wide), "one artifact slot");
        for qi in [0, 150, 299] {
            // ef = n degenerates to an exhaustive scan of the component,
            // so the explicit-ef answer matches exact kNN even though the
            // graph was registered with ef_search = 1.
            let got = wide.knn_with_ef(&pts[qi], 10, 300);
            assert_eq!(got, exact_knn(&pts, &pts[qi], 10), "query {qi}");
            // The explicit width also matches a privately built graph
            // whose stored ef_search is that same width.
            let own = Hnsw::build(pts.clone(), params.with_ef_search(300));
            assert_eq!(got, own.knn(&pts[qi], 10), "query {qi}");
        }
    }

    #[test]
    fn extended_graph_is_bit_identical_to_full_build() {
        let pts = cloud(360, 7, 0x57EA4);
        let params = HnswParams::default().with_seed(3);
        let full = Hnsw::build(pts.clone(), params);
        // One big extension and a chain of small ones both land on the
        // full build's digest.
        let prefix = Hnsw::build(pts[..200].to_vec(), params);
        assert_eq!(prefix.extended(&pts).digest(), full.digest());
        let mut grown = Hnsw::build(pts[..100].to_vec(), params);
        for stop in [150, 220, 360] {
            grown = grown.extended(&pts[..stop]);
        }
        assert_eq!(grown.len(), 360);
        assert_eq!(grown.digest(), full.digest());
        assert_eq!(grown.knn(&pts[42], 10), full.knn(&pts[42], 10));
        // A no-op extension is a plain clone.
        assert_eq!(full.extended(&pts).digest(), full.digest());
    }

    #[test]
    fn extension_handles_poisoned_new_rows() {
        let mut pts = cloud(120, 4, 0xBAD);
        pts[110][0] = f64::NAN;
        let params = HnswParams::default();
        let grown = Hnsw::build(pts[..100].to_vec(), params).extended(&pts);
        assert_eq!(grown.digest(), Hnsw::build(pts.clone(), params).digest());
        assert!(grown.knn(&pts[0], 120).iter().all(|&i| i != 110));
    }

    #[test]
    #[should_panic(expected = "shorter than the indexed prefix")]
    fn extension_shorter_than_prefix_panics() {
        let pts = cloud(20, 3, 5);
        let graph = Hnsw::build(pts.clone(), HnswParams::default());
        let _ = graph.extended(&pts[..10]);
    }

    #[test]
    fn layer0_lists_use_the_max_m0_cap() {
        let pts = cloud(600, 4, 0x10_CA0);
        let params = HnswParams::default();
        let graph = Hnsw::build(pts, params);
        let mut max_deg0 = 0;
        for layers in &graph.links {
            if let Some(l0) = layers.first() {
                max_deg0 = max_deg0.max(l0.len());
                assert!(l0.len() <= params.max_m0, "layer-0 cap violated");
            }
            for upper in layers.iter().skip(1) {
                assert!(upper.len() <= params.m, "upper-layer cap violated");
            }
        }
        // Fresh nodes link up to max_m0 (not just m) neighbors on layer 0;
        // on a dense 600-point cloud some node must exceed the m cap.
        assert!(
            max_deg0 > params.m,
            "max layer-0 degree {max_deg0} never exceeds m = {}",
            params.m
        );
    }

    #[test]
    fn stats_count_real_work() {
        let pts = cloud(400, 8, 0x57A75);
        let graph = Hnsw::build(pts.clone(), HnswParams::default());
        let (ids, stats) = graph.knn_with_stats(&pts[42], 10);
        assert_eq!(ids.len(), 10);
        assert!(stats.hops > 0);
        assert!(stats.dist_evals >= ids.len());
        // Sublinearity sanity: far fewer evals than a full scan would do.
        assert!(
            stats.dist_evals < pts.len(),
            "dist_evals {} >= n {}",
            stats.dist_evals,
            pts.len()
        );
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_panics() {
        let _ = Hnsw::build(Vec::new(), HnswParams::default());
    }

    #[test]
    #[should_panic(expected = "invalid params")]
    fn invalid_params_panic() {
        let _ = Hnsw::build(vec![vec![1.0]], HnswParams::default().with_m(1));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_panics() {
        let _ = Hnsw::build(vec![vec![1.0], vec![1.0, 2.0]], HnswParams::default());
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn query_dim_mismatch_panics() {
        let graph = Hnsw::build(cloud(10, 3, 1), HnswParams::default());
        let _ = graph.knn(&[0.0, 0.0], 1);
    }

    #[test]
    fn visited_epoch_wraps_safely() {
        let mut v = Visited::new(4);
        v.epoch = u32::MAX - 1;
        v.next_epoch();
        assert!(v.insert(2));
        assert!(!v.insert(2));
        v.next_epoch(); // wraps: stamps reset
        assert!(v.insert(2));
        assert_eq!(v.epoch, 1);
    }
}
