//! # hinn — Human-computer Interactive Nearest Neighbor search
//!
//! A from-scratch Rust reproduction of
//! *Charu C. Aggarwal, "Towards Meaningful High-Dimensional Nearest Neighbor
//! Search by Human-Computer Interaction", ICDE 2002.*
//!
//! This facade crate re-exports every subsystem of the workspace under one
//! roof, so downstream users can depend on `hinn` alone:
//!
//! * [`par`] — the deterministic data-parallel layer: fixed-chunk
//!   map/reduce on `std::thread::scope` whose results are bit-identical
//!   to serial execution for every thread budget.
//! * [`obs`] — structured tracing and session telemetry: hierarchical
//!   spans, typed counters/gauges/histograms, and JSON/text reports,
//!   with near-zero cost when no recorder is installed.
//! * [`linalg`] — dense vectors/matrices, Jacobi eigensolver, orthonormal
//!   subspaces and projections.
//! * [`kde`] — Gaussian kernel density estimation on 2-D grids (fixed and
//!   adaptive bandwidths), density connectivity (Def. 2.2), iso-density
//!   contours, lateral density plots, 1-D marginals.
//! * [`data`] — synthetic projected-cluster workloads, uniform/noise data,
//!   simulated UCI datasets *and* parsers for the real UCI files, feature
//!   scaling, CSV I/O.
//! * [`user`] — the user-model abstraction: simulated users (heuristic,
//!   polygonal, noisy, oracle, scripted), a real terminal-interactive
//!   user, and session recording/replay.
//! * [`viz`] — ASCII/ANSI heatmaps, sparklines, and dependency-free SVG
//!   rendering of scatter plots, heatmaps, and isometric density surfaces.
//! * [`baselines`] — exact k-NN under L_p metrics, k-NN classification,
//!   automated projected-NN and distinctiveness-sensitive baselines, and
//!   the VA-file index.
//! * [`index`] — the deterministic seeded HNSW graph behind
//!   `CandidateSource::Hnsw`: sublinear approximate candidates, shared
//!   per (dataset, build params) through the artifact registry.
//! * [`metrics`] — precision/recall, accuracy, relative contrast and
//!   ε-instability, rank agreement, steep-drop (natural neighbor count)
//!   analysis.
//! * [`cache`] — shared per-dataset artifacts, deterministic LRU caches,
//!   and buffer pools behind the batch-serving fast path; warm and cold
//!   runs stay bit-identical.
//! * [`core`] — the interactive search system itself (Figs. 2–8 of the
//!   paper): graded query-centered projections, visual profiles, preference
//!   counts, meaningfulness quantification, meaninglessness diagnosis,
//!   batch evaluation, per-neighbor explanations, and session reports.
//! * [`serve`] — the multi-tenant serving layer: a bounded table of
//!   suspended sans-io session engines with snapshot-based eviction,
//!   transparent restore, and admission control.
//! * [`net`] — the TCP front-end over [`serve`]: `hinn-session v1` over
//!   length-prefixed checksummed frames, typed refusal of every wire
//!   fault, overload shedding that degrades before refusing, per-tenant
//!   fairness, and graceful drain.
//!
//! ## Quickstart
//!
//! ```
//! use hinn::prelude::*;
//! use hinn::data::projected::{ProjectedClusterSpec, generate_projected_clusters};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let spec = ProjectedClusterSpec::small_test();
//! let data = generate_projected_clusters(&spec, &mut rng);
//! let query = data.points[data.cluster_members(0)[0]].clone();
//!
//! let config = SearchConfig::default().with_support(20);
//! let mut user = HeuristicUser::default();
//! let handle = DatasetHandle::new(&data.points).expect("dataset");
//! let outcome = InteractiveSearch::new(config)
//!     .run_with(&handle, &query, &mut user, RunOptions::default())
//!     .expect("session")
//!     .into_outcome();
//! assert!(!outcome.neighbors.is_empty());
//! ```
//!
//! ## Streaming ingestion
//!
//! A [`prelude::DatasetHandle`] is a live, epoch-versioned dataset: `append`
//! and `delete` advance it to a new immutable epoch snapshot (with a chained
//! fingerprint), while sessions keep computing against the epoch they pinned
//! at open — resuming onto changed data is a typed refusal, never a silent
//! answer from the wrong dataset.
//!
//! ```
//! use hinn::prelude::*;
//!
//! let handle = DatasetHandle::new(&[vec![0.0, 0.0], vec![1.0, 1.0]]).expect("dataset");
//! let e0 = handle.epoch();
//! let snap = handle.append(&[vec![2.0, 2.0]]).expect("append");
//! assert_eq!(snap.epoch(), e0 + 1);
//! handle.delete(&[0]).expect("delete");
//! assert_eq!(handle.snapshot().len(), 2); // 3 rows, 1 tombstoned
//! ```

pub use hinn_baselines as baselines;
pub use hinn_cache as cache;
pub use hinn_core as core;
pub use hinn_data as data;
pub use hinn_fault as fault;
pub use hinn_index as index;
pub use hinn_kde as kde;
pub use hinn_linalg as linalg;
pub use hinn_metrics as metrics;
pub use hinn_net as net;
pub use hinn_obs as obs;
pub use hinn_par as par;
pub use hinn_serve as serve;
pub use hinn_user as user;
pub use hinn_viz as viz;

/// The types nearly every `hinn` program touches, importable in one line:
/// configure a search ([`SearchConfig`]), run it against a user model
/// ([`InteractiveSearch::run_with`] / [`HeuristicUser`]), drive it
/// step-by-step ([`SessionEngine`] / [`Step`] / [`UserResponse`]), or
/// serve many sessions at once ([`SessionManager`] / [`ServeConfig`]).
///
/// ```
/// use hinn::prelude::*;
/// ```
pub mod prelude {
    pub use hinn_core::{
        BatchRunner, CandidateSource, DatasetHandle, EpochError, EpochSnapshot, HinnError,
        InteractiveSearch, Parallelism, ProjectionMode, RunOptions, RunOutput, SearchConfig,
        SearchDiagnosis, SearchOutcome, SessionEngine, SessionSnapshot, Step, ViewRequest,
    };
    pub use hinn_index::HnswParams;
    pub use hinn_net::{NetClient, NetServer, NetServerConfig, ShedPolicy};
    pub use hinn_serve::{ServeConfig, ServeError, SessionId, SessionManager};
    pub use hinn_user::{
        HeuristicUser, ScriptedUser, TerminalUser, UserModel, UserResponse, ViewContext,
    };
}
