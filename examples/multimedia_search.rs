//! Multimedia similarity search — one of the paper's motivating domains.
//!
//! Simulates a content-based image retrieval setting: every "image" is a
//! 32-dimensional feature vector (color/texture descriptors). Images of the
//! same visual concept agree on a handful of descriptive features and vary
//! freely on the rest, so full-dimensional L2 similarity is diluted by
//! irrelevant features — the classic regime where the paper argues nearest
//! neighbors stop being meaningful.
//!
//! The example compares, for the same query image:
//!   * full-dimensional L2 k-NN (the baseline of Table 2),
//!   * the automated projected-NN method of reference [15],
//!   * the human-computer interactive search (with the simulated user).
//!
//! ```sh
//! cargo run --release --example multimedia_search
//! ```

use hinn::baselines::{knn_indices, projected_knn, Metric, ProjectedNnConfig};
use hinn::data::uci::{class_subspace_dataset_detailed, ClassSpec};
use hinn::metrics::PrecisionRecall;
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2002);

    // An image library: 8 visual concepts × 150 images, 32 features, each
    // concept determined by 6 of them.
    let spec = ClassSpec {
        name: "image-library".into(),
        class_sizes: vec![150; 8],
        dim: 32,
        signal_dims: 6,
        subclusters: 1,
        signal_sigma: 0.6,
        sigma_spread: 1.0,
        range: 10.0,
        scatter_fraction: 0.05,
    };
    let (library, mode_ids, _modes) = class_subspace_dataset_detailed(&spec, &mut rng);
    let concept = 3usize;
    let relevant = library.cluster_members(concept);
    // Query: a structured member of the concept (not one of the hard
    // unstructured instances every method fails on).
    let query_idx = *relevant
        .iter()
        .find(|&&i| {
            relevant
                .iter()
                .filter(|&&j| mode_ids[j] == mode_ids[i])
                .count()
                > 10
        })
        .expect("concept has a mode");
    let query = library.points[query_idx].clone();
    let k = relevant.len();

    println!(
        "library: {} images, {} features; query concept has {} relevant images\n",
        library.len(),
        library.dim(),
        k
    );

    // --- Baseline 1: full-dimensional L2.
    let l2 = knn_indices(&library.points, &query, k, Metric::L2);
    report("full-dim L2 k-NN", &l2, &relevant);

    // --- Baseline 2: automated projected NN [15].
    let pnn = projected_knn(
        &library.points,
        &query,
        k,
        &ProjectedNnConfig {
            support: 100,
            proj_dim: 6,
            refine_iters: 3,
        },
    );
    report("projected NN [15]", &pnn.neighbors, &relevant);

    // --- The interactive system.
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(SearchConfig::default().with_support(k))
        .run_with(
            &DatasetHandle::new(&library.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    report("interactive (this paper)", &outcome.neighbors, &relevant);

    if let Some(natural) = outcome.natural_neighbors() {
        report(
            &format!("interactive natural set (k = {})", natural.len()),
            &natural,
            &relevant,
        );
        println!(
            "\nThe session also *quantified* its own quality: the natural set size \
             was discovered from the probability cliff, not supplied by the user."
        );
    } else {
        println!("\nsession diagnosis: {:?}", outcome.diagnosis);
    }
}

fn report(name: &str, retrieved: &[usize], relevant: &[usize]) {
    let pr = PrecisionRecall::compute(retrieved, relevant);
    println!(
        "{name:<34} precision {:5.1}%   recall {:5.1}%",
        pr.precision * 100.0,
        pr.recall * 100.0
    );
}
