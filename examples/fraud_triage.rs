//! Fraud triage — the data-mining use case from the paper's introduction.
//!
//! An analyst has one confirmed-fraud transaction and wants "more like
//! this". Transactions carry 24 behavioral features; a coordinated fraud
//! ring manipulates only 5 of them, so in full dimensionality ring members
//! look no closer to each other than honest traffic does. The interactive
//! search surfaces the ring *and* tells the analyst how many transactions
//! naturally belong to it — the "natural number of nearest neighbors" the
//! paper emphasizes for applications where the right k is unknown a priori.
//!
//! ```sh
//! cargo run --release --example fraud_triage
//! ```

use hinn::baselines::{knn_indices, Metric};
use hinn::data::projected::randn;
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let d = 24;
    let n_honest = 2400;
    let ring_size = 90;

    // Honest traffic: uniform behavioral noise.
    let mut transactions: Vec<Vec<f64>> = (0..n_honest)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();

    // The fraud ring: coordinated on 5 behavioral features (velocity,
    // merchant mix, time-of-day, amount pattern, device reuse), random
    // elsewhere.
    let ring_dims = [2usize, 7, 11, 16, 21];
    let ring_center: Vec<f64> = ring_dims
        .iter()
        .map(|_| rng.gen_range(20.0..80.0))
        .collect();
    for _ in 0..ring_size {
        let mut t: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
        for (k, &dim) in ring_dims.iter().enumerate() {
            t[dim] = ring_center[k] + 1.0 * randn(&mut rng);
        }
        transactions.push(t);
    }
    let ring_ids: Vec<usize> = (n_honest..n_honest + ring_size).collect();

    // The confirmed fraud case the analyst starts from.
    let seed_case = transactions[ring_ids[0]].clone();

    println!(
        "{} transactions, {} features; one confirmed fraud in hand, ring size unknown to the analyst\n",
        transactions.len(),
        d
    );

    // What plain L2 "similar transactions" would hand the analyst:
    let l2 = knn_indices(&transactions, &seed_case, ring_size, Metric::L2);
    let l2_hits = l2.iter().filter(|i| ring_ids.contains(i)).count();
    println!(
        "full-dim L2 top-{ring_size}: {l2_hits}/{ring_size} actual ring members \
         ({:.0}% of the screen is wasted on honest traffic)",
        100.0 * (1.0 - l2_hits as f64 / ring_size as f64)
    );

    // The interactive triage session.
    let mut analyst = HeuristicUser::default();
    let outcome = InteractiveSearch::new(SearchConfig::default().with_support(40))
        .run_with(
            &DatasetHandle::new(&transactions).expect("dataset"),
            &seed_case,
            &mut analyst,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    match &outcome.diagnosis {
        SearchDiagnosis::Meaningful { natural_k, .. } => {
            let natural = outcome.natural_neighbors().expect("meaningful");
            let hits = natural.iter().filter(|i| ring_ids.contains(i)).count();
            println!(
                "\ninteractive session ({} views, {} dismissed): \
                 flagged a natural group of {natural_k} transactions",
                outcome.transcript.total_views(),
                outcome.transcript.total_dismissed()
            );
            println!(
                "of those, {hits} are true ring members \
                 (precision {:.0}%, ring recall {:.0}%)",
                100.0 * hits as f64 / natural.len() as f64,
                100.0 * hits as f64 / ring_size as f64
            );
            println!(
                "\nThe analyst did not have to guess k: the probability cliff put \
                 the ring's natural size at {natural_k} (true size {ring_size})."
            );
        }
        SearchDiagnosis::NotMeaningful { reason, .. } => {
            println!("\nsession verdict: no coherent ring — {reason}");
        }
    }
}
