//! Candidate sources: seeding a session from a deterministic HNSW graph.
//!
//! By default a session ranks *every* point ([`CandidateSource::Full`]).
//! On large datasets the interactive loop only ever surfaces a few
//! hundred neighbors, so the engine can instead seed its alive set from
//! an approximate index: [`CandidateSource::hnsw`] builds (or reuses — the
//! graph is a shared, fingerprint-keyed dataset artifact) a deterministic
//! HNSW graph and hands the session the query's top-`budget` candidates.
//!
//! The graph is seeded: a fixed [`HnswParams::seed`] produces the same
//! graph, the same candidate lists, and therefore byte-identical session
//! transcripts under every thread budget. Rerun this example with
//! `HINN_THREADS=1` (or 8) and nothing below changes.
//!
//! ```sh
//! cargo run --release --example index_candidates
//! ```

use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::index::Hnsw;
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 4000-point, 12-d dataset with planted 4-d clusters.
    let spec = ProjectedClusterSpec {
        n_points: 4000,
        dim: 12,
        n_clusters: 4,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();

    // Direct use of the graph, outside any session: exact same API shape
    // as the baselines (build once, query many times).
    let graph = Hnsw::build(data.points.clone(), HnswParams::default());
    let top = graph.knn(&query, 10);
    println!(
        "hnsw graph: n={} max_level={} — query's top-10: {:?}",
        graph.len(),
        graph.max_level(),
        top
    );

    // One session per candidate source. `Full` ranks all 4000 points;
    // `hnsw(600)` ranks only the graph's 600 nearest candidates.
    let run = |candidates: CandidateSource| {
        let config = SearchConfig::default()
            .with_support(20)
            .with_candidate_source(candidates);
        let mut user = HeuristicUser::default();
        InteractiveSearch::new(config)
            .run_with(
                &DatasetHandle::new(&data.points).expect("dataset"),
                &query,
                &mut user,
                RunOptions::default(),
            )
            .expect("session")
            .into_outcome()
    };
    let full = run(CandidateSource::Full);
    let seeded = run(CandidateSource::hnsw(600));

    for (label, outcome) in [("full", &full), ("hnsw(600)", &seeded)] {
        println!(
            "{label:>9}: {} neighbors, {} majors, meaningful={}",
            outcome.neighbors.len(),
            outcome.majors_run,
            outcome.diagnosis.is_meaningful()
        );
    }

    // How much of the exhaustive answer the seeded session kept: the
    // overlap of the two top-k lists (they agree whenever the true
    // neighbors sit inside the graph's candidate set — the usual case).
    let kept = full
        .neighbors
        .iter()
        .filter(|i| seeded.neighbors.contains(i))
        .count();
    println!(
        "overlap: {kept}/{} of the full session's neighbors survive seeding",
        full.neighbors.len()
    );
}
