//! Batch evaluation with one shared thread budget.
//!
//! A deployment rarely asks one question: an analyst triages a *list* of
//! suspicious records, a benchmark replays a query log. [`BatchRunner`]
//! runs the interactive loop for each query with a fresh simulated user,
//! and divides one total [`Parallelism`] budget between inter-query
//! workers and each session's intra-query hot paths (KDE grids, PCA,
//! scans) so nested parallelism never oversubscribes the machine.
//!
//! Results are bit-identical for every budget — rerun with
//! `HINN_THREADS=1` (or 8) and the answers below do not change a digit;
//! only the telemetry timings move.
//!
//! The whole batch runs under a `hinn-obs` session recorder, so the
//! bottom of the output is the aggregated telemetry report: the span tree
//! of the pipeline (session → major → minor → KDE/PCA/scan), work
//! counters, and per-query wall-time histograms.
//!
//! ```sh
//! cargo run --release --example batch_queries
//! ```

use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::obs::SessionRecorder;
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // A 5000-point, 16-d data set with planted 5-d clusters.
    let spec = ProjectedClusterSpec {
        n_points: 5000,
        dim: 16,
        n_clusters: 4,
        cluster_dim: 5,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(19);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);

    // One query from each planted cluster.
    let queries: Vec<Vec<f64>> = (0..4)
        .map(|c| data.points[data.cluster_members(c)[0]].clone())
        .collect();

    // The config's parallelism (HINN_THREADS, else all cores) is the
    // *total* budget; BatchRunner splits it across query workers.
    let config = SearchConfig::default().with_support(20);
    let budget = config.parallelism;
    let runner = BatchRunner::new(&DatasetHandle::new(&data.points).expect("dataset"), config)
        .with_parallelism(budget);

    println!(
        "running {} queries over N={} d={} (budget: {} threads)\n",
        queries.len(),
        spec.n_points,
        spec.dim,
        budget.threads()
    );
    // Trace the whole batch: every session records into one recorder,
    // and the deterministic shard merge below yields one report.
    let recorder = Arc::new(SessionRecorder::new());
    let reports = {
        let _guard = hinn::obs::install(recorder.clone());
        runner.run(&queries, || Box::new(HeuristicUser::default()))
    };

    for r in &reports {
        // The runner is a fault boundary: a query that failed both its
        // attempts comes back as QueryReport::Failed with a typed error
        // instead of panicking the batch.
        match r.neighbors() {
            Some(neighbors) => {
                let (shown, dismissed) = r.views().unwrap_or((0, 0));
                println!(
                    "query {}: {:>4} neighbors, {} majors, {} views ({} dismissed) — {} \
                     [{:.1} ms on {} intra-query thread(s)]",
                    r.query_index(),
                    neighbors.len(),
                    r.majors_run().unwrap_or(0),
                    shown,
                    dismissed,
                    match r.diagnosis() {
                        Some(d) if d.is_meaningful() => "meaningful",
                        _ => "not meaningful",
                    },
                    r.wall().as_secs_f64() * 1e3,
                    r.intra_threads(),
                );
            }
            None => println!(
                "query {}: FAILED ({})",
                r.query_index(),
                r.error().map(|e| e.to_string()).unwrap_or_default()
            ),
        }
    }

    // Same queries under a serial budget: the answers must match exactly.
    let serial = BatchRunner::new(
        &DatasetHandle::new(&data.points).expect("dataset"),
        SearchConfig::default().with_support(20),
    )
    .with_parallelism(Parallelism::serial())
    .run(&queries, || Box::new(HeuristicUser::default()));
    let identical = serial
        .iter()
        .zip(&reports)
        .all(|(a, b)| a.neighbors() == b.neighbors() && a.majors_run() == b.majors_run());
    println!(
        "\nserial rerun identical: {}",
        if identical { "yes" } else { "NO — BUG" }
    );

    println!(
        "\n=== session telemetry ===\n{}",
        recorder.report().to_text()
    );
}
