//! Profiling a session with the flight recorder: run a traced search,
//! print the timed span tree and flame summary, export a Perfetto trace,
//! and read the latency percentiles.
//!
//! ```sh
//! cargo run --release --example trace_session
//! ```
//!
//! Then load `target/trace_session.json` into <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to browse the same tree interactively. The
//! `HINN_OBS_TRACE=/path.json` environment variable does the same export
//! for any traced run, with no code changes.

use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ProjectedClusterSpec {
        n_points: 1500,
        ..ProjectedClusterSpec::case1()
    };
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let mut user = HeuristicUser::default();

    // `RunOptions::traced()` installs a trace-mode recorder for the
    // session: every span enter/exit is timestamped into per-thread
    // buffers, merged deterministically at report time. The outcome is
    // bit-identical to an untraced run — tracing only *observes*.
    let out = InteractiveSearch::new(SearchConfig::default().with_support(40))
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::traced(),
        )
        .expect("interactive session");
    let report = out.telemetry.as_ref().expect("traced run yields telemetry");

    // Where did the wall clock go? The span tree shows structure and
    // counts; the flame summary adds inclusive/exclusive times per path.
    println!("== span tree ==\n{}", report.span_tree_text());
    println!("== flame summary ==\n{}", report.flame_text());

    // How well does the tree explain the session? (The flight-recorder
    // test suite holds this at ≥95% for the session root.)
    if let Some(coverage) = report.span_coverage("search.session") {
        println!(
            "session time covered by child spans: {:.1}%",
            coverage * 100.0
        );
    }

    // Tail latency, not just means: every histogram carries a
    // relative-error quantile sketch (α = 1%).
    println!("== latency percentiles ==");
    for (name, hist) in &report.histograms {
        println!(
            "{name:<24} n={:<5} p50={:.3} p90={:.3} p99={:.3}",
            hist.count,
            hist.p50(),
            hist.p90(),
            hist.p99()
        );
    }

    // The same trace, for Perfetto.
    let path = "target/trace_session.json";
    std::fs::write(path, report.to_chrome_trace()).expect("write trace");
    println!("\nwrote {path} — load it in https://ui.perfetto.dev");
}
