//! The diagnosis path (§4.2): on truly noisy high-dimensional data, the
//! system should *report* that nearest-neighbor search is not meaningful —
//! not fabricate an answer.
//!
//! Runs the identical pipeline on (a) uniform 20-d data and (b) the same
//! data with one projected cluster planted, and prints the contrast
//! statistics, the session behavior, and the verdicts side by side.
//!
//! ```sh
//! cargo run --release --example diagnose_meaningless
//! ```

use hinn::data::projected::randn;
use hinn::data::uniform::uniform_hypercube;
use hinn::metrics::contrast::{epsilon_instability, DistanceStats};
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 2000;
    let d = 20;

    // (a) Pure uniform noise — the canonical meaningless case.
    let uniform = uniform_hypercube(n, d, 100.0, &mut rng);
    let noise_query: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();

    // (b) Same background + a 120-point cluster tight in 6 dims, query at
    // its center.
    let mut clustered = uniform.points.clone();
    let center: Vec<f64> = (0..d).map(|_| rng.gen_range(10.0..90.0)).collect();
    for _ in 0..120 {
        let mut p: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
        for k in 0..6 {
            p[k] = center[k] + 1.5 * randn(&mut rng);
        }
        clustered.push(p);
    }
    let cluster_query = center.clone();

    for (name, data, query) in [
        ("uniform noise", &uniform.points, &noise_query),
        ("planted cluster", &clustered, &cluster_query),
    ] {
        println!("=== {name} ===");
        let dists: Vec<f64> = data
            .iter()
            .map(|p| hinn::linalg::vector::dist(p, query))
            .collect();
        let stats = DistanceStats::compute(&dists);
        println!(
            "distance distribution: min {:.1}, max {:.1}, relative contrast {:.3}, CV {:.3}",
            stats.min,
            stats.max,
            stats.relative_contrast(),
            stats.coefficient_of_variation()
        );
        println!(
            "query instability: {:.1}% of all points lie within 10% of the nearest (Beyer et al.)",
            100.0 * epsilon_instability(&dists, 0.1)
        );

        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(SearchConfig::default().with_support(40))
            .run_with(
                &DatasetHandle::new(data).expect("dataset"),
                query,
                &mut user,
                hinn::core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome();
        println!(
            "session: {} views, {} dismissed, {} major iterations",
            outcome.transcript.total_views(),
            outcome.transcript.total_dismissed(),
            outcome.majors_run
        );
        match &outcome.diagnosis {
            SearchDiagnosis::Meaningful {
                natural_k,
                gap,
                top_mean,
            } => println!(
                "verdict: MEANINGFUL — natural neighbor set of {natural_k} \
                 (cliff {gap:.2}, top mean {top_mean:.2})\n"
            ),
            SearchDiagnosis::NotMeaningful { reason, .. } => {
                println!("verdict: NOT MEANINGFUL — {reason}\n");
            }
        }
    }

    println!(
        "Same code, same user model, opposite verdicts: the system can tell a \
         real query cluster from the emptiness of a uniform hypercube (§4.2)."
    );
}
