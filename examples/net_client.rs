//! Serving over TCP: start a `hinn-net` front-end in-process, then drive
//! interactive sessions against it from plain TCP clients — the same
//! wire protocol a remote deployment would speak.
//!
//! ```sh
//! cargo run --example net_client
//! ```
//!
//! The demo shows the full serving story: a bounded server with an
//! overload-shedding ladder, a client session driven view by view over
//! `hinn-session v1` frames, a reconnect that resumes the session from
//! the warm tier, and a graceful drain.

use hinn::data::projected::{generate_projected_clusters, ProjectedClusterSpec};
use hinn::net::{NetClient, Reply, Request};
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A projected-cluster workload (the paper's §4.1 data), served to
    // every connecting client.
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ProjectedClusterSpec {
        n_points: 800,
        ..ProjectedClusterSpec::case1()
    };
    let data = generate_projected_clusters(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();

    // The server: a bounded session table behind a loopback listener on
    // an ephemeral port. The default shed ladder degrades new sessions
    // (coarser KDE grids, fewer minor iterations) as occupancy climbs,
    // and refuses with a typed `overloaded` + retry hint only when full.
    let search = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(20)
    };
    let serve = ServeConfig::new(search).with_max_sessions(32);
    let server = hinn::net::NetServer::bind(
        NetServerConfig::new(serve),
        DatasetHandle::new(&data.points).expect("dataset"),
    )
    .expect("bind");
    println!("serving on {}", server.addr());

    // A client session, driven view by view. A real remote user would
    // render each view's density profile; this demo discards every view,
    // letting the major iterations run to completion.
    let mut client = NetClient::new(server.addr());
    let Reply::View(mut view) = client
        .call_with_retry(&Request::Open {
            tenant: "demo".to_string(),
            query: query.clone(),
        })
        .expect("open")
    else {
        panic!("expected a first view")
    };
    println!(
        "session {} opened: view ({},{}), {} of {} points alive, shed level {}",
        view.session, view.major, view.minor, view.alive, view.total, view.shed
    );

    // Mid-session disconnect: the session survives in the server's warm
    // tier and a brand-new connection resumes it at the same cursor.
    client.disconnect();
    let mut client = NetClient::new(server.addr());
    let Reply::View(resumed) = client.view(view.session).expect("resume") else {
        panic!("expected the pending view after reconnect")
    };
    assert_eq!((resumed.major, resumed.minor), (view.major, view.minor));
    println!(
        "reconnected: session resumed at the same ({},{}) cursor",
        resumed.major, resumed.minor
    );

    let done = loop {
        let reply = client
            .call_with_retry(&Request::Submit {
                session: view.session,
                major: view.major,
                minor: view.minor,
                response: UserResponse::Discard,
            })
            .expect("submit");
        match reply {
            Reply::Done(done) => break done,
            Reply::View(next) => view = next,
            other => panic!("unexpected reply: {other:?}"),
        }
    };
    println!(
        "done after {} major iterations: {} neighbors (effective support {})",
        done.majors,
        done.neighbors.len(),
        done.support
    );
    for (&id, p) in done.neighbors.iter().zip(&done.probabilities).take(5) {
        println!("  neighbor {id:>4}  p = {p:.3}");
    }

    // Graceful drain: in-flight submits complete, live sessions are
    // flushed to warm snapshots, incident postmortems go to stderr.
    let report = server.shutdown();
    println!(
        "drained: {} sessions flushed, {} postmortems",
        report.flushed, report.postmortems
    );
}
