//! A genuinely interactive session: *you* are the user model.
//!
//! Generates a small projected-cluster dataset, then drives the paper's
//! loop with a [`hinn::user::TerminalUser`]: each query-centered projection
//! is rendered as a heatmap in your terminal, you place the density
//! separator (as a fraction of the peak density), see how many points it
//! selects, and confirm or retry — exactly the `AdjustDensitySeparator`
//! interaction of Fig. 6. Type `d` to dismiss a poor view.
//!
//! ```sh
//! cargo run --release --example interactive_session          # ANSI color
//! NO_COLOR=1 cargo run --release --example interactive_session  # plain ASCII
//! ```
//!
//! Hints while playing: views where the query `Q` sits on a bright, compact
//! island are good — put the separator around 0.2–0.4 and keep the
//! selection small. Dismiss views where `Q` floats in darkness (Fig. 1(b))
//! or the whole map glows evenly (Fig. 1(c)).

use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufReader;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = ProjectedClusterSpec {
        n_points: 800,
        dim: 8,
        n_clusters: 3,
        cluster_dim: 4,
        ..ProjectedClusterSpec::case1()
    };
    let (data, truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let members = data.cluster_members(0);
    let query = data.points[members[0]].clone();

    println!(
        "Interactive nearest-neighbor session: {} points, {} dims.",
        data.len(),
        data.dim()
    );
    println!(
        "Your query secretly belongs to a projected cluster of {} points — \
         let's see if the session finds it.\n",
        truth[0].size
    );

    let stdin = std::io::stdin();
    let mut user = TerminalUser::new(BufReader::new(stdin.lock()), std::io::stdout());
    user.color = std::env::var_os("NO_COLOR").is_none();

    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        grid_n: 36, // coarse enough to fit a terminal
        ..SearchConfig::default().with_support(40)
    };
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    println!("\n================ session result ================");
    match &outcome.diagnosis {
        SearchDiagnosis::Meaningful { natural_k, .. } => {
            let natural = outcome.natural_neighbors().expect("meaningful");
            let hits = natural
                .iter()
                .filter(|i| data.labels[**i] == Some(0))
                .count();
            println!("verdict: MEANINGFUL — you isolated a natural group of {natural_k} points,");
            println!(
                "{hits} of which belong to the true hidden cluster \
                 (precision {:.0}%, recall {:.0}%).",
                100.0 * hits as f64 / natural.len() as f64,
                100.0 * hits as f64 / truth[0].size as f64
            );
        }
        SearchDiagnosis::NotMeaningful { reason, .. } => {
            println!("verdict: NOT MEANINGFUL — {reason}");
            println!("(dismissing every view produces exactly this, by design)");
        }
    }
    println!(
        "views shown: {}, dismissed: {}",
        outcome.transcript.total_views(),
        outcome.transcript.total_dismissed()
    );
}
