//! Quickstart: run the interactive nearest-neighbor search end to end on a
//! synthetic projected-cluster workload and inspect everything the session
//! produces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A 20-dimensional data set with 6-dimensional projected clusters —
    // the paper's §4.1 workload, scaled down for a fast demo.
    let spec = ProjectedClusterSpec {
        n_points: 1500,
        ..ProjectedClusterSpec::case1()
    };
    let (data, truth) = generate_projected_clusters_detailed(&spec, &mut rng);

    // Query: a member of cluster 0.
    let members = data.cluster_members(0);
    let query = data.points[members[0]].clone();
    println!(
        "data: {} points in {} dims; query belongs to a projected cluster of {} points",
        data.len(),
        data.dim(),
        truth[0].size
    );

    // The human side of the loop: a simulated user that reads the same
    // density profiles a person would see (swap in `TerminalUser` to drive
    // the session yourself — see examples/interactive_session.rs).
    let mut user = HeuristicUser::default();

    let config = SearchConfig::default()
        .with_support(40)
        .with_mode(ProjectionMode::AxisParallel)
        .recording_profiles();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    println!(
        "\nsession: {} major iterations, {} views shown, {} dismissed",
        outcome.majors_run,
        outcome.transcript.total_views(),
        outcome.transcript.total_dismissed()
    );

    println!("\ntop 10 neighbors (original index, meaningfulness probability, same cluster?):");
    for &i in outcome.neighbors.iter().take(10) {
        println!(
            "  #{i:<5} P = {:.3}   {}",
            outcome.probabilities[i],
            if data.labels[i] == Some(0) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    match &outcome.diagnosis {
        hinn::core::SearchDiagnosis::Meaningful {
            natural_k,
            gap,
            top_mean,
        } => {
            println!(
                "\ndiagnosis: MEANINGFUL — natural neighbor set of {natural_k} points \
                 (probability cliff of {gap:.2}, top mean {top_mean:.2})"
            );
            let natural = outcome.natural_neighbors().expect("meaningful");
            let hits = natural
                .iter()
                .filter(|i| data.labels[**i] == Some(0))
                .count();
            println!(
                "natural set precision vs ground-truth cluster: {hits}/{} = {:.1}%",
                natural.len(),
                100.0 * hits as f64 / natural.len() as f64
            );
        }
        hinn::core::SearchDiagnosis::NotMeaningful { reason, .. } => {
            println!("\ndiagnosis: NOT meaningful — {reason}");
        }
    }

    // Why is the top neighbor a neighbor? The session can explain itself.
    // (Skip the query's own point — its distance is trivially zero.)
    let top = *outcome
        .neighbors
        .iter()
        .find(|&&i| i != members[0])
        .expect("a non-query neighbor");
    let explanation = hinn::core::explain_neighbor(&outcome, &data.points, &query, top);
    println!("\n{}", hinn::core::explanation_text(&explanation));
}
